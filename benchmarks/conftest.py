"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints it.  ``REPRO_BENCH_SCALE`` (default 0.4) rescales corpus sizes:
1.0 corresponds to roughly 1/1000 of the paper's corpora (see
DESIGN.md); smaller values trade fidelity for speed.
``REPRO_BENCH_SEED`` (default 1) seeds everything.
"""

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def report(capsys):
    """Print a regenerated table so it reaches the terminal (and any
    tee'd log) even without ``-s`` — the tables ARE the benchmark's
    product, not debug noise."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _report
