"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures and
prints it.  ``REPRO_BENCH_SCALE`` (default 0.4) rescales corpus sizes:
1.0 corresponds to roughly 1/1000 of the paper's corpora (see
DESIGN.md); smaller values trade fidelity for speed.
``REPRO_BENCH_SEED`` (default 1) seeds everything.

Every benchmark also emits a machine-readable ``BENCH_<name>.json``
artifact (see :mod:`repro.obs.bench`) with its wall-clock timing and
key result metrics.  ``REPRO_BENCH_DIR`` (default the current
directory) controls where the artifacts land.
"""

import os
import time

import pytest

from repro.obs import BenchArtifact


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.4"))


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def bench_dir() -> str:
    return os.environ.get("REPRO_BENCH_DIR", ".")


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def seed() -> int:
    return bench_seed()


@pytest.fixture()
def artifact(request):
    """A ``BenchArtifact`` for the current test, written on teardown.

    The artifact name is the test name minus its ``test_bench_`` prefix,
    so ``test_bench_table1`` produces ``BENCH_table1.json``.
    """
    name = request.node.name
    for prefix in ("test_bench_", "test_"):
        if name.startswith(prefix):
            name = name[len(prefix):]
            break
    art = BenchArtifact(name=name, scale=bench_scale(), seed=bench_seed())
    yield art
    art.write(bench_dir())


def run_once(benchmark, fn, artifact=None):
    """Run an experiment exactly once under pytest-benchmark timing."""
    if artifact is None:
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    def timed_fn():
        t0 = time.perf_counter()
        result = fn()
        artifact.time("wall_seconds", time.perf_counter() - t0)
        return result

    return benchmark.pedantic(timed_fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture()
def report(capsys):
    """Print a regenerated table so it reaches the terminal (and any
    tee'd log) even without ``-s`` — the tables ARE the benchmark's
    product, not debug noise."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _report
