"""Benchmark: regenerate Figure 7 (multi-modal lesion study for CT 1)."""

from conftest import run_once

from repro.experiments.lesion import run_figure7


def test_bench_figure7(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_figure7(scale=scale, seed=seed, n_model_seeds=2),
        artifact,
    )
    report(result.render())
    artifact.record(
        combined_wins=result.combined_wins(),
        combined_last=round(result.combined[-1], 4),
    )

    # shape: combining modalities is at or near the best single
    # modality at most feature levels (paper: better at all four)
    assert result.combined_wins() >= 2
    # shape: with all resources, combined is the best configuration
    assert result.combined[-1] >= max(result.text_only[-1], result.image_only[-1]) - 0.1
    # shape: more feature sets help the combined model
    assert result.combined[-1] > result.combined[0]
