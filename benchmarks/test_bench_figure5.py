"""Benchmark: regenerate Figure 5 (cross-over curves for CT 1, in the
all-servable and nonservable-simulation regimes)."""

from conftest import run_once

from repro.experiments.end_to_end import run_figure5


def test_bench_figure5(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_figure5(scale=scale, seed=seed, n_model_seeds=2),
        artifact,
    )
    report(result.render())
    artifact.record(
        cross_modal_full=round(result.cross_modal_full, 4),
        cross_modal_servable=round(result.cross_modal_servable, 4),
        crossover_full=result.crossover_full,
        crossover_servable=result.crossover_servable,
    )

    # shape: the supervised curve eventually rises toward/past the
    # cross-modal line (learning curves slope upward)
    assert max(result.supervised_full) > result.supervised_full[0]
    # shape: cross-modal with all service sets beats the AB-restricted
    # cross-modal model (more resources help)
    assert result.cross_modal_full >= result.cross_modal_servable - 0.05
    # shape: restricting *servable* sets while keeping ABCD LFs still
    # yields a model clearly above the AB-supervised early budgets
    assert result.cross_modal_servable > result.supervised_servable[0]
