"""Benchmark: the paper's sketched follow-ups (§6.4, §7.3) applied on
top of the core pipeline — self-training and domain-adaptation
reweighting."""

import numpy as np
from conftest import run_once

from repro.datagen.entities import Modality
from repro.experiments.common import ExperimentContext, model_auprc, modality_feature_names
from repro.experiments.reporting import render_table
from repro.extensions.domain_adaptation import modality_importance_weights
from repro.extensions.self_training import SelfTrainer
from repro.models.fusion import EarlyFusion
from repro.models.mlp import MLPClassifier


def _run(scale: float, seed: int) -> dict[str, float]:
    ctx = ExperimentContext("CT1", scale=scale, seed=seed)
    curation = ctx.curation
    image_aug = curation.image_table_augmented
    mask = curation.coverage_mask
    rows = np.flatnonzero(mask)

    text_feats = modality_feature_names(ctx, ("A", "B", "C", "D"), Modality.TEXT)
    image_feats = modality_feature_names(ctx, ("A", "B", "C", "D"), Modality.IMAGE)
    text_sel = ctx.text_table.select_features(
        [n for n in text_feats if n in ctx.text_table.schema]
    )
    image_sel = image_aug.select_rows(rows).select_features(
        [n for n in image_feats if n in image_aug.schema]
    )
    base_tables = [text_sel, image_sel]
    base_targets = [
        ctx.text_table.labels.astype(float),
        curation.probabilistic_labels[mask],
    ]

    def factory():
        return EarlyFusion(
            lambda: MLPClassifier(seed=ctx.model_seed("ext"), n_epochs=60, patience=10)
        )

    # baseline cross-modal model
    base = factory()
    base.fit(base_tables, base_targets)
    base_auprc = model_auprc(base, ctx.test_table, ctx.test_table.labels)

    # + self-training over the labeled pool treated as fresh traffic
    fresh = ctx.pool_table.with_labels(None).select_features(
        [n for n in image_feats if n in ctx.pool_table.schema]
    )
    trainer = SelfTrainer(factory, n_rounds=1)
    trainer.fit(base_tables, base_targets, fresh)
    self_auprc = model_auprc(trainer, ctx.test_table, ctx.test_table.labels)

    # + domain-adaptation reweighting of the text rows
    weights = modality_importance_weights(text_sel, image_sel, seed=seed)
    adapted = factory()
    adapted.fit(base_tables, base_targets, [weights, None])
    adapted_auprc = model_auprc(adapted, ctx.test_table, ctx.test_table.labels)

    return {
        "baseline": base_auprc,
        "self_training": self_auprc,
        "domain_adaptation": adapted_auprc,
    }


def test_bench_extensions(benchmark, scale, seed, report, artifact):
    results = run_once(benchmark, lambda: _run(scale, seed), artifact)
    artifact.record(**{k: round(v, 4) for k, v in results.items()})
    report(
        render_table(
            ["variant", "AUPRC"],
            [[k, round(v, 3)] for k, v in results.items()],
            title="Extensions on top of the cross-modal pipeline (CT1)",
        )
    )
    # the extensions must not break the model; the paper frames them as
    # augmentations worth days of effort, not guaranteed wins at toy scale
    assert results["self_training"] > 0.6 * results["baseline"]
    assert results["domain_adaptation"] > 0.6 * results["baseline"]
