"""Benchmark: regenerate Table 1 (dataset inventory for CT 1-5)."""

from conftest import run_once

from repro.experiments.table1 import PAPER_TABLE1, run_table1


def test_bench_table1(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark, lambda: run_table1(scale=scale, seed=seed), artifact
    )
    report(result.render())
    artifact.record(
        n_tasks=len(result.rows),
        **{f"{task}_pct_pos": row["pct_pos"] for task, row in result.rows.items()},
    )

    # shape: per-task positive rates track the paper's Table 1
    for task, row in result.rows.items():
        target = PAPER_TABLE1[task]["pct_pos"]
        assert abs(row["pct_pos"] - target) < max(2.0, 0.6 * target)
    # corpus-size ordering preserved (CT2 has the largest text corpus)
    assert result.rows["CT2"]["n_lbd_text"] >= result.rows["CT1"]["n_lbd_text"]
