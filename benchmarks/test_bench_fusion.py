"""Benchmark: regenerate the §6.6 training-method and feature-
materialization comparisons."""

from conftest import run_once

from repro.experiments.fusion_ablation import run_fusion_ablation


def test_bench_fusion(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_fusion_ablation("CT1", scale=scale, seed=seed),
        artifact,
    )
    report(result.render())
    artifact.record(
        early_vs_intermediate=round(result.early_vs_intermediate, 4),
        early_vs_devise=round(result.early_vs_devise, 4),
        services_vs_generic=round(result.services_vs_generic, 4),
        org_vs_generic=round(result.org_vs_generic, 4),
    )

    # shape: early fusion >= intermediate fusion >= DeViSE (paper's
    # ordering, with slack for run noise)
    assert result.early_vs_intermediate > 0.9
    assert result.early_vs_devise > 1.0
    # shape: service features compete with / beat the generic
    # materialized CNN embedding; the org embedding is close to or
    # above the generic one (paper: 1.54x and 1.04x)
    assert result.services_vs_generic > 0.75
    assert result.org_vs_generic > 0.85
