"""Benchmark: regenerate Table 2 (end-to-end relative AUPRC and
cross-over points for all five tasks)."""

from conftest import run_once

from repro.experiments.end_to_end import run_table2


def test_bench_table2(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_table2(scale=scale, seed=seed, n_model_seeds=2),
        artifact,
    )
    report(result.render())
    artifact.record(
        **{f"{t.task}_cross_relative": round(t.cross_relative, 4) for t in result.tasks}
    )

    crosses_above_single = 0
    beats_baseline = 0
    for task in result.tasks:
        if task.cross_relative >= max(task.text_relative, task.image_relative) - 0.1:
            crosses_above_single += 1
        if task.cross_relative > 1.0:
            beats_baseline += 1
    # shape: the cross-modal model is at or near the top for most tasks
    # and beats the embedding baseline for most tasks
    assert crosses_above_single >= 3
    assert beats_baseline >= 3
    # shape: at least one task's cross-over lands inside the labeled
    # pool (the paper's own points span 4k..750k — the top of its pool)
    measured = [t for t in result.tasks if t.crossover is not None]
    assert len(measured) >= 1
