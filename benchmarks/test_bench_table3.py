"""Benchmark: regenerate Table 3 (relative lift from label propagation
in training-data curation)."""

from conftest import run_once

from repro.experiments.label_prop import run_table3


def test_bench_table3(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_table3(scale=scale, seed=seed, n_model_seeds=2),
        artifact,
    )
    report(result.render())
    artifact.record(
        max_f1_ratio=round(max(row.f1_ratio for row in result.rows), 4),
        max_recall_ratio=round(max(row.recall_ratio for row in result.rows), 4),
    )

    # shape: propagation never hurts F1 much and helps somewhere
    f1_ratios = [row.f1_ratio for row in result.rows]
    assert max(f1_ratios) > 1.0
    assert sum(1 for r in f1_ratios if r > 0.85) >= 4
    # shape: recall is the dimension propagation improves
    recall_ratios = [row.recall_ratio for row in result.rows]
    assert max(recall_ratios) >= max(f1_ratios) * 0.8
