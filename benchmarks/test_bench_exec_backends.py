"""Benchmark: featurization wall-clock per execution backend.

Featurizes the same corpus with the same seed on the serial, thread,
and process backends and records per-backend wall-clock plus the
relative speedups in ``BENCH_exec_backends.json``.  Equivalence (the
backends producing byte-identical tables) is asserted here too — a
benchmark that silently measured divergent computations would be
meaningless.

Note on interpretation: thread-backend speedups are bounded by the GIL
(the featurization inner loops are numpy-light Python), and process
speedups require real cores — on single-CPU CI runners both parallel
backends measure close to (or below, from pool overhead) 1.0x, which is
expected and not regression-gated.
"""

import json
import os
import time

from conftest import run_once

from repro.datagen.tasks import classification_task, generate_task_corpora
from repro.exec import BACKENDS, ExecutorConfig
from repro.features.io import table_to_dict
from repro.resources.featurize import featurize_corpus
from repro.resources.service_sets import build_resource_suite


def test_bench_exec_backends(benchmark, scale, seed, report, artifact):
    workers = int(os.environ.get("REPRO_BENCH_EXEC_WORKERS", "4"))
    feat_scale = min(scale, 0.2)  # one corpus featurized 3x: keep it modest
    world, task, splits = generate_task_corpora(
        classification_task("CT1"), scale=feat_scale, seed=seed
    )
    resources = list(build_resource_suite(world, task, n_history=5000, seed=seed))
    corpus = splits.image_unlabeled

    timings: dict[str, float] = {}
    encodings: dict[str, str] = {}

    def run_all():
        for backend in BACKENDS:
            executor = ExecutorConfig(
                backend=backend, workers=1 if backend == "serial" else workers
            )
            t0 = time.perf_counter()
            table = featurize_corpus(corpus, resources, seed=seed, executor=executor)
            timings[backend] = time.perf_counter() - t0
            encodings[backend] = json.dumps(
                table_to_dict(table), sort_keys=True, default=str
            )
        return timings

    run_once(benchmark, run_all, artifact)

    # the benchmark is only meaningful if all backends computed the
    # same artifact
    assert encodings["thread"] == encodings["serial"]
    assert encodings["process"] == encodings["serial"]

    artifact.record(
        n_points=len(corpus.points),
        n_resources=len(resources),
        workers=workers,
        cpu_count=os.cpu_count(),
        **{f"{b}_seconds": round(t, 4) for b, t in timings.items()},
        thread_speedup=round(timings["serial"] / timings["thread"], 4),
        process_speedup=round(timings["serial"] / timings["process"], 4),
    )
    lines = [
        f"execution backends — featurize {len(corpus.points)} points x "
        f"{len(resources)} resources (workers={workers}, "
        f"cpus={os.cpu_count()})"
    ]
    for backend in BACKENDS:
        rel = timings["serial"] / timings[backend]
        lines.append(f"  {backend:<8} {timings[backend]:7.2f}s  ({rel:.2f}x serial)")
    report("\n".join(lines))

    # shape: all three backends completed and produced timings
    assert set(timings) == set(BACKENDS)
    assert all(t > 0 for t in timings.values())
