"""Benchmark: regenerate Figure 6 (organizational-resources factor
analysis for CT 1)."""

from conftest import run_once

from repro.experiments.factor_analysis import run_figure6


def test_bench_figure6(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_figure6(scale=scale, seed=seed, n_model_seeds=2),
        artifact,
    )
    report(result.render())
    artifact.record(
        first_relative_auprc=round(result.relative_auprc[0], 4),
        last_relative_auprc=round(result.relative_auprc[-1], 4),
    )

    values = result.relative_auprc
    # shape: adding resources grows AUPRC overall (last step well above
    # the first), with a near-monotone path
    assert values[-1] > values[0]
    assert result.monotone_violations(tolerance=0.15) <= 2
