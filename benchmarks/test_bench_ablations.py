"""Benchmark: ablations of the pipeline's design decisions."""

from conftest import run_once

from repro.experiments.ablations import render_ablations, run_all_ablations


def test_bench_ablations(benchmark, scale, seed, report, artifact):
    results = run_once(
        benchmark, lambda: run_all_ablations(scale=scale, seed=seed), artifact
    )
    report(render_ablations(results))
    by_name = {r.name: r for r in results}
    artifact.record(**{r.name: round(r.ratio, 4) for r in results})

    # order-1 is sufficient: order-2 adds little (paper §4.3)
    assert by_name["itemset order (weak labels)"].ratio > 0.85
    # the generative model should not lose to majority vote
    assert by_name["label aggregation (weak labels)"].ratio > 0.9
    # streaming is a usable approximation of exact propagation
    assert by_name["propagation solver (weak labels)"].ratio > 0.8
    # human seed labels at least match weak seed labels (paper §4.4)
    assert by_name["propagation label source (scores)"].ratio > 0.9
    # swapping a real service set for a junk one costs performance
    assert by_name["resource quality (end model)"].ratio > 1.0
