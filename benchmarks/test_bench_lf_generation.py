"""Benchmark: regenerate the §6.7.1 automatic-vs-manual LF comparison."""

from conftest import run_once

from repro.experiments.lf_comparison import run_lf_comparison


def test_bench_lf_generation(benchmark, scale, seed, report, artifact):
    result = run_once(
        benchmark,
        lambda: run_lf_comparison(scale=scale, seed=seed),
        artifact,
    )
    report(result.render())
    artifact.record(
        speedup=round(result.speedup, 4),
        mined_f1=round(result.mined.f1, 4),
        expert_f1=round(result.expert.f1, 4),
    )

    # shape: the automatic path is faster than the expert
    assert result.speedup > 1.0
    # shape: mined LFs are competitive with the expert's on F1 (the
    # paper reports +2.7 points for mined)
    assert result.mined.f1 >= result.expert.f1 - 0.05
    # shape: the mined suite trains a better end model
    assert result.mined.end_auprc >= result.expert.end_auprc - 0.05
