"""Content moderation walkthrough — the paper's motivating scenario.

A moderation team has an ML pipeline flagging policy-violating *text*
posts; the application now launches *image* posts, and the same
violations must be caught there with (almost) no labeled images.  This
example walks through each split-architecture step separately and
inspects the intermediate artifacts a production team would look at:
the common feature space, the mined labeling functions, the generative
model's learned parameters, and the final model's quality.

Run:  python examples/content_moderation.py
"""

import numpy as np

from repro import CrossModalPipeline, PipelineConfig, classification_task
from repro.datagen.tasks import generate_task_corpora
from repro.experiments.reporting import render_table
from repro.models.metrics import auprc, f1_score
from repro.resources import build_resource_suite

SCALE = 0.2
SEED = 11


def main() -> None:
    print("=" * 70)
    print("Scenario: adapt a text moderation task to image posts")
    print("=" * 70)

    task_config = classification_task("CT1")
    world, task, splits = generate_task_corpora(task_config, scale=SCALE, seed=SEED)
    print(f"\nlabeled text posts:   {len(splits.text_labeled):>6} "
          f"({splits.text_labeled.positive_rate:.1%} violating)")
    print(f"unlabeled image posts: {len(splits.image_unlabeled):>6}")
    print(f"labeled image test:    {len(splits.image_test):>6}")

    catalog = build_resource_suite(world, task, n_history=10_000, seed=SEED)
    pipeline = CrossModalPipeline(world, task, catalog, PipelineConfig(seed=SEED))

    # ------------------------------------------------------------------
    # Step A: feature generation via organizational resources
    # ------------------------------------------------------------------
    print("\n[A] feature generation — the common feature space")
    text_table = pipeline.featurize(splits.text_labeled, include_labels=True)
    image_table = pipeline.featurize(splits.image_unlabeled)
    rows = [
        [s["feature"], s["kind"], s["service_set"],
         "yes" if s["servable"] else "NO", s["presence"]]
        for s in image_table.summary()
    ]
    print(render_table(["feature", "kind", "set", "servable", "presence"], rows))

    # validate resource quality before trusting automated selection
    report = catalog.validate_quality(text_table)
    print("\nweakest resources by single-feature signal:",
          ", ".join(report.weak(threshold=0.02)) or "(none)")

    # ------------------------------------------------------------------
    # Step B: training-data curation (weak supervision)
    # ------------------------------------------------------------------
    print("\n[B] training-data curation")
    curation = pipeline.curate(text_table, image_table)
    by_origin: dict[str, int] = {}
    for lf in curation.lfs:
        by_origin[lf.origin] = by_origin.get(lf.origin, 0) + 1
    print(f"LFs by origin: {by_origin}")
    print("sample mined LFs:")
    for lf in [lf for lf in curation.lfs if lf.origin == "mined"][:5]:
        print(f"  {lf.name}: {lf.description}")
    if curation.label_model is not None:
        summary = curation.label_model.lf_summary(curation.label_matrix)
        top = sorted(summary, key=lambda r: -r["coverage"])[:5]
        print("highest-coverage LFs with learned accuracies:")
        for row in top:
            print(f"  {row['lf']}: coverage {row['coverage']:.3f}, "
                  f"accuracy {row['learned_accuracy']:.2f}")
    print(f"weak-label dev quality: {curation.dev_quality}")

    # ------------------------------------------------------------------
    # Step C: multi-modal training and evaluation
    # ------------------------------------------------------------------
    print("\n[C] model training (early fusion, text labels + weak image labels)")
    model = pipeline.train(text_table, curation)
    test_table = pipeline.featurize(splits.image_test, include_labels=True)
    metrics, scores = pipeline.evaluate(model, test_table)
    print(f"cross-modal model: AUPRC {metrics['auprc']:.3f}, "
          f"F1@0.5 {metrics['f1@0.5']:.3f}")

    # how much human labeling did weak supervision replace?
    pool = pipeline.featurize(splits.image_labeled_pool, include_labels=True)
    budgets = [100, 400, 1000]
    print("\nfully supervised image model at increasing label budgets:")
    from repro.experiments.common import supervised_sweep, train_table_model
    from repro.datagen.entities import Modality
    feats = pipeline.model_feature_schema(Modality.IMAGE).names
    for budget in budgets:
        n = min(budget, pool.n_rows)
        sup = train_table_model(
            pool.select_rows(np.arange(n)), pool.labels[:n].astype(float),
            feats, seed=SEED,
        )
        sup_auprc = auprc(sup.predict_proba(test_table), test_table.labels)
        marker = "  <-- beats cross-modal" if sup_auprc > metrics["auprc"] else ""
        print(f"  {n:>5} hand labels: AUPRC {sup_auprc:.3f}{marker}")
    print("\n(the cross-modal pipeline used zero hand-labeled images)")


if __name__ == "__main__":
    main()
