"""Deployment-phase workflow: self-training + sampled model comparison.

The paper's §6.4 deployment story: ship the cross-modal model
immediately, then improve it with self-training "on the order of days",
and decide between candidates with sampled human review (§7.4) instead
of labeling everything.  This example deploys the base cross-modal
model, builds a self-trained candidate from fresh unlabeled traffic,
and lets a budgeted (imperfect) review queue pick the winner.

Run:  python examples/deployment_monitoring.py
"""

import numpy as np

from repro.datagen.entities import Modality
from repro.experiments.common import ExperimentContext, modality_feature_names
from repro.extensions.monitoring import ReviewQueue, compare_models
from repro.extensions.self_training import SelfTrainer
from repro.models.fusion import EarlyFusion
from repro.models.metrics import auprc
from repro.models.mlp import MLPClassifier

SCALE = 0.15
SEED = 6


def main() -> None:
    ctx = ExperimentContext("CT1", scale=SCALE, seed=SEED)
    curation = ctx.curation
    print(f"curated {int(curation.coverage_mask.sum())} weakly labeled images "
          f"with {len(curation.lfs)} LFs")

    # assemble the training inputs the pipeline's step C would use
    mask = curation.coverage_mask
    rows = np.flatnonzero(mask)
    text_feats = modality_feature_names(ctx, ("A", "B", "C", "D"), Modality.TEXT)
    image_feats = modality_feature_names(ctx, ("A", "B", "C", "D"), Modality.IMAGE)
    text_sel = ctx.text_table.select_features(
        [n for n in text_feats if n in ctx.text_table.schema]
    )
    image_sel = curation.image_table_augmented.select_rows(rows).select_features(
        [n for n in image_feats if n in curation.image_table_augmented.schema]
    )
    tables = [text_sel, image_sel]
    targets = [ctx.text_table.labels.astype(float),
               curation.probabilistic_labels[mask]]

    def factory():
        return EarlyFusion(lambda: MLPClassifier(seed=SEED, n_epochs=50))

    # candidate A: the base cross-modal model, deployed day one
    model_a = factory()
    model_a.fit(tables, targets)

    # candidate B: self-trained on fresh traffic a few days later
    fresh = ctx.pool_table.with_labels(None).select_features(
        [n for n in image_feats if n in ctx.pool_table.schema]
    )
    model_b = SelfTrainer(factory, n_rounds=2)
    model_b.fit(tables, targets, fresh)
    print(f"self-training added {model_b.report_.total_pseudo_labels()} "
          f"pseudo-labels over {model_b.report_.n_rounds} rounds")

    # production decision: sampled review, not full labeling
    queue = ReviewQueue(ctx.splits.image_test, budget=150,
                        reviewer_error=0.02, seed=SEED)
    comparison = compare_models(model_a, model_b, ctx.test_table, queue, seed=SEED)
    print("\nsampled comparison:", comparison.render())

    # what full labels would have said (for the reader, not the team)
    full_a = auprc(model_a.predict_proba(ctx.test_table), ctx.test_table.labels)
    full_b = auprc(model_b.predict_proba(ctx.test_table), ctx.test_table.labels)
    print(f"full-test-set truth:  A {full_a:.3f} vs B {full_b:.3f}")
    print(f"review budget spent: {queue.spent}/{queue.budget}")


if __name__ == "__main__":
    main()
