"""Resource discovery and quality validation (paper §6.5 / §7.1).

"A low quality feature/organizational resource might negatively impact
performance if it were selected via automated processes without
validation."  This example shows the catalog-side workflow: register a
team's own rule-based resources, score every resource's single-feature
signal against the labeled old modality, drop the weak ones, and
measure the effect on the end model.

Run:  python examples/resource_discovery.py
"""

from repro import CrossModalPipeline, PipelineConfig, classification_task
from repro.datagen.tasks import generate_task_corpora
from repro.experiments.common import fusion_auprc, ExperimentContext
from repro.experiments.reporting import render_table
from repro.resources import build_resource_suite
from repro.resources.rules import heavy_poster_rule, keyword_watchlist_rule

SCALE = 0.15
SEED = 9


def main() -> None:
    task_config = classification_task("CT5")
    world, task, splits = generate_task_corpora(task_config, scale=SCALE, seed=SEED)
    catalog = build_resource_suite(world, task, n_history=8_000, seed=SEED)

    # Teams also contribute their own heuristics as rule-based services.
    watchlist = frozenset(list(task.definition.positive_keywords)[:5])
    catalog.register(
        keyword_watchlist_rule("rule_watchlist", watchlist, service_set="RULES")
    )
    catalog.register(
        heavy_poster_rule(
            "rule_heavy_poster", world.users.report_count, threshold=12.0,
            service_set="RULES",
        )
    )
    print(f"catalog: {len(catalog)} resources in sets {catalog.service_sets()}")

    # Score every resource against labeled data.  Text covers the
    # shared services; a small labeled image sample covers the
    # image-specific ones (embeddings).
    pipeline = CrossModalPipeline(world, task, catalog, PipelineConfig(seed=SEED))
    text_table = pipeline.featurize(splits.text_labeled, include_labels=True)
    image_table = pipeline.featurize(splits.image_labeled_pool, include_labels=True)
    report = catalog.validate_quality(text_table.concat(image_table))

    rows = [[name, round(score, 4)] for name, score in report.ranked()]
    print(render_table(["resource", "signal score"], rows,
                       title="\nsingle-feature signal vs labeled data"))
    ranked = [name for name, _ in report.ranked()]
    print(f"\nweakest quartile: {ranked[-len(ranked) // 4:]}")
    print("the deliberately signal-free 'language' and 'image_quality'"
          "\nservices should rank near the bottom; the team's watchlist"
          "\nrule should rank well above them")


if __name__ == "__main__":
    main()
