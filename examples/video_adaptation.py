"""Adapting to video — the paper's headline new modality.

The introduction's example is a moderation team whose application is
about to launch *video* posts.  Videos are featurized by splitting them
into representative frames with an organizational video-splitting tool
and running the image services on the frames (paper §3.1.1); the same
cross-modal pipeline then adapts the existing text task to video.

Run:  python examples/video_adaptation.py
"""

from repro import CrossModalPipeline, PipelineConfig, classification_task
from repro.datagen.entities import Modality
from repro.datagen.tasks import generate_task_corpora
from repro.resources import build_resource_suite

SCALE = 0.15
SEED = 4


def main() -> None:
    task_config = classification_task("CT2")
    world, task, splits = generate_task_corpora(
        task_config, scale=SCALE, seed=SEED, new_modality=Modality.VIDEO
    )
    print(f"adapting {task.name} from text to VIDEO")
    print(f"unlabeled videos: {len(splits.image_unlabeled)}")
    sample = splits.image_unlabeled[0]
    print(f"example video: {sample.payload.n_frames} frames, "
          f"{sample.payload.duration_seconds:.0f}s")

    catalog = build_resource_suite(world, task, n_history=8_000, seed=SEED)
    pipeline = CrossModalPipeline(world, task, catalog, PipelineConfig(seed=SEED))

    # video posts flow through the same services: frame-wise topic
    # models / object detectors, metadata joins, mean frame embeddings
    video_table = pipeline.featurize(splits.image_unlabeled)
    print("\nvideo feature presence (video services are noisier and less"
          " available than image ones):")
    for row in video_table.summary():
        if row["feature"] in ("topics", "keywords", "objects",
                              "page_categories", "org_embedding"):
            print(f"  {row['feature']:>16}: presence {row['presence']}")

    result = pipeline.run(splits)
    print(f"\ncross-modal text->video model: AUPRC {result.metrics['auprc']:.3f} "
          f"(video test positive rate {result.metrics['positive_rate']:.3f})")
    print(f"LF suite: {len(result.curation.lfs)} functions, "
          f"coverage {result.curation.label_matrix.coverage():.2f}")


if __name__ == "__main__":
    main()
