"""Quickstart: run the cross-modal adaptation pipeline end to end.

Generates a small synthetic organizational world for task CT 1 (text ->
image adaptation), builds the standard resource suite, and runs the
three split-architecture steps: feature generation, training-data
curation (weak supervision + label propagation), and multi-modal
training.  Takes ~1 minute on a laptop.

Run:  python examples/quickstart.py
"""

from repro import CrossModalPipeline, PipelineConfig, classification_task
from repro.datagen.tasks import generate_task_corpora
from repro.resources import build_resource_suite

SCALE = 0.2  # ~1/5000 of the paper's corpus sizes
SEED = 1


def main() -> None:
    # 1. Data: labeled text, unlabeled images, a labeled image test set.
    task_config = classification_task("CT1")
    world, task, splits = generate_task_corpora(task_config, scale=SCALE, seed=SEED)
    print(f"task {task.name}: {splits.table1_row()}")

    # 2. Organizational resources: 15 services in sets A-D plus three
    #    image-specific features (see paper §6.2).
    catalog = build_resource_suite(world, task, n_history=10_000, seed=SEED)
    print(f"resource catalog: {len(catalog)} services "
          f"across sets {catalog.service_sets()}")

    # 3. The pipeline. The config mirrors the paper's default setting:
    #    all four service sets servable, LFs over everything including
    #    the nonservable features.
    pipeline = CrossModalPipeline(world, task, catalog, PipelineConfig(seed=SEED))
    result = pipeline.run(splits)

    print("\n--- pipeline result ---")
    n_pos_lfs = sum(1 for lf in result.curation.lfs if "pos" in lf.name)
    print(f"labeling functions: {len(result.curation.lfs)} "
          f"({n_pos_lfs} positive), "
          f"coverage {result.curation.label_matrix.coverage():.2f}")
    quality = result.curation.dev_quality
    if quality is not None:
        print(f"weak-label quality on dev: precision {quality.precision:.2f}, "
              f"recall {quality.recall:.2f}, F1 {quality.f1:.2f}")
    print(f"test AUPRC: {result.metrics['auprc']:.3f} "
          f"(test positive rate {result.metrics['positive_rate']:.3f})")
    print("step timings:", {k: f"{v:.1f}s" for k, v in result.timings.items()})


if __name__ == "__main__":
    main()
