"""Legacy setup shim.

The target environment is offline and has setuptools 65 without the
``wheel`` package, so PEP-517 editable installs fail; this shim lets
``pip install -e .`` use the legacy ``setup.py develop`` path.  Package
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Leveraging Organizational Resources to Adapt "
        "Models to New Data Modalities' (Suri et al., VLDB 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
