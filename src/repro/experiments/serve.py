"""Serving experiment — load, latency, and chaos against ModelServer.

The batch pipeline's claims stop at the last checkpoint; this
experiment carries them into the online path.  It completes (or
reuses) a checkpointed end-to-end run, deploys its artifacts behind a
:class:`~repro.serving.server.ModelServer`, and measures three things:

* **identity** — the same request must yield a bit-identical decision
  regardless of micro-batch composition, cache temperature (cold /
  fresh / expired-to-stale), client concurrency, and service
  availability.  Each check serves the full request schedule under a
  different serving configuration and compares every decision against
  a cold-cache, batch-of-one, single-client, fault-free reference.
* **load** — p50/p99 request latency and sustained closed-loop QPS per
  (availability x clients) cell, written to ``BENCH_serving.json``.
* **graceful degradation** — with a *cold* cache the fallback chain
  actually changes values (substitutes, MISSING), so decision
  agreement with the reference declines as availability drops; the
  no-cliff gate asserts no adjacent availability step loses more than
  half the remaining agreement (same rule as the batch chaos sweep).

The chaos cells serve with ``cache_ttl_s=0.0`` over a warm cache:
every lookup is expired, so every request dials the (faulty) service
and the stale tier must absorb the failures — the worst case for the
serving path that still has a correctness oracle (the warm values are
the batch run's own tables, so decisions must stay bit-identical at
every availability).

    python -m repro.experiments serve --scale 0.15 --seed 1
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.rng import derive_seed
from repro.datagen.entities import DataPoint
from repro.datagen.tasks import classification_task, generate_task_corpora
from repro.experiments.reporting import render_table
from repro.resilience import FaultInjector, FaultSpec
from repro.resources.service_sets import build_resource_suite
from repro.runs.manifest import RunManifest
from repro.serving import (
    Decision,
    ModelServer,
    ServingArtifacts,
    ServingConfig,
    run_load,
)

__all__ = ["ServeResult", "run_serve", "DEFAULT_SERVE_AVAILABILITIES"]

DEFAULT_SERVE_AVAILABILITIES: tuple[float, ...] = (1.0, 0.9, 0.75, 0.5)
DEFAULT_CLIENT_COUNTS: tuple[int, ...] = (1, 8)


@dataclass
class LoadCell:
    """One (availability x clients) measurement."""

    availability: float
    clients: int
    p50_ms: float
    p99_ms: float
    qps: float
    identical: bool
    degraded_requests: int
    fresh_hits: int
    stale_hits: int
    batches: int
    max_batch: int
    errors: int


@dataclass
class ServeResult:
    """Everything the serving experiment measured."""

    scale: float
    seed: int
    n_points: int
    n_requests: int
    warmed: int
    cells: list[LoadCell]
    #: named fault-free identity checks (cold / warm / expired / batch)
    identity_checks: dict[str, bool]
    availabilities: list[float]
    #: cold-cache decision agreement with the reference, per availability
    cold_agreements: list[float]
    #: label agreement between served decisions and the batch pipeline's
    #: whole-table scores (recorded, not gated: the batch path scores
    #: all rows in one BLAS call, which is a different forward shape)
    batch_agreement: float
    batch_score_max_diff: float

    @property
    def identity_ok(self) -> bool:
        return all(self.identity_checks.values()) and all(
            c.identical for c in self.cells
        )

    def graceful(self, max_step_loss: float = 0.5) -> bool:
        """No adjacent availability step loses more than
        ``max_step_loss`` of the previous level's cold-cache decision
        agreement (the serving analogue of the chaos AUPRC rule)."""
        order = np.argsort(self.availabilities)[::-1]
        ordered = [self.cold_agreements[i] for i in order]
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev > 0 and nxt < (1.0 - max_step_loss) * prev:
                return False
        return True

    def render(self) -> str:
        rows = [
            [
                cell.availability,
                cell.clients,
                round(cell.p50_ms, 2),
                round(cell.p99_ms, 2),
                round(cell.qps, 1),
                "yes" if cell.identical else "NO",
                cell.degraded_requests,
                cell.stale_hits,
                cell.errors,
            ]
            for cell in self.cells
        ]
        table = render_table(
            ["Avail", "clients", "p50 ms", "p99 ms", "QPS",
             "identical", "degraded", "stale", "errors"],
            rows,
            title=(
                f"Serving under chaos — latency/QPS per (availability x "
                f"clients), warm cache, ttl=0 (scale={self.scale}, "
                f"seed={self.seed}, {self.n_requests} requests over "
                f"{self.n_points} points)"
            ),
        )
        agreement_rows = [
            [a, f"{agree:.1%}"]
            for a, agree in zip(self.availabilities, self.cold_agreements)
        ]
        agreement = render_table(
            ["Avail", "cold-cache decision agreement"],
            agreement_rows,
            title="(cold cache: degradation changes values; agreement vs "
                  "fault-free reference)",
        )
        checks = ", ".join(
            f"{name}={'ok' if ok else 'FAIL'}"
            for name, ok in sorted(self.identity_checks.items())
        )
        identity = (
            "serving identity: decisions bit-identical across batching, "
            "cache state, concurrency, and availability"
            if self.identity_ok
            else "serving identity: VIOLATED (see cells above)"
        )
        verdict = (
            "serving degradation is graceful (no adjacent step loses >50% "
            "decision agreement)"
            if self.graceful()
            else "serving degradation is NOT graceful (cliff detected)"
        )
        batch_line = (
            f"batch-pipeline agreement: {self.batch_agreement:.1%} of labels "
            f"(max |score delta| {self.batch_score_max_diff:.2e}); "
            f"warm cache primed with {self.warmed} entries"
        )
        return "\n\n".join(
            [table, agreement, f"identity checks: {checks}",
             batch_line, identity, verdict]
        )


def _serve_all(
    server: ModelServer, points: list[DataPoint]
) -> dict[int, Decision]:
    """Serve every point once, sequentially, through the batcher."""
    return {p.point_id: server.decide(p) for p in points}


def _identical(
    decisions: dict[int, Decision], reference: dict[int, Decision]
) -> bool:
    return all(
        pid in decisions and decisions[pid].key == reference[pid].key
        for pid in reference
    )


def run_serve(
    scale: float = 0.15,
    seed: int = 1,
    availabilities: tuple[float, ...] = DEFAULT_SERVE_AVAILABILITIES,
    client_counts: tuple[int, ...] = DEFAULT_CLIENT_COUNTS,
    n_requests: int = 200,
    max_points: int = 120,
    run_dir: str | None = None,
    out_dir: str | None = None,
) -> ServeResult:
    """Deploy a completed run behind a server; measure identity + load.

    ``run_dir`` reuses an existing checkpointed end-to-end run when its
    manifest is already complete (the batch stages are by far the
    expensive part); otherwise the run is computed there first.  With
    no ``run_dir`` a temporary directory is used.
    """
    from repro.experiments.end_to_end import run_end_to_end

    directory = Path(
        run_dir
        if run_dir is not None
        else tempfile.mkdtemp(prefix="serve-run-")
    )
    needs_run = not RunManifest.exists(directory)
    if not needs_run:
        manifest = RunManifest.load(directory)
        needs_run = any(
            manifest.stages.get(s) is None
            or manifest.stages[s].status != "complete"
            for s in ("featurize", "train")
        )
    if needs_run:
        run_end_to_end(
            task="CT1", scale=scale, seed=seed,
            run_dir=str(directory), resume=RunManifest.exists(directory),
        )
    artifacts = ServingArtifacts.load(directory)

    # the live catalog, rebuilt exactly as the batch run built it
    task_config = classification_task("CT1")
    world, task_rt, splits = generate_task_corpora(
        task_config, scale=scale, seed=seed
    )
    resources = list(
        build_resource_suite(world, task_rt, n_history=10_000, seed=seed)
    )
    # never keep more points than requests: the round-robin schedule
    # must cover every point at least once for the identity comparison
    # against the full reference serve to be meaningful
    points = list(splits.image_test.points)[: min(max_points, n_requests)]

    # ------------------------------------------------------------------
    # reference: cold cache, batch of one, single client, no faults
    # ------------------------------------------------------------------
    with ModelServer(
        artifacts, resources,
        ServingConfig(warm_cache=False, max_batch_size=1, max_wait_s=0.0),
    ) as server:
        reference = _serve_all(server, points)

    # ------------------------------------------------------------------
    # fault-free identity checks across serving configurations
    # ------------------------------------------------------------------
    identity_checks: dict[str, bool] = {}
    warmed = 0
    for name, config, clients in (
        ("warm_fresh", ServingConfig(), 8),
        ("cold_batched", ServingConfig(warm_cache=False), 4),
        ("warm_expired", ServingConfig(cache_ttl_s=0.0, max_wait_s=0.001), 4),
    ):
        with ModelServer(artifacts, resources, config) as server:
            warmed = max(warmed, server.warmed)
            load = run_load(
                server, points, n_clients=clients, n_requests=n_requests
            )
            identity_checks[name] = load.ok and _identical(
                load.decisions, reference
            )

    # ------------------------------------------------------------------
    # chaos cells: warm cache + ttl=0 forces every request through the
    # faulty service with the stale tier as the safety net
    # ------------------------------------------------------------------
    cells: list[LoadCell] = []
    for availability in availabilities:
        for clients in client_counts:
            injector = FaultInjector(
                FaultSpec(transient_rate=1.0 - availability),
                seed=derive_seed(seed, f"serve-faults-{availability}-{clients}"),
            )
            wrapped = injector.wrap_all(resources)
            with ModelServer(
                artifacts, wrapped,
                ServingConfig(cache_ttl_s=0.0, max_wait_s=0.001),
            ) as server:
                load = run_load(
                    server, points, n_clients=clients, n_requests=n_requests
                )
                stats = server.stats()
            cells.append(
                LoadCell(
                    availability=availability,
                    clients=clients,
                    p50_ms=load.p50_ms,
                    p99_ms=load.p99_ms,
                    qps=load.qps,
                    identical=load.ok and _identical(load.decisions, reference),
                    degraded_requests=sum(
                        1 for d in load.decisions.values() if d.degraded
                    ),
                    fresh_hits=stats["cache"]["fresh_hits"],
                    stale_hits=stats["cache"]["stale_hits"],
                    batches=stats["batcher"]["batches"],
                    max_batch=stats["batcher"]["max_batch"],
                    errors=len(load.errors),
                )
            )

    # ------------------------------------------------------------------
    # cold-cache degradation curve: no warm values to fall back on, so
    # availability really does change decisions — gate on no-cliff
    # ------------------------------------------------------------------
    cold_agreements: list[float] = []
    for availability in availabilities:
        injector = FaultInjector(
            FaultSpec(transient_rate=1.0 - availability),
            seed=derive_seed(seed, f"serve-cold-{availability}"),
        )
        wrapped = injector.wrap_all(resources)
        with ModelServer(
            artifacts, wrapped,
            ServingConfig(warm_cache=False, max_batch_size=1, max_wait_s=0.0),
        ) as server:
            decisions = _serve_all(server, points)
        matches = sum(
            1
            for pid, ref in reference.items()
            if decisions[pid].label == ref.label
        )
        cold_agreements.append(matches / max(len(reference), 1))

    # ------------------------------------------------------------------
    # agreement with the batch pipeline's whole-table forward pass
    # ------------------------------------------------------------------
    test_table = artifacts.tables["test"]
    modality = test_table.modalities[0]
    with ModelServer(artifacts, resources) as server:
        model_names = [
            n for n in server.model_schema(modality).names
            if n in test_table.schema
        ]
    batch_scores = artifacts.model.predict_proba(
        test_table.select_features(model_names)
    )
    by_pid = {
        int(pid): float(score)
        for pid, score in zip(test_table.point_ids, batch_scores)
    }
    diffs = [
        abs(by_pid[pid] - ref.score)
        for pid, ref in reference.items()
        if pid in by_pid
    ]
    label_matches = [
        int(by_pid[pid] >= 0.5) == ref.label
        for pid, ref in reference.items()
        if pid in by_pid
    ]
    batch_agreement = (
        sum(label_matches) / len(label_matches) if label_matches else 0.0
    )
    batch_score_max_diff = max(diffs) if diffs else 0.0

    result = ServeResult(
        scale=scale,
        seed=seed,
        n_points=len(points),
        n_requests=n_requests,
        warmed=warmed,
        cells=cells,
        identity_checks=identity_checks,
        availabilities=list(availabilities),
        cold_agreements=cold_agreements,
        batch_agreement=batch_agreement,
        batch_score_max_diff=batch_score_max_diff,
    )

    directory_out = out_dir or os.environ.get("REPRO_BENCH_DIR")
    if directory_out:
        from repro.obs.bench import BenchArtifact

        artifact = BenchArtifact("serving", scale=scale, seed=seed)
        artifact.record(
            n_points=result.n_points,
            n_requests=result.n_requests,
            warmed=result.warmed,
            cells=[
                {
                    "availability": c.availability,
                    "clients": c.clients,
                    "p50_ms": round(c.p50_ms, 3),
                    "p99_ms": round(c.p99_ms, 3),
                    "qps": round(c.qps, 1),
                    "identical": c.identical,
                    "degraded_requests": c.degraded_requests,
                    "stale_hits": c.stale_hits,
                    "batches": c.batches,
                    "max_batch": c.max_batch,
                    "errors": c.errors,
                }
                for c in result.cells
            ],
            identity_checks=result.identity_checks,
            identity_ok=result.identity_ok,
            availabilities=result.availabilities,
            cold_agreements=[round(a, 4) for a in result.cold_agreements],
            graceful=result.graceful(),
            batch_agreement=round(result.batch_agreement, 4),
            batch_score_max_diff=float(result.batch_score_max_diff),
        )
        artifact.write(directory_out)
    return result
