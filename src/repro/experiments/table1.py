"""Table 1 — dataset inventory for the five classification tasks.

Regenerates the paper's Table 1 at reproduction scale: number of labeled
old-modality (text) points, unlabeled new-modality (image) points to be
weakly labeled, labeled image test points, and the test-set positive
rate.  Absolute counts are the paper's divided by ~1000 (see DESIGN.md);
positive rates target the paper's exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.tasks import list_tasks
from repro.experiments.common import ExperimentContext
from repro.experiments.reporting import render_table

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: the paper's Table 1 (counts in raw units, rates in percent)
PAPER_TABLE1 = {
    "CT1": {"n_lbd_text": 18_000_000, "n_unlbld_image": 7_200_000, "n_lbd_image": 17_000, "pct_pos": 4.1},
    "CT2": {"n_lbd_text": 26_000_000, "n_unlbld_image": 7_400_000, "n_lbd_image": 203_000, "pct_pos": 9.3},
    "CT3": {"n_lbd_text": 19_000_000, "n_unlbld_image": 7_400_000, "n_lbd_image": 201_000, "pct_pos": 3.2},
    "CT4": {"n_lbd_text": 25_000_000, "n_unlbld_image": 7_300_000, "n_lbd_image": 139_000, "pct_pos": 0.9},
    "CT5": {"n_lbd_text": 25_000_000, "n_unlbld_image": 7_400_000, "n_lbd_image": 203_000, "pct_pos": 6.9},
}


@dataclass
class Table1Result:
    """Measured dataset inventory per task."""

    rows: dict[str, dict[str, object]]
    scale: float
    seed: int

    def render(self) -> str:
        table_rows = []
        for task, row in self.rows.items():
            paper = PAPER_TABLE1[task]
            table_rows.append(
                [
                    task,
                    row["n_lbd_text"],
                    row["n_unlbld_image"],
                    row["n_lbd_image"],
                    f"{row['pct_pos']}%",
                    f"{paper['pct_pos']}%",
                ]
            )
        return render_table(
            ["Task", "n_lbd_text", "n_unlbld_img", "n_lbd_img", "% pos", "paper % pos"],
            table_rows,
            title=f"Table 1 (scale={self.scale}, seed={self.seed})",
        )


def run_table1(scale: float = 0.5, seed: int = 1) -> Table1Result:
    """Generate all five tasks' corpora and report their inventory."""
    rows = {}
    for task_name in list_tasks():
        ctx = ExperimentContext(task_name=task_name, scale=scale, seed=seed)
        rows[task_name] = ctx.splits.table1_row()
    return Table1Result(rows=rows, scale=scale, seed=seed)
