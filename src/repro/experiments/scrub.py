"""``python -m repro.experiments scrub`` — audit and repair a run's store.

The library-level scrubber (:mod:`repro.runs.scrub`) knows how to audit
any manifest; *repair* needs an experiment-specific replay recipe.  This
module supplies the ``end_to_end`` one: :func:`rebuild_end_to_end`
reconstructs the run's exact pipeline (task / scale / seed from the
manifest context, per-stage knobs from the recorded stage configs) so
:meth:`~repro.core.pipeline.CrossModalPipeline.recompute_stage` replays
each damaged stage bit-identically, and the content hash in every
artifact reference acts as the acceptance oracle.

A ``BENCH_scrub.json`` artifact records the audit counts and wall time
so store health is diffable across CI runs like every other benchmark.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import repro.obs as obs
from repro.core.config import CurationConfig, PipelineConfig, TrainingConfig
from repro.core.exceptions import RepairError
from repro.experiments.end_to_end import build_pipeline_for_run
from repro.obs.bench import BenchArtifact
from repro.runs import RepairEngine, RunManifest, RunStore, ScrubReport, scrub_run

__all__ = ["rebuild_end_to_end", "make_repair_engine", "run_scrub"]


def rebuild_end_to_end(manifest: RunManifest):
    """Reconstruct the pipeline + splits of a recorded ``end_to_end`` run.

    The manifest context pins task / scale / seed; the per-stage knobs
    that change artifact bytes (curation config, graph backend, training
    config, service-set selections) are read back from the recorded
    stage configs, so a run launched with non-default flags replays
    faithfully.  Raises :class:`RepairError` for manifests this build
    cannot replay (other experiments, incompatible config schemas).
    """
    context = manifest.context
    if context.get("experiment") != "end_to_end":
        raise RepairError(
            f"scrub repair only knows how to replay 'end_to_end' runs; this "
            f"manifest records experiment={context.get('experiment')!r}"
        )
    try:
        task = str(context["task"])
        scale = float(context["scale"])
        seed = int(context["seed"])
    except (KeyError, TypeError, ValueError) as exc:
        raise RepairError(
            f"run context {context!r} lacks a usable task/scale/seed: {exc}"
        ) from exc

    config_kwargs: dict = {"seed": seed}
    curate = manifest.stages.get("curate")
    train = manifest.stages.get("train")
    try:
        if curate is not None and isinstance(curate.config, dict):
            recorded = curate.config.get("curation")
            if isinstance(recorded, dict):
                config_kwargs["curation"] = CurationConfig(**recorded)
            lf_sets = curate.config.get("lf_service_sets")
            if lf_sets is not None:
                config_kwargs["lf_service_sets"] = tuple(lf_sets)
        if train is not None and isinstance(train.config, dict):
            recorded = train.config.get("training")
            if isinstance(recorded, dict):
                recorded = dict(recorded)
                # JSON round-trips tuples as lists; the config dataclass
                # (and the fingerprint it feeds) expects the tuple back
                if recorded.get("hidden_sizes") is not None:
                    recorded["hidden_sizes"] = tuple(recorded["hidden_sizes"])
                config_kwargs["training"] = TrainingConfig(**recorded)
            if "model_service_sets" in train.config:
                config_kwargs["model_service_sets"] = tuple(
                    train.config["model_service_sets"]
                )
            if "include_image_features" in train.config:
                config_kwargs["include_image_features"] = bool(
                    train.config["include_image_features"]
                )
    except TypeError as exc:
        raise RepairError(
            f"recorded stage configs do not match this build's config schema "
            f"({exc}); the run was written by an incompatible version"
        ) from exc
    return build_pipeline_for_run(task, scale, seed, PipelineConfig(**config_kwargs))


def make_repair_engine(
    run_dir: str | Path, store: RunStore | None = None
) -> RepairEngine:
    """A :class:`RepairEngine` for a checkpointed ``end_to_end`` run.

    Pipeline reconstruction (corpus generation, catalog build) is
    deferred to the first stage replay, so building an engine for a
    healthy store costs nothing beyond loading the manifest.
    """
    run_dir = Path(run_dir)
    manifest = RunManifest.load(run_dir)
    if store is None:
        store = RunStore(run_dir)
    state: dict = {}

    def recompute(record):
        if "pipeline" not in state:
            state["pipeline"] = rebuild_end_to_end(manifest)
        pipeline, splits = state["pipeline"]
        return pipeline.recompute_stage(record.name, manifest, store, splits)

    return RepairEngine(manifest, store, recompute)


def run_scrub(
    run_dir: str | Path,
    repair: bool = False,
    out_dir: str | None = None,
) -> ScrubReport:
    """Audit every artifact the run references; optionally repair.

    Writes ``BENCH_scrub.json`` (audit counts, wall time) into
    ``out_dir`` / ``$REPRO_BENCH_DIR`` / the run directory.
    """
    run_dir = Path(run_dir)
    t0 = time.perf_counter()
    with obs.span("experiments.scrub", run_dir=str(run_dir), repair=repair):
        engine = make_repair_engine(run_dir) if repair else None
        report = scrub_run(run_dir, engine=engine, repair=repair)
    wall = time.perf_counter() - t0

    context = (
        engine.manifest.context if engine is not None else RunManifest.load(run_dir).context
    )
    artifact = BenchArtifact(
        "scrub",
        scale=float(context.get("scale", 0.0) or 0.0),
        seed=int(context.get("seed", 0) or 0),
    )
    artifact.time("wall_seconds", wall)
    artifact.record(
        run_dir=str(run_dir),
        repair=repair,
        store_healthy=report.healthy,
        **{f"n_{status}": count for status, count in report.counts.items()},
    )
    bench_dir = out_dir or os.environ.get("REPRO_BENCH_DIR") or str(run_dir)
    artifact.write(bench_dir)
    return report
