"""§6.6 — effect of training method and feature materialization.

Two comparisons from the paper's multi-modal training discussion:

* **Fusion strategies** — early fusion vs intermediate fusion vs
  DeViSE, all trained on the same curated data.  Paper: early beats
  intermediate by up to 1.22× (avg 1.08×) and DeViSE by up to 5.52×
  (avg 2.21×).
* **Feature materialization** — service-derived features vs a generic
  materialized CNN embedding vs the proprietary org-wide embedding.
  Paper: services beat the generic embedding by up to 1.54×; the org
  embedding beats the generic one by a small 1.04× factor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.common import (
    ExperimentContext,
    model_auprc,
    train_table_model,
)
from repro.experiments.reporting import render_table

__all__ = ["FusionAblationResult", "run_fusion_ablation"]


@dataclass
class FusionAblationResult:
    """AUPRC per fusion strategy and per feature-materialization path."""

    task: str
    fusion_auprc: dict[str, float]
    materialization_auprc: dict[str, float]
    baseline_auprc: float
    scale: float
    seed: int

    @property
    def early_vs_intermediate(self) -> float:
        return self.fusion_auprc["early"] / max(self.fusion_auprc["intermediate"], 1e-9)

    @property
    def early_vs_devise(self) -> float:
        return self.fusion_auprc["early"] / max(self.fusion_auprc["devise"], 1e-9)

    @property
    def services_vs_generic(self) -> float:
        return self.materialization_auprc["services"] / max(
            self.materialization_auprc["generic_embedding"], 1e-9
        )

    @property
    def org_vs_generic(self) -> float:
        return self.materialization_auprc["org_embedding"] / max(
            self.materialization_auprc["generic_embedding"], 1e-9
        )

    def render(self) -> str:
        fusion_rows = [
            [name, round(value, 3), round(value / self.baseline_auprc, 2)]
            for name, value in self.fusion_auprc.items()
        ]
        fusion = render_table(
            ["Fusion", "AUPRC", "relative"],
            fusion_rows,
            title=f"§6.6 fusion comparison, {self.task} (scale={self.scale}, seed={self.seed})",
        )
        mat_rows = [
            [name, round(value, 3)]
            for name, value in self.materialization_auprc.items()
        ]
        materialization = render_table(
            ["Features", "AUPRC"],
            mat_rows,
            title="§6.6 feature materialization (weakly supervised image model)",
        )
        notes = (
            f"\nearly/intermediate: {self.early_vs_intermediate:.2f}x (paper up to 1.22x)"
            f"\nearly/DeViSE: {self.early_vs_devise:.2f}x (paper up to 5.52x)"
            f"\nservices/generic: {self.services_vs_generic:.2f}x (paper up to 1.54x)"
            f"\norg/generic embedding: {self.org_vs_generic:.2f}x (paper 1.04x)"
        )
        return fusion + "\n\n" + materialization + notes


def run_fusion_ablation(
    task_name: str = "CT1", scale: float = 0.5, seed: int = 1
) -> FusionAblationResult:
    """Compare the three fusion strategies and three feature paths."""
    ctx = ExperimentContext(task_name=task_name, scale=scale, seed=seed)
    curation = ctx.curation

    fusion_scores: dict[str, float] = {}
    for fusion in ("early", "intermediate", "devise"):
        assert ctx.config is not None
        config = replace(
            ctx.config, training=replace(ctx.config.training, fusion=fusion)
        )
        fusion_ctx = ctx.with_config(config)
        model = fusion_ctx.pipeline.train(ctx.text_table, curation)
        metrics, _ = fusion_ctx.pipeline.evaluate(model, ctx.test_table)
        fusion_scores[fusion] = metrics["auprc"]

    # feature materialization: weakly supervised image model on three
    # feature paths (service features only / generic CNN / org emb)
    mask = curation.coverage_mask
    image_aug = curation.image_table_augmented
    assert image_aug is not None
    rows = np.flatnonzero(mask)
    covered = image_aug.select_rows(rows)
    targets = curation.probabilistic_labels[mask]
    service_features = [
        s.name
        for s in ctx.pipeline.schema
        if s.service_set in ("A", "B", "C", "D") and s.servable
    ]
    paths = {
        "services": service_features,
        "generic_embedding": ["generic_embedding"],
        "org_embedding": ["org_embedding"],
    }
    materialization: dict[str, float] = {}
    for name, features in paths.items():
        scores = []
        for i in range(3):
            model = train_table_model(
                covered, targets, features, seed=ctx.model_seed(f"mat-{name}", i)
            )
            scores.append(
                model_auprc(model, ctx.test_table, ctx.test_table.labels)
            )
        materialization[name] = float(np.mean(scores))

    return FusionAblationResult(
        task=task_name,
        fusion_auprc=fusion_scores,
        materialization_auprc=materialization,
        baseline_auprc=ctx.baseline_auprc,
        scale=scale,
        seed=seed,
    )
