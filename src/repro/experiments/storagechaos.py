"""Storage chaos — self-healing under injected filesystem faults.

The gate this experiment enforces: **under every injected fault type, a
checkpointed run either completes bit-identical to the fault-free
reference after auto-repair, or fails with a typed error — it never
serves or returns wrong bytes.**

Protocol, per (fault type × rate) cell:

1. run the end-to-end pipeline with :class:`FaultyFS` injecting that
   fault into every artifact write (seeded, so the cell is
   reproducible); the run either completes (silent damage — bit flips,
   torn directory entries — lands on disk but the live values are
   right) or aborts with a typed :class:`CheckpointError`;
2. audit the damage with a report-only scrub;
3. heal, alternating between the two repair paths so both stay
   honest: even cells run offline ``scrub --repair`` (lineage replay
   via :class:`RepairEngine`) and then resume; odd cells resume with
   ``auto_repair=True`` (in-checkpointer recompute/verify/restore);
4. verify: final scrub reports healthy, every manifest artifact hash
   equals the fault-free reference's, result metrics are bit-identical,
   and :class:`ServingArtifacts` loads from the healed run.

A cell passes iff the faulty run's failure (if any) was typed AND the
healed run verifies bit-identical.  ``BENCH_storagechaos.json`` records
the sweep.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path

import repro.obs as obs
from repro.core.exceptions import CheckpointError
from repro.experiments.end_to_end import run_end_to_end
from repro.experiments.reporting import render_table
from repro.experiments.scrub import make_repair_engine
from repro.obs.bench import BenchArtifact
from repro.runs import FAULT_TYPES, FaultFSConfig, RunManifest, inject_faults, scrub_run

__all__ = [
    "ChaosCell",
    "StorageChaosResult",
    "run_storagechaos",
    "DEFAULT_FAULT_RATES",
]

#: per-write fault probabilities swept by default (a run persists only a
#: handful of artifacts, so rates must be aggressive to bite)
DEFAULT_FAULT_RATES = (0.25, 0.6)


def _manifest_hashes(run_dir: Path) -> dict[str, dict[str, str]]:
    manifest = RunManifest.load(run_dir)
    return {
        name: {key: ref.hash for key, ref in sorted(record.artifacts.items())}
        for name, record in manifest.stages.items()
    }


@dataclass
class ChaosCell:
    """One (fault type × rate) cell's full life cycle."""

    fault: str
    rate: float
    #: completed | typed_failure | untyped_failure
    outcome: str
    error: str
    faults_injected: int
    #: damage the post-run audit found (corrupt + missing counts)
    damage_found: int
    heal_path: str
    repaired: int
    healed: bool
    healthy_after: bool
    hashes_match: bool
    metrics_match: bool
    serving_loads: bool

    @property
    def ok(self) -> bool:
        """The gate, per cell: typed failures only, and the healed run
        is bit-identical to the fault-free reference end to end."""
        return (
            self.outcome != "untyped_failure"
            and self.healed
            and self.healthy_after
            and self.hashes_match
            and self.metrics_match
            and self.serving_loads
        )


@dataclass
class StorageChaosResult:
    """The full sweep plus the reference run it verified against."""

    task: str
    scale: float
    seed: int
    cells: list[ChaosCell]
    wall_seconds: float = 0.0
    reference_metrics: dict[str, float] = field(default_factory=dict)

    @property
    def holds(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def verdict(self) -> str:
        if self.holds:
            return (
                "storage chaos verdict: self-healing holds — every faulted "
                "run completed bit-identical to the reference after repair, "
                "or failed with a typed error; zero wrong-bytes cases"
            )
        bad = [f"{c.fault}@{c.rate}" for c in self.cells if not c.ok]
        return (
            f"storage chaos verdict: VIOLATION in {len(bad)} cell(s) "
            f"({', '.join(bad)}) — see table above"
        )

    def render(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.fault,
                    c.rate,
                    c.outcome,
                    c.faults_injected,
                    c.damage_found,
                    c.heal_path,
                    c.repaired,
                    "yes" if c.hashes_match else "NO",
                    "yes" if c.metrics_match else "NO",
                    "yes" if c.serving_loads else "NO",
                    "ok" if c.ok else "FAIL",
                ]
            )
        table = render_table(
            ["fault", "rate", "run outcome", "injected", "damaged",
             "heal path", "repaired", "hashes=ref", "metrics=ref",
             "serves", "cell"],
            rows,
            title=(
                f"storage chaos — {self.task} scale={self.scale} "
                f"seed={self.seed} ({self.wall_seconds:.0f}s)"
            ),
        )
        return table + "\n" + self.verdict()


def run_storagechaos(
    task: str = "CT1",
    scale: float = 0.08,
    seed: int = 7,
    fault_types: tuple[str, ...] | None = None,
    fault_rates: tuple[float, ...] | None = None,
    out_dir: str | None = None,
) -> StorageChaosResult:
    """Sweep fault type × rate and verify the self-healing gate."""
    fault_types = tuple(fault_types) if fault_types else FAULT_TYPES
    fault_rates = tuple(fault_rates) if fault_rates else DEFAULT_FAULT_RATES
    t0 = time.perf_counter()
    root = Path(out_dir) if out_dir else Path(tempfile.mkdtemp(prefix="storagechaos_"))
    root.mkdir(parents=True, exist_ok=True)

    with obs.span("experiments.storagechaos.reference"):
        ref_dir = root / "reference"
        reference = run_end_to_end(task=task, scale=scale, seed=seed,
                                   run_dir=str(ref_dir))
    ref_hashes = _manifest_hashes(ref_dir)

    cells: list[ChaosCell] = []
    for index, (fault, rate) in enumerate(product(fault_types, fault_rates)):
        cell_dir = root / f"cell_{index:02d}_{fault}_{rate:g}"
        config = FaultFSConfig.single(
            fault,
            rate,
            seed=seed * 1000 + index,
            # scope injection to this cell's artifact store: the
            # manifest, result.json, and BENCH files stay undamaged so
            # the experiment measures artifact self-healing, not
            # manifest loss
            path_substring=str(cell_dir / "artifacts"),
        )

        # phase 1: the faulty run
        with obs.span("experiments.storagechaos.cell", fault=fault, rate=rate):
            with inject_faults(config) as fs:
                metrics = None
                try:
                    run = run_end_to_end(task=task, scale=scale, seed=seed,
                                         run_dir=str(cell_dir))
                    outcome, error = "completed", ""
                    metrics = dict(run.metrics)
                except CheckpointError as exc:
                    outcome, error = "typed_failure", type(exc).__name__
                except Exception as exc:  # noqa: BLE001 - the gate itself
                    outcome, error = "untyped_failure", type(exc).__name__
            faults_injected = len(fs.events)

            # phase 2: audit (faults are no longer injected)
            audit = scrub_run(cell_dir)
            damage_found = sum(
                count
                for status, count in audit.counts.items()
                if status in ("corrupt", "missing")
            )

            # phase 3: heal — alternate the two repair paths
            repaired = 0
            healed = True
            if index % 2 == 0 and any(
                e.status in ("corrupt", "missing") for e in audit.entries
            ):
                heal_path = "scrub --repair + resume"
                try:
                    engine = make_repair_engine(cell_dir)
                    repair_report = scrub_run(cell_dir, engine=engine, repair=True)
                    repaired = repair_report.repaired
                    healed = repair_report.healthy
                except CheckpointError:
                    healed = False
            else:
                heal_path = "resume --auto-repair"
            metrics_after = None
            if healed:
                try:
                    resumed = run_end_to_end(
                        task=task, scale=scale, seed=seed,
                        run_dir=str(cell_dir), resume=True, auto_repair=True,
                    )
                    metrics_after = dict(resumed.metrics)
                    repaired += len(resumed.repaired_stages)
                except CheckpointError:
                    healed = False

            # phase 4: verify bit-identical to the fault-free reference
            healthy_after = hashes_match = metrics_match = serving_loads = False
            if healed and metrics_after is not None:
                healthy_after = scrub_run(cell_dir).healthy
                hashes_match = _manifest_hashes(cell_dir) == ref_hashes
                metrics_match = metrics_after == reference.metrics and (
                    metrics is None or metrics == reference.metrics
                )
                try:
                    from repro.serving.artifacts import ServingArtifacts

                    ServingArtifacts.load(cell_dir)
                    serving_loads = True
                except Exception:  # noqa: BLE001 - verdict, not control flow
                    serving_loads = False

        cells.append(
            ChaosCell(
                fault=fault,
                rate=rate,
                outcome=outcome,
                error=error,
                faults_injected=faults_injected,
                damage_found=damage_found,
                heal_path=heal_path,
                repaired=repaired,
                healed=healed,
                healthy_after=healthy_after,
                hashes_match=hashes_match,
                metrics_match=metrics_match,
                serving_loads=serving_loads,
            )
        )

    result = StorageChaosResult(
        task=task,
        scale=scale,
        seed=seed,
        cells=cells,
        wall_seconds=time.perf_counter() - t0,
        reference_metrics=dict(reference.metrics),
    )

    artifact = BenchArtifact("storagechaos", scale=scale, seed=seed)
    artifact.time("wall_seconds", result.wall_seconds)
    per_fault: dict[str, int] = {}
    for cell in cells:
        per_fault[cell.fault] = per_fault.get(cell.fault, 0) + cell.faults_injected
    artifact.record(
        task=task,
        n_cells=len(cells),
        n_ok=sum(1 for c in cells if c.ok),
        holds=result.holds,
        faults_injected=sum(c.faults_injected for c in cells),
        damage_found=sum(c.damage_found for c in cells),
        repaired=sum(c.repaired for c in cells),
        typed_failures=sum(1 for c in cells if c.outcome == "typed_failure"),
        untyped_failures=sum(1 for c in cells if c.outcome == "untyped_failure"),
        **{f"faults_{k}": v for k, v in per_fault.items()},
    )
    bench_dir = os.environ.get("REPRO_BENCH_DIR") or str(root)
    artifact.write(bench_dir)
    return result
