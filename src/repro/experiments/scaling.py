"""Scaling-curve benchmark: graph-build cost vs corpus size per backend.

The exact kNN build is O(n²) — the asymptotic wall between this
pipeline and "millions of users" world sizes (ROADMAP).  This
experiment sweeps corpus size × graph backend and measures, per cell:

* build wall time plus per-stage timings from the obs spans
  (channel prep, hashing/seeding, scoring/iteration, symmetrization);
* structural quality against the exact oracle at the same size
  (:func:`~repro.propagation.recall.compare_graphs`);
* downstream quality: AUPRC of label propagation over the approximate
  graph vs over the oracle, from identical seeds
  (:func:`~repro.propagation.recall.propagation_auprc_delta`).

The corpus is a planted-cluster feature table (clustered embeddings +
cluster-correlated categorical tokens + noisy binary labels), so
ground truth for the downstream AUPRC exists at every size and the
benchmark is self-contained — no world generation in the timing path.

Everything lands in ``BENCH_scaling.json``: the artifact that shows
near-linear approximate builds where the exact build is quadratic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.rng import spawn
from repro.datagen.entities import Modality
from repro.experiments.reporting import render_table
from repro.features.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.features.table import FeatureTable
from repro.obs.bench import BenchArtifact
from repro.propagation.graph import GraphConfig, SimilarityGraph, build_knn_graph
from repro.propagation.propagate import LabelPropagation
from repro.propagation.recall import compare_graphs, propagation_auprc_delta

__all__ = [
    "DEFAULT_SIZES",
    "ScalingCell",
    "ScalingResult",
    "planted_table",
    "run_scaling",
]

DEFAULT_SIZES = (600, 1200, 2400, 4800, 9600)
DEFAULT_BACKENDS = ("exact", "lsh", "nn-descent")

#: per-stage spans worth splitting out in the artifact, by backend
_STAGE_SPANS = (
    "graph.channels", "graph.hash", "graph.bucket", "graph.init",
    "graph.iterate", "graph.score", "graph.symmetrize",
)


def planted_table(
    n: int,
    seed: int = 0,
    n_clusters: int | None = None,
    dim: int = 32,
    label_noise: float = 0.08,
) -> tuple[FeatureTable, np.ndarray]:
    """A clustered feature table with known labels.

    Points sit near one of ``n_clusters`` embedding centroids and carry
    that cluster's categorical token (plus a uniform noise token).
    Labels follow the cluster's class with ``label_noise`` flips — so
    similarity structure predicts labels, as in the paper's graphs.

    By default the cluster count grows with ``n`` (constant ~100-point
    clusters): a growing corpus means more organizations, not bigger
    ones, and it keeps the neighbourhood structure comparable across
    the sweep's sizes.
    """
    if n_clusters is None:
        n_clusters = max(8, round(n / 100))
    rng = spawn(seed, f"scaling-table-{n}")
    centers = rng.standard_normal((n_clusters, dim)).astype(np.float64)
    cluster_class = (np.arange(n_clusters) % 3 == 0)  # ~1/3 positive
    assign = rng.integers(0, n_clusters, size=n)
    embeddings = centers[assign] + 0.35 * rng.standard_normal((n, dim))
    noise_tokens = rng.integers(0, 8, size=n)
    labels = cluster_class[assign] ^ (rng.random(n) < label_noise)

    schema = FeatureSchema()
    schema.add(FeatureSpec("org_embedding", FeatureKind.EMBEDDING))
    schema.add(FeatureSpec("org_tokens", FeatureKind.CATEGORICAL))
    columns = {
        "org_embedding": [tuple(map(float, e)) for e in embeddings],
        "org_tokens": [
            {f"c{assign[i]}", f"noise{noise_tokens[i]}"} for i in range(n)
        ],
    }
    table = FeatureTable(
        schema,
        columns,
        point_ids=list(range(n)),
        modalities=[Modality.IMAGE] * n,
        labels=labels.astype(np.int64),
    )
    return table, labels.astype(np.int64)


@dataclass
class ScalingCell:
    """One (size, backend) measurement."""

    size: int
    backend: str
    build_seconds: float
    stage_seconds: dict[str, float]
    n_edges: int
    neighbor_recall: float
    edge_recall: float
    max_weight_divergence: float
    auprc: float
    auprc_oracle: float
    auprc_delta: float
    speedup_vs_exact: float


@dataclass
class ScalingResult:
    """The full size × backend sweep."""

    cells: list[ScalingCell]
    sizes: tuple[int, ...]
    backends: tuple[str, ...]
    seed: int
    k: int
    artifact_path: str | None = None
    config_overrides: dict[str, object] = field(default_factory=dict)

    def cell(self, size: int, backend: str) -> ScalingCell:
        for c in self.cells:
            if c.size == size and c.backend == backend:
                return c
        raise KeyError((size, backend))

    def render(self) -> str:
        rows = []
        for c in self.cells:
            rows.append([
                c.size,
                c.backend,
                f"{c.build_seconds:.3f}",
                f"{c.speedup_vs_exact:.2f}x",
                round(c.neighbor_recall, 3),
                round(c.max_weight_divergence, 6),
                f"{c.auprc_delta:+.4f}",
                c.n_edges,
            ])
        table = render_table(
            ["n", "backend", "build s", "vs exact", "recall",
             "max w-div", "AUPRC delta", "edges"],
            rows,
            title=(
                f"Graph scaling — build time × quality vs the exact oracle "
                f"(k={self.k}, seed={self.seed})"
            ),
        )
        if self.artifact_path:
            table += f"\n[bench artifact: {self.artifact_path}]"
        return table


def _build_traced(table, config, executor=None):
    """Build a graph under a private tracer; returns (graph, wall
    seconds, per-stage seconds).  The caller's active tracer (if any)
    is restored afterwards."""
    previous = obs.current()
    tracer = obs.enable(obs.Tracer("scaling"))
    try:
        graph = build_knn_graph(table, config, executor=executor)
    finally:
        if previous is not None:
            obs.enable(previous)
        else:
            obs.disable()
    build_spans = tracer.find_spans("graph.build_knn")
    wall = sum(s.duration for s in build_spans)
    stages = {
        name: sum(s.duration for s in tracer.find_spans(name))
        for name in _STAGE_SPANS
        if tracer.find_spans(name)
    }
    return graph, wall, stages


def _graph_config(backend: str, k: int, seed: int, **overrides) -> GraphConfig:
    return GraphConfig(k=k, backend=backend, seed=seed, **overrides)


def _downstream(
    graph: SimilarityGraph,
    oracle: SimilarityGraph,
    labels: np.ndarray,
    seed: int,
    size: int,
) -> tuple[float, float, float]:
    """Propagation AUPRC on the graph vs the oracle, identical seeds."""
    rng = spawn(seed, f"scaling-seeds-{size}")
    n = len(labels)
    n_seeds = max(20, n // 20)
    seed_indices = np.sort(rng.choice(n, size=n_seeds, replace=False))
    seed_labels = labels[seed_indices]
    prior = float(np.clip(labels.mean(), 1e-4, 0.5))
    return propagation_auprc_delta(
        graph,
        oracle,
        seed_indices,
        seed_labels,
        labels,
        propagation=LabelPropagation(prior=prior),
    )


def run_scaling(
    sizes: tuple[int, ...] | list[int] | None = None,
    backends: tuple[str, ...] | list[str] | None = None,
    seed: int = 1,
    k: int = 10,
    out_dir: str | None = None,
    executor=None,
    **config_overrides,
) -> ScalingResult:
    """Sweep corpus size × graph backend; write ``BENCH_scaling.json``.

    ``exact`` is always measured (it is the oracle for recall and the
    speedup denominator) even when not listed in ``backends``.
    ``config_overrides`` pass through to every :class:`GraphConfig`
    (e.g. ``lsh_tables=16``); ``out_dir=None`` resolves to the
    ``REPRO_BENCH_DIR`` env var and then the working directory.
    """
    import os

    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    backends = tuple(backends) if backends else DEFAULT_BACKENDS
    cells: list[ScalingCell] = []
    artifact = BenchArtifact("scaling", scale=float(max(sizes)), seed=seed)

    with obs.span("experiment.scaling.sweep", sizes=list(sizes)):
        for size in sizes:
            table, labels = planted_table(size, seed=seed)
            oracle, oracle_wall, oracle_stages = _build_traced(
                table, _graph_config("exact", k, seed, **config_overrides),
                executor,
            )
            for backend in backends:
                if backend == "exact":
                    graph, wall, stages = oracle, oracle_wall, oracle_stages
                else:
                    graph, wall, stages = _build_traced(
                        table,
                        _graph_config(backend, k, seed, **config_overrides),
                        executor,
                    )
                quality = compare_graphs(graph, oracle)
                auprc_graph, auprc_oracle, delta = _downstream(
                    graph, oracle, labels, seed, size
                )
                cell = ScalingCell(
                    size=size,
                    backend=backend,
                    build_seconds=wall,
                    stage_seconds=stages,
                    n_edges=quality.n_edges,
                    neighbor_recall=quality.neighbor_recall,
                    edge_recall=quality.edge_recall,
                    max_weight_divergence=quality.max_weight_divergence,
                    auprc=auprc_graph,
                    auprc_oracle=auprc_oracle,
                    auprc_delta=delta,
                    speedup_vs_exact=(oracle_wall / wall) if wall > 0 else 0.0,
                )
                cells.append(cell)
                tag = f"{backend}_n{size}"
                artifact.time(f"build_{tag}", wall)
                for stage, secs in stages.items():
                    artifact.time(f"{stage.removeprefix('graph.')}_{tag}", secs)
                artifact.record(**{
                    f"recall_{tag}": round(cell.neighbor_recall, 4),
                    f"edge_recall_{tag}": round(cell.edge_recall, 4),
                    f"weight_divergence_{tag}": cell.max_weight_divergence,
                    f"auprc_delta_{tag}": round(cell.auprc_delta, 4),
                    f"speedup_{tag}": round(cell.speedup_vs_exact, 3),
                    f"n_edges_{tag}": cell.n_edges,
                })

    largest = max(sizes)
    for backend in backends:
        if backend == "exact":
            continue
        cell = next(
            (c for c in cells if c.size == largest and c.backend == backend),
            None,
        )
        if cell is not None:
            artifact.record(**{
                f"{backend}_meets_wall_target": cell.speedup_vs_exact > 2.0,
                f"{backend}_meets_recall_target": cell.neighbor_recall >= 0.9,
                f"{backend}_meets_auprc_target": abs(cell.auprc_delta) <= 0.02,
            })
    artifact.record(sizes=list(sizes), backends=list(backends), k=k)

    directory = out_dir or os.environ.get("REPRO_BENCH_DIR", ".")
    path = artifact.write(directory)
    return ScalingResult(
        cells=cells,
        sizes=sizes,
        backends=backends,
        seed=seed,
        k=k,
        artifact_path=path,
        config_overrides=dict(config_overrides),
    )
