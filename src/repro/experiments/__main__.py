"""Command-line experiment runner.

Regenerate any of the paper's tables/figures from the shell:

    python -m repro.experiments table1  --scale 0.4 --seed 1
    python -m repro.experiments table2  --tasks CT1 CT3
    python -m repro.experiments table3
    python -m repro.experiments figure5
    python -m repro.experiments figure6
    python -m repro.experiments figure7
    python -m repro.experiments fusion
    python -m repro.experiments lf
    python -m repro.experiments ablations
    python -m repro.experiments chaos
    python -m repro.experiments crash
    python -m repro.experiments end_to_end
    python -m repro.experiments scaling
    python -m repro.experiments shardscale
    python -m repro.experiments all

Checkpointing (see DESIGN.md "Checkpointing & crash recovery"):

    --run-dir DIR      end_to_end: persist each completed stage into DIR
                       as content-hashed artifacts plus a run manifest
    --resume           continue an interrupted run from --run-dir; stages
                       whose config fingerprints match are replayed from
                       artifacts, bit-identically

    python -m repro.experiments end_to_end --run-dir runs/e2e
    python -m repro.experiments end_to_end --run-dir runs/e2e --resume

Observability (see DESIGN.md "Observability"):

    --trace out.json   activate the tracer and export the full span
                       tree (nested spans, counters, gauges, latency
                       histograms) as JSON
    --profile          print a human-readable span-tree summary after
                       the experiments finish

    python -m repro.experiments end_to_end --trace trace.json --profile

Execution backends (see DESIGN.md "Execution backends"):

    --backend B        serial | thread | process — executor for the
                       parallel pipeline stages (end_to_end)
    --workers N        worker count for thread/process backends

    python -m repro.experiments end_to_end --backend process --workers 4

All backends produce byte-identical artifacts (the differential suite
in tests/test_exec_equivalence.py enforces this), so the backend is a
pure performance knob.

Graph backends (see DESIGN.md "Approximate graph construction"):

    --graph-backend B  exact | lsh | nn-descent — kNN graph construction
                       for the curation stage (end_to_end) and the
                       scaling sweep; approximate backends change which
                       candidate pairs are considered (never edge
                       weights), so — unlike --backend — this knob IS
                       part of the run fingerprint
    --sizes N [N ...]  corpus sizes for the scaling sweep

    python -m repro.experiments scaling --sizes 600 1200 2400
    python -m repro.experiments end_to_end --graph-backend lsh

Out-of-core sharding (see DESIGN.md "Sharded data plane"):

    --shard-size N     end_to_end: featurize out-of-core in N-row shards
                       persisted as content-hashed artifacts (requires
                       --run-dir); bit-identical to an unsharded run
    --shard-sizes N [N ...]
                       shardscale: shard sizes for the memory sweep

    python -m repro.experiments end_to_end --run-dir runs/e2e --shard-size 256
    python -m repro.experiments shardscale --sizes 400 1600 --shard-sizes 64

Multi-tenant orchestration (see DESIGN.md "Multi-tenant run
orchestration"):

    --tenants N [N ...]        tenant counts to sweep (multitenant)
    --rate-limits Q [Q ...]    victim-service rate limits in calls/s
                               (0 = unlimited)
    --availabilities A [A ...] victim availability levels tenants cycle
                               through

    python -m repro.experiments multitenant --scale 0.1 --seed 7
    python -m repro.experiments multitenant --tenants 2 6 \\
        --rate-limits 0 400 --availabilities 1.0 0.5

Online serving (see DESIGN.md "Online serving path"):

    --clients N [N ...]        serve: concurrent client counts to sweep
    --requests N               serve: total requests per load cell
    --availabilities A [A ...] serve: service availability levels
    --run-dir DIR              serve: reuse (or create) a checkpointed
                               end-to-end run as the deployed artifact

    python -m repro.experiments serve --scale 0.15 --seed 1
    python -m repro.experiments serve --clients 1 8 --requests 400

Self-healing storage (see DESIGN.md "Self-healing storage"):

    scrub --run-dir DIR        audit every artifact the run's manifest
                               references (healthy/corrupt/missing, plus
                               orphans); exits with the verdict line
    scrub --run-dir DIR --repair
                               additionally rebuild damaged artifacts by
                               replaying their producing stages; the
                               original content hash is the acceptance
                               oracle (bit-identical or fail loudly)
    storagechaos               sweep fault type x rate with seeded
                               filesystem fault injection and gate on
                               "bit-identical after repair, or typed
                               error — never wrong bytes"
    --auto-repair              end_to_end: rebuild damaged artifacts in
                               place during checkpoint replay
    --fault-types T [T ...]    storagechaos: eio enospc fsync bitflip torn
    --fault-rates R [R ...]    storagechaos: per-write fault probabilities

    python -m repro.experiments scrub --run-dir runs/e2e --repair
    python -m repro.experiments storagechaos --scale 0.08 \\
        --fault-types bitflip torn --fault-rates 0.4
"""

from __future__ import annotations

import argparse
import sys

import repro.obs as obs
from repro.exec import BACKENDS, ExecutorConfig
from repro.experiments.ablations import render_ablations, run_all_ablations
from repro.experiments.chaos import run_chaos, run_crash_resume
from repro.experiments.end_to_end import run_end_to_end, run_figure5, run_table2
from repro.experiments.factor_analysis import run_figure6
from repro.experiments.fusion_ablation import run_fusion_ablation
from repro.experiments.label_prop import run_table3
from repro.experiments.lesion import run_figure7
from repro.experiments.lf_comparison import run_lf_comparison
from repro.experiments.multitenant import (
    DEFAULT_MT_AVAILABILITIES,
    DEFAULT_RATE_LIMITS,
    DEFAULT_TENANT_COUNTS,
    run_multitenant,
)
from repro.experiments.scaling import run_scaling
from repro.experiments.scrub import run_scrub
from repro.experiments.serve import (
    DEFAULT_CLIENT_COUNTS,
    DEFAULT_SERVE_AVAILABILITIES,
    run_serve,
)
from repro.experiments.storagechaos import run_storagechaos
from repro.experiments.table1 import run_table1
from repro.runs import FAULT_TYPES

_EXPERIMENTS = (
    "table1", "table2", "table3", "figure5", "figure6", "figure7",
    "fusion", "lf", "ablations", "chaos", "crash", "end_to_end",
    "scaling", "shardscale", "multitenant", "serve", "storagechaos", "scrub",
)


def _run_one(name: str, args: argparse.Namespace) -> str:
    scale, seed = args.scale, args.seed
    if name == "table1":
        return run_table1(scale=scale, seed=seed).render()
    if name == "table2":
        return run_table2(
            tasks=args.tasks or None, scale=scale, seed=seed,
            n_model_seeds=args.model_seeds,
        ).render()
    if name == "table3":
        return run_table3(
            tasks=args.tasks or None, scale=scale, seed=seed,
            n_model_seeds=args.model_seeds,
        ).render()
    if name == "figure5":
        return run_figure5(scale=scale, seed=seed,
                           n_model_seeds=args.model_seeds).render()
    if name == "figure6":
        return run_figure6(scale=scale, seed=seed,
                           n_model_seeds=args.model_seeds).render()
    if name == "figure7":
        return run_figure7(scale=scale, seed=seed,
                           n_model_seeds=args.model_seeds).render()
    if name == "fusion":
        return run_fusion_ablation(scale=scale, seed=seed).render()
    if name == "lf":
        return run_lf_comparison(scale=scale, seed=seed).render()
    if name == "ablations":
        return render_ablations(run_all_ablations(scale=scale, seed=seed))
    if name == "chaos":
        return run_chaos(scale=scale, seed=seed,
                         n_model_seeds=args.model_seeds,
                         out_dir=args.run_dir).render()
    if name == "crash":
        task = (args.tasks or ["CT1"])[0]
        return run_crash_resume(task=task, scale=scale, seed=seed,
                                keep_dir=args.run_dir).render()
    if name == "end_to_end":
        task = (args.tasks or ["CT1"])[0]
        executor = None
        if args.backend is not None or args.workers is not None:
            executor = ExecutorConfig(
                backend=args.backend or "thread",
                workers=args.workers if args.workers is not None else 1,
            )
        return run_end_to_end(task=task, scale=scale, seed=seed,
                              run_dir=args.run_dir, resume=args.resume,
                              executor=executor,
                              graph_backend=args.graph_backend,
                              auto_repair=args.auto_repair,
                              shard_size=args.shard_size).render()
    if name == "storagechaos":
        task = (args.tasks or ["CT1"])[0]
        return run_storagechaos(
            task=task, scale=scale, seed=seed,
            fault_types=tuple(args.fault_types) if args.fault_types else None,
            fault_rates=tuple(args.fault_rates) if args.fault_rates else None,
            out_dir=args.run_dir,
        ).render()
    if name == "scrub":
        return run_scrub(args.run_dir, repair=args.repair).render()
    if name == "shardscale":
        from repro.experiments.shardscale import run_shardscale

        return run_shardscale(
            sizes=args.sizes, shard_sizes=args.shard_sizes, seed=seed,
            out_dir=args.run_dir,
        ).render()
    if name == "scaling":
        executor = None
        if args.backend is not None or args.workers is not None:
            executor = ExecutorConfig(
                backend=args.backend or "thread",
                workers=args.workers if args.workers is not None else 1,
            )
        backends = (
            (args.graph_backend,) if args.graph_backend is not None else None
        )
        return run_scaling(
            sizes=args.sizes, backends=backends, seed=seed,
            out_dir=args.run_dir, executor=executor,
        ).render()
    if name == "serve":
        return run_serve(
            scale=scale, seed=seed,
            availabilities=(
                tuple(args.availabilities)
                if args.availabilities
                else DEFAULT_SERVE_AVAILABILITIES
            ),
            client_counts=(
                tuple(args.clients) if args.clients else DEFAULT_CLIENT_COUNTS
            ),
            n_requests=args.requests,
            run_dir=args.run_dir,
        ).render()
    if name == "multitenant":
        return run_multitenant(
            scale=scale, seed=seed,
            tenant_counts=(
                tuple(args.tenants) if args.tenants else DEFAULT_TENANT_COUNTS
            ),
            rate_limits=(
                tuple(args.rate_limits)
                if args.rate_limits
                else DEFAULT_RATE_LIMITS
            ),
            availabilities=(
                tuple(args.availabilities)
                if args.availabilities
                else DEFAULT_MT_AVAILABILITIES
            ),
            workers=args.workers if args.workers is not None else 2,
            out_dir=args.run_dir,
        ).render()
    raise ValueError(f"unknown experiment {name!r}")


def _validate_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> None:
    """Reject nonsensical numeric arguments with a one-line error.

    ``parser.error`` prints ``prog: error: <message>`` and exits 2 —
    the same contract argparse applies to unknown experiment names —
    so a typo'd sweep fails in milliseconds instead of after the first
    expensive cell.
    """
    if args.scale <= 0:
        parser.error(f"--scale must be > 0, got {args.scale}")
    if args.model_seeds < 1:
        parser.error(f"--model-seeds must be >= 1, got {args.model_seeds}")
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if args.shard_size is not None and args.shard_size < 1:
        parser.error(f"--shard-size must be >= 1, got {args.shard_size}")
    for flag, values, minimum in (
        ("--sizes", args.sizes, 1),
        ("--shard-sizes", args.shard_sizes, 1),
        ("--tenants", args.tenants, 1),
        ("--rate-limits", args.rate_limits, 0),
        ("--clients", args.clients, 1),
    ):
        for value in values or ():
            if value < minimum:
                parser.error(
                    f"{flag} values must be >= {minimum}, got {value}"
                )
    for value in args.availabilities or ():
        if not 0.0 < value <= 1.0:
            parser.error(
                f"--availabilities values must be in (0, 1], got {value}"
            )
    for value in args.fault_rates or ():
        if not 0.0 <= value <= 1.0:
            parser.error(
                f"--fault-rates values must be in [0, 1], got {value}"
            )
    if args.experiment == "scrub" and not args.run_dir:
        parser.error("scrub requires --run-dir pointing at a checkpointed run")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=(*_EXPERIMENTS, "all"),
        help="which artifact to regenerate",
    )
    parser.add_argument("--scale", type=float, default=0.4,
                        help="corpus-size multiplier (default 0.4)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--model-seeds", type=int, default=2,
                        help="model seeds averaged per measurement")
    parser.add_argument("--tasks", nargs="*", default=None,
                        help="task subset for table2/table3/end_to_end "
                             "(e.g. CT1 CT3)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="activate tracing and write the span tree "
                             "as JSON to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="print a span-tree summary after the run")
    parser.add_argument("--run-dir", metavar="DIR", default=None,
                        help="end_to_end: checkpoint every completed stage "
                             "into DIR (artifacts + manifest); "
                             "crash: keep the harness run dirs in DIR")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted checkpointed run from "
                             "--run-dir, replaying completed stages")
    parser.add_argument("--backend", choices=BACKENDS, default=None,
                        help="execution backend for the parallel pipeline "
                             "stages (end_to_end); all backends produce "
                             "byte-identical artifacts")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the thread/process backends")
    from repro.propagation.builders import GRAPH_BACKENDS

    parser.add_argument("--graph-backend", choices=sorted(GRAPH_BACKENDS),
                        default=None,
                        help="kNN graph construction backend (end_to_end: "
                             "curation graph; scaling: restrict the sweep "
                             "to this backend). Approximate backends change "
                             "results, so checkpoints are not shared across "
                             "graph backends")
    parser.add_argument("--sizes", type=int, nargs="*", default=None,
                        help="scaling: corpus sizes to sweep "
                             "(default 600 1200 2400 4800 9600); "
                             "shardscale: corpus sizes (default 400 1600)")
    parser.add_argument("--shard-size", type=int, default=None,
                        help="end_to_end: rows per shard for the "
                             "out-of-core featurize path (requires "
                             "--run-dir); results are bit-identical to "
                             "an unsharded run")
    parser.add_argument("--shard-sizes", type=int, nargs="*", default=None,
                        help="shardscale: shard sizes to sweep "
                             "(default 64)")
    parser.add_argument("--tenants", type=int, nargs="*", default=None,
                        help="multitenant: tenant counts to sweep "
                             "(default 2 6)")
    parser.add_argument("--rate-limits", type=float, nargs="*", default=None,
                        help="multitenant: victim-service rate limits in "
                             "calls/s, 0 = unlimited (default 0 400)")
    parser.add_argument("--availabilities", type=float, nargs="*",
                        default=None,
                        help="multitenant/serve: service availability levels "
                             "to sweep (default 1.0 0.5 / 1.0 0.9 0.75 0.5)")
    parser.add_argument("--clients", type=int, nargs="*", default=None,
                        help="serve: concurrent client counts to sweep "
                             "(default 1 8)")
    parser.add_argument("--requests", type=int, default=200,
                        help="serve: total requests per load cell "
                             "(default 200)")
    parser.add_argument("--auto-repair", action="store_true",
                        help="end_to_end: rebuild damaged artifacts in "
                             "place during checkpoint replay (recompute, "
                             "verify against the recorded content hash, "
                             "restore) instead of aborting")
    parser.add_argument("--repair", action="store_true",
                        help="scrub: rebuild corrupt/missing artifacts by "
                             "replaying their producing stages from lineage")
    parser.add_argument("--fault-types", choices=FAULT_TYPES, nargs="*",
                        default=None,
                        help="storagechaos: fault types to inject "
                             "(default: all five)")
    parser.add_argument("--fault-rates", type=float, nargs="*", default=None,
                        help="storagechaos: per-write fault probabilities "
                             "to sweep (default 0.25 0.6)")
    args = parser.parse_args(argv)
    _validate_args(parser, args)

    tracer = None
    if args.trace or args.profile:
        tracer = obs.enable(obs.Tracer("experiments"))

    # "all" excludes the subprocess-based crash harness, the
    # multi-tenant contention sweep (many concurrent full runs), the
    # serving load benchmark (its own end-to-end run plus load cells),
    # the storage chaos sweep (many full runs under fault injection),
    # and scrub (needs an existing --run-dir); run those explicitly
    names = (
        [
            n
            for n in _EXPERIMENTS
            if n not in ("crash", "multitenant", "serve", "storagechaos", "scrub")
        ]
        if args.experiment == "all"
        else [args.experiment]
    )
    try:
        for name in names:
            with obs.timed(f"experiment.{name}") as t:
                print(_run_one(name, args))
            print(f"[{name}: {t.duration:.1f}s]\n")
        if tracer is not None:
            if args.profile:
                print(obs.format_trace(tracer))
            if args.trace:
                path = tracer.write_json(args.trace)
                print(f"[trace written to {path}]")
    finally:
        if tracer is not None:
            obs.disable()
    return 0


if __name__ == "__main__":
    sys.exit(main())
