"""Figure 6 — organizational-resources factor analysis (CT 1).

Starting from a text-only model with service set A, service sets are
added alternately to the text modality and the (weakly supervised)
image modality, retraining the early-fusion model at each step.  The
paper's reading: AUPRC grows as resources are added, and adding a new
feature set typically helps more than extending an existing set to the
other modality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext, fusion_auprc
from repro.experiments.reporting import render_bars, render_table

__all__ = ["Figure6Result", "run_figure6", "PAPER_FIGURE6", "FACTOR_STEPS"]

#: (text sets, image sets or None) per step, in the paper's order
FACTOR_STEPS: list[tuple[tuple[str, ...], tuple[str, ...] | None]] = [
    (("A",), None),
    (("A",), ("A",)),
    (("A", "B"), ("A",)),
    (("A", "B"), ("A", "B")),
    (("A", "B", "C"), ("A", "B")),
    (("A", "B", "C"), ("A", "B", "C")),
    (("A", "B", "C", "D"), ("A", "B", "C")),
    (("A", "B", "C", "D"), ("A", "B", "C", "D")),
]

#: the paper's Figure 6 bar values (relative AUPRC)
PAPER_FIGURE6 = [0.22, 1.08, 1.14, 1.24, 1.41, 1.43, 1.52, 1.52]


def _step_label(text_sets: tuple[str, ...], image_sets: tuple[str, ...] | None) -> str:
    text = "T+" + "".join(text_sets)
    image = "no image" if image_sets is None else "I+" + "".join(image_sets)
    return f"{text} / {image}"


@dataclass
class Figure6Result:
    """Relative AUPRC per factor-analysis step."""

    labels: list[str]
    relative_auprc: list[float]
    baseline_auprc: float
    scale: float
    seed: int

    def render(self) -> str:
        rows = [
            [label, round(value, 2), paper]
            for label, value, paper in zip(
                self.labels, self.relative_auprc, PAPER_FIGURE6
            )
        ]
        table = render_table(
            ["Step", "relative AUPRC", "paper"],
            rows,
            title=f"Figure 6 — factor analysis CT1 (scale={self.scale}, seed={self.seed})",
        )
        bars = render_bars(
            self.labels, self.relative_auprc, reference=1.0,
            title="(| marks the embedding baseline, relative AUPRC 1.0)",
        )
        return table + "\n\n" + bars

    def monotone_violations(self, tolerance: float = 0.05) -> int:
        """Number of steps where AUPRC drops by more than ``tolerance``
        (the paper's curve is near-monotone)."""
        violations = 0
        for prev, cur in zip(self.relative_auprc, self.relative_auprc[1:]):
            if cur < prev - tolerance:
                violations += 1
        return violations


def run_figure6(
    scale: float = 0.5, seed: int = 1, n_model_seeds: int = 2
) -> Figure6Result:
    """Run the Figure-6 factor analysis on CT 1.

    Weak supervision always uses the full ABCD LF suite (as in the
    paper); only the discriminative model's feature sets vary by step.
    """
    ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    labels = []
    values = []
    for text_sets, image_sets in FACTOR_STEPS:
        labels.append(_step_label(text_sets, image_sets))
        value = fusion_auprc(
            ctx, text_sets=text_sets, image_sets=image_sets,
            n_model_seeds=n_model_seeds,
        )
        values.append(ctx.relative(value))
    return Figure6Result(
        labels=labels,
        relative_auprc=values,
        baseline_auprc=ctx.baseline_auprc,
        scale=scale,
        seed=seed,
    )
