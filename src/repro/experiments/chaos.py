"""Chaos experiment — end-task AUPRC vs. service availability.

The paper's §6.6 measures robustness to *channel* noise (missing
features from modality mismatch).  Here the same missing-feature
robustness is induced by *infrastructure* faults: every organizational
resource is wrapped in a fault-injecting :class:`ServiceClient`, the
full pipeline (featurize -> curate -> train -> evaluate) runs under a
retry+fallback :class:`ResiliencePolicy`, and we sweep the per-call
availability.  The claim under test: the weak-supervision pipeline
degrades gracefully — AUPRC declines smoothly with availability rather
than falling off a cliff, because retries recover most transient
faults and exhausted calls degrade to the MISSING semantics the models
already tolerate.

    python -m repro.experiments chaos --scale 0.3 --seed 1
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rng import derive_seed
from repro.experiments.common import ExperimentContext
from repro.experiments.reporting import render_bars, render_table
from repro.resilience import (
    FallbackChain,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    RetryConfig,
    build_substitute_map,
)
from repro.resources.featurize import featurize_corpus

__all__ = ["ChaosResult", "run_chaos", "DEFAULT_AVAILABILITIES"]

DEFAULT_AVAILABILITIES: tuple[float, ...] = (1.0, 0.9, 0.75, 0.5)


@dataclass
class ChaosResult:
    """End-task quality and degradation stats per availability level."""

    availabilities: list[float]
    auprcs: list[float]
    degraded_fractions: list[float]
    missing_fractions: list[float]
    retries: list[int]
    fallbacks: list[int]
    scale: float
    seed: int
    health_renders: list[str] = field(default_factory=list)

    def graceful(self, max_step_loss: float = 0.5) -> bool:
        """True when no *adjacent* availability step loses more than
        ``max_step_loss`` of the preceding level's AUPRC.

        Graceful degradation means the quality curve declines smoothly
        with availability; a cliff is a single step that wipes out most
        of the remaining quality.
        """
        order = np.argsort(self.availabilities)[::-1]
        ordered = [self.auprcs[i] for i in order]
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev > 0 and nxt < (1.0 - max_step_loss) * prev:
                return False
        return True

    def render(self) -> str:
        rows = []
        for i, availability in enumerate(self.availabilities):
            rows.append(
                [
                    availability,
                    round(self.auprcs[i], 3),
                    f"{self.degraded_fractions[i]:.1%}",
                    f"{self.missing_fractions[i]:.1%}",
                    self.retries[i],
                    self.fallbacks[i],
                ]
            )
        table = render_table(
            ["Availability", "AUPRC", "degraded", "missing", "retries", "fallbacks"],
            rows,
            title=(
                f"Chaos sweep — CT1 end-task AUPRC vs service availability "
                f"(scale={self.scale}, seed={self.seed})"
            ),
        )
        bars = render_bars(
            [f"avail {a:.2f}" for a in self.availabilities],
            self.auprcs,
            title="(AUPRC per availability level — graceful means no cliff)",
        )
        verdict = (
            "degradation is graceful (no adjacent step loses >50% AUPRC)"
            if self.graceful()
            else "degradation is NOT graceful (cliff detected)"
        )
        return table + "\n\n" + bars + "\n\n" + verdict


def _chaos_policy(
    wrapped, seed: int, max_attempts: int = 3
) -> ResiliencePolicy:
    """Retry+fallback policy over the wrapped (faulty) service suite.

    Substitutes come from the wrapped clients themselves, so a fallback
    dial can fail too — fault cascades fall through toward MISSING.
    """
    return ResiliencePolicy(
        retry=RetryConfig(max_attempts=max_attempts),
        fallback=FallbackChain(substitutes=build_substitute_map(wrapped)),
        seed=derive_seed(seed, "chaos-policy"),
    )


def run_chaos(
    scale: float = 0.3,
    seed: int = 1,
    availabilities: tuple[float, ...] = DEFAULT_AVAILABILITIES,
    n_model_seeds: int = 2,
    ctx: ExperimentContext | None = None,
) -> ChaosResult:
    """Sweep service availability; run the full pipeline at each level.

    ``availability`` is the per-call success probability: each service
    call fails transiently with probability ``1 - availability`` (fresh
    draw per retry, deterministic per seed).  Featurization uses the
    same seed the context's pipeline uses, so the 1.0 level reproduces
    the fault-free tables bit-for-bit.
    """
    if ctx is None:
        ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    pipeline = ctx.pipeline
    feat_seed = derive_seed(pipeline.config.seed, "featurize")
    resources = list(ctx.catalog)

    auprcs: list[float] = []
    degraded: list[float] = []
    missing: list[float] = []
    retries: list[int] = []
    fallbacks: list[int] = []
    health_renders: list[str] = []

    for availability in availabilities:
        fault_rate = 1.0 - availability
        injector = FaultInjector(
            FaultSpec(transient_rate=fault_rate),
            seed=derive_seed(seed, f"chaos-faults-{availability}"),
        )
        wrapped = injector.wrap_all(resources)
        policy = _chaos_policy(wrapped, seed)

        tables = {}
        for name, corpus, labeled in (
            ("text", ctx.splits.text_labeled, True),
            ("image", ctx.splits.image_unlabeled, False),
            ("test", ctx.splits.image_test, True),
        ):
            tables[name] = featurize_corpus(
                corpus,
                wrapped,
                seed=feat_seed,
                include_labels=labeled,
                n_threads=pipeline.config.n_threads,
                policy=policy,
            )

        curation = pipeline.curate(tables["text"], tables["image"])
        scores = []
        for i in range(n_model_seeds):
            model = pipeline.train(
                tables["text"], curation, seed_tag=f"chaos-model-{i}"
            )
            metrics, _ = pipeline.evaluate(model, tables["test"])
            scores.append(metrics["auprc"])
        auprcs.append(float(np.mean(scores)))

        reports = [tables[n].degradation for n in ("text", "image", "test")]
        n_cells = sum(r.n_cells for r in reports)
        degraded.append(sum(r.n_degraded for r in reports) / max(n_cells, 1))
        missing.append(sum(r.n_missing for r in reports) / max(n_cells, 1))
        retries.append(sum(r.total_retries for r in reports))
        fallbacks.append(sum(r.n_fallbacks for r in reports))
        health_renders.append(policy.health_report().render())

    return ChaosResult(
        availabilities=list(availabilities),
        auprcs=auprcs,
        degraded_fractions=degraded,
        missing_fractions=missing,
        retries=retries,
        fallbacks=fallbacks,
        scale=ctx.scale,
        seed=seed,
        health_renders=health_renders,
    )
