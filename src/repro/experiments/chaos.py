"""Chaos experiments — fault injection against the running pipeline.

Two fault models against the same pipeline:

* :func:`run_chaos` — *service* faults: every organizational resource
  is wrapped in a fault-injecting :class:`ServiceClient`, the full
  pipeline runs under a retry+fallback :class:`ResiliencePolicy`, and
  we sweep per-call availability.  The claim under test: AUPRC declines
  smoothly with availability rather than falling off a cliff, because
  retries recover most transient faults and exhausted calls degrade to
  the MISSING semantics the models already tolerate.

* :func:`run_crash_resume` — *process* faults: a checkpointed
  end-to-end run is killed (``os._exit``, no cleanup) at every stage
  boundary in turn, resumed with ``--resume``, and the resumed result
  is compared bit-for-bit against an uninterrupted baseline.  The claim
  under test: the :mod:`repro.runs` checkpoint layer makes a resumed
  run indistinguishable from one that never crashed.

    python -m repro.experiments chaos --scale 0.3 --seed 1
    python -m repro.experiments crash --scale 0.15 --seed 1
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro
from repro.core.exceptions import CheckpointError
from repro.core.rng import derive_seed
from repro.runs.crash import CRASH_AT_ENV, CRASH_EXIT_CODE
from repro.experiments.common import ExperimentContext
from repro.experiments.reporting import render_bars, render_table
from repro.resilience import (
    FallbackChain,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    RetryConfig,
    build_substitute_map,
)
from repro.resources.featurize import featurize_corpus

__all__ = [
    "ChaosResult",
    "CrashResumeResult",
    "run_chaos",
    "run_crash_resume",
    "DEFAULT_AVAILABILITIES",
]

DEFAULT_AVAILABILITIES: tuple[float, ...] = (1.0, 0.9, 0.75, 0.5)


@dataclass
class ChaosResult:
    """End-task quality and degradation stats per availability level."""

    availabilities: list[float]
    auprcs: list[float]
    degraded_fractions: list[float]
    missing_fractions: list[float]
    retries: list[int]
    fallbacks: list[int]
    scale: float
    seed: int
    health_renders: list[str] = field(default_factory=list)
    #: resilience control-plane counters per availability level
    breaker_trips: list[int] = field(default_factory=list)
    short_circuits: list[int] = field(default_factory=list)
    deadline_exceeded: list[int] = field(default_factory=list)

    def graceful(self, max_step_loss: float = 0.5) -> bool:
        """True when no *adjacent* availability step loses more than
        ``max_step_loss`` of the preceding level's AUPRC.

        Graceful degradation means the quality curve declines smoothly
        with availability; a cliff is a single step that wipes out most
        of the remaining quality.
        """
        order = np.argsort(self.availabilities)[::-1]
        ordered = [self.auprcs[i] for i in order]
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev > 0 and nxt < (1.0 - max_step_loss) * prev:
                return False
        return True

    def render(self) -> str:
        rows = []
        for i, availability in enumerate(self.availabilities):
            rows.append(
                [
                    availability,
                    round(self.auprcs[i], 3),
                    f"{self.degraded_fractions[i]:.1%}",
                    f"{self.missing_fractions[i]:.1%}",
                    self.retries[i],
                    self.fallbacks[i],
                    self.breaker_trips[i] if i < len(self.breaker_trips) else 0,
                ]
            )
        table = render_table(
            ["Availability", "AUPRC", "degraded", "missing", "retries",
             "fallbacks", "trips"],
            rows,
            title=(
                f"Chaos sweep — CT1 end-task AUPRC vs service availability "
                f"(scale={self.scale}, seed={self.seed})"
            ),
        )
        bars = render_bars(
            [f"avail {a:.2f}" for a in self.availabilities],
            self.auprcs,
            title="(AUPRC per availability level — graceful means no cliff)",
        )
        verdict = (
            "degradation is graceful (no adjacent step loses >50% AUPRC)"
            if self.graceful()
            else "degradation is NOT graceful (cliff detected)"
        )
        return table + "\n\n" + bars + "\n\n" + verdict


def _chaos_policy(
    wrapped, seed: int, max_attempts: int = 3
) -> ResiliencePolicy:
    """Retry+fallback policy over the wrapped (faulty) service suite.

    Substitutes come from the wrapped clients themselves, so a fallback
    dial can fail too — fault cascades fall through toward MISSING.
    """
    return ResiliencePolicy(
        retry=RetryConfig(max_attempts=max_attempts),
        fallback=FallbackChain(substitutes=build_substitute_map(wrapped)),
        seed=derive_seed(seed, "chaos-policy"),
    )


def run_chaos(
    scale: float = 0.3,
    seed: int = 1,
    availabilities: tuple[float, ...] = DEFAULT_AVAILABILITIES,
    n_model_seeds: int = 2,
    ctx: ExperimentContext | None = None,
    out_dir: str | None = None,
) -> ChaosResult:
    """Sweep service availability; run the full pipeline at each level.

    ``availability`` is the per-call success probability: each service
    call fails transiently with probability ``1 - availability`` (fresh
    draw per retry, deterministic per seed).  Featurization uses the
    same seed the context's pipeline uses, so the 1.0 level reproduces
    the fault-free tables bit-for-bit.

    Writes ``BENCH_chaos.json`` — per-level quality plus the resilience
    control-plane counters (retries, fallbacks, breaker trips, short
    circuits, deadline exhaustions) — when ``out_dir`` is given or the
    ``REPRO_BENCH_DIR`` env var is set.
    """
    if ctx is None:
        ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    pipeline = ctx.pipeline
    feat_seed = derive_seed(pipeline.config.seed, "featurize")
    resources = list(ctx.catalog)

    auprcs: list[float] = []
    degraded: list[float] = []
    missing: list[float] = []
    retries: list[int] = []
    fallbacks: list[int] = []
    health_renders: list[str] = []
    breaker_trips: list[int] = []
    short_circuits: list[int] = []
    deadline_exceeded: list[int] = []

    for availability in availabilities:
        fault_rate = 1.0 - availability
        injector = FaultInjector(
            FaultSpec(transient_rate=fault_rate),
            seed=derive_seed(seed, f"chaos-faults-{availability}"),
        )
        wrapped = injector.wrap_all(resources)
        policy = _chaos_policy(wrapped, seed)

        tables = {}
        for name, corpus, labeled in (
            ("text", ctx.splits.text_labeled, True),
            ("image", ctx.splits.image_unlabeled, False),
            ("test", ctx.splits.image_test, True),
        ):
            tables[name] = featurize_corpus(
                corpus,
                wrapped,
                seed=feat_seed,
                include_labels=labeled,
                n_threads=pipeline.config.n_threads,
                policy=policy,
            )

        curation = pipeline.curate(tables["text"], tables["image"])
        scores = []
        for i in range(n_model_seeds):
            model = pipeline.train(
                tables["text"], curation, seed_tag=f"chaos-model-{i}"
            )
            metrics, _ = pipeline.evaluate(model, tables["test"])
            scores.append(metrics["auprc"])
        auprcs.append(float(np.mean(scores)))

        reports = [tables[n].degradation for n in ("text", "image", "test")]
        n_cells = sum(r.n_cells for r in reports)
        degraded.append(sum(r.n_degraded for r in reports) / max(n_cells, 1))
        missing.append(sum(r.n_missing for r in reports) / max(n_cells, 1))
        retries.append(sum(r.total_retries for r in reports))
        fallbacks.append(sum(r.n_fallbacks for r in reports))
        health = policy.health_report()
        health_renders.append(health.render())
        breaker_trips.append(health.total_trips)
        short_circuits.append(health.total_short_circuits)
        deadline_exceeded.append(health.total_deadline_exceeded)

    result = ChaosResult(
        availabilities=list(availabilities),
        auprcs=auprcs,
        degraded_fractions=degraded,
        missing_fractions=missing,
        retries=retries,
        fallbacks=fallbacks,
        scale=ctx.scale,
        seed=seed,
        health_renders=health_renders,
        breaker_trips=breaker_trips,
        short_circuits=short_circuits,
        deadline_exceeded=deadline_exceeded,
    )
    directory = out_dir or os.environ.get("REPRO_BENCH_DIR")
    if directory:
        from repro.obs.bench import BenchArtifact

        artifact = BenchArtifact("chaos", scale=ctx.scale, seed=seed)
        artifact.record(
            availabilities=result.availabilities,
            auprcs=[round(a, 4) for a in result.auprcs],
            degraded_fractions=[round(f, 4) for f in result.degraded_fractions],
            missing_fractions=[round(f, 4) for f in result.missing_fractions],
            retries=result.retries,
            fallbacks=result.fallbacks,
            breaker_trips=result.breaker_trips,
            short_circuits=result.short_circuits,
            deadline_exceeded=result.deadline_exceeded,
            graceful=result.graceful(),
        )
        artifact.write(directory)
    return result


# --------------------------------------------------------------------------
# crash/resume harness
# --------------------------------------------------------------------------

#: the durable boundaries a pipeline run crosses, in order
STAGE_BOUNDARIES: tuple[str, ...] = (
    "stage:featurize",
    "stage:curate",
    "stage:train",
    "stage:evaluate",
)


@dataclass
class KillPoint:
    """Outcome of one kill-and-resume cycle."""

    boundary: str
    crash_exit: int
    resumed_stages: list[str]
    metrics_match: bool


@dataclass
class CrashResumeResult:
    """Proof (or refutation) of the resume guarantee, per kill point."""

    task: str
    scale: float
    seed: int
    baseline_metrics: dict[str, float]
    kills: list[KillPoint]
    corruption_detected: bool
    quarantined_files: int
    run_dir: str

    def ok(self) -> bool:
        return (
            all(
                k.crash_exit == CRASH_EXIT_CODE and k.metrics_match
                for k in self.kills
            )
            and self.corruption_detected
        )

    def render(self) -> str:
        rows = []
        for k in self.kills:
            rows.append(
                [
                    k.boundary,
                    k.crash_exit,
                    ", ".join(k.resumed_stages) or "-",
                    "bit-identical" if k.metrics_match else "MISMATCH",
                ]
            )
        table = render_table(
            ["kill at boundary", "exit", "stages replayed on resume", "metrics"],
            rows,
            title=(
                f"Crash/resume — {self.task} kill-and-resume at every stage "
                f"boundary (scale={self.scale}, seed={self.seed})"
            ),
        )
        corruption = (
            f"corrupted artifact: detected and quarantined "
            f"({self.quarantined_files} file(s) in quarantine/)"
            if self.corruption_detected
            else "corrupted artifact: NOT detected — integrity check failed"
        )
        verdict = (
            "resume is crash-safe: every kill point resumed to bit-identical metrics"
            if self.ok()
            else "resume is NOT crash-safe (see rows above)"
        )
        return table + "\n\n" + corruption + "\n" + verdict


def _end_to_end_argv(
    task: str, scale: float, seed: int, run_dir: Path, resume: bool
) -> list[str]:
    argv = [
        sys.executable, "-m", "repro.experiments", "end_to_end",
        "--tasks", task, "--scale", str(scale), "--seed", str(seed),
        "--run-dir", str(run_dir),
    ]
    if resume:
        argv.append("--resume")
    return argv


def _subprocess_env(crash_at: str | None = None) -> dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    env.pop(CRASH_AT_ENV, None)
    env.pop("REPRO_CRASH_MODE", None)
    if crash_at is not None:
        env[CRASH_AT_ENV] = crash_at
    return env


def run_crash_resume(
    task: str = "CT1",
    scale: float = 0.15,
    seed: int = 1,
    boundaries: tuple[str, ...] = STAGE_BOUNDARIES,
    keep_dir: str | None = None,
    timeout: float = 600.0,
) -> CrashResumeResult:
    """Kill a checkpointed run at each boundary; prove resume is exact.

    For every boundary: a fresh subprocess runs the checkpointed
    end-to-end experiment with ``REPRO_CRASH_AT`` targeting that
    boundary, which ``os._exit``\\ s the process the instant the
    boundary's durable state hits disk (exit status
    ``CRASH_EXIT_CODE``).  A second subprocess resumes the same run
    directory and must produce metrics bit-identical to an
    uninterrupted baseline.  Finally one artifact of the baseline run
    is corrupted in place and a resume attempted — the store must
    detect the hash mismatch, quarantine the file, and fail loudly
    rather than silently recompute.

    ``keep_dir`` preserves the run directories (the CI smoke job
    uploads the baseline manifest from there); by default a temp dir is
    used and cleaned up by the OS.
    """
    root = Path(keep_dir) if keep_dir else Path(tempfile.mkdtemp(prefix="crash-resume-"))
    root.mkdir(parents=True, exist_ok=True)

    baseline_dir = root / "baseline"
    proc = subprocess.run(
        _end_to_end_argv(task, scale, seed, baseline_dir, resume=False),
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    if proc.returncode != 0:
        raise CheckpointError(
            f"baseline run failed (exit {proc.returncode}):\n{proc.stderr[-2000:]}"
        )
    baseline = json.loads((baseline_dir / "result.json").read_text(encoding="utf-8"))

    kills: list[KillPoint] = []
    for boundary in boundaries:
        run_dir = root / boundary.replace(":", "-")
        crashed = subprocess.run(
            _end_to_end_argv(task, scale, seed, run_dir, resume=False),
            env=_subprocess_env(crash_at=boundary),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        resumed = subprocess.run(
            _end_to_end_argv(task, scale, seed, run_dir, resume=True),
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        if resumed.returncode != 0:
            raise CheckpointError(
                f"resume after kill at {boundary!r} failed "
                f"(exit {resumed.returncode}):\n{resumed.stderr[-2000:]}"
            )
        result = json.loads((run_dir / "result.json").read_text(encoding="utf-8"))
        kills.append(
            KillPoint(
                boundary=boundary,
                crash_exit=crashed.returncode,
                resumed_stages=list(result["resumed_stages"]),
                metrics_match=result["metrics"] == baseline["metrics"],
            )
        )

    # corruption probe: flip bytes in one baseline artifact, then resume
    artifacts = sorted((baseline_dir / "artifacts").iterdir())
    victim = artifacts[0]
    victim.write_bytes(b"corrupted" + victim.read_bytes()[9:])
    corrupted = subprocess.run(
        _end_to_end_argv(task, scale, seed, baseline_dir, resume=True),
        env=_subprocess_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    quarantine = baseline_dir / "quarantine"
    quarantined = len(list(quarantine.iterdir())) if quarantine.exists() else 0
    corruption_detected = (
        corrupted.returncode != 0
        and "IntegrityError" in corrupted.stderr
        and quarantined > 0
    )

    return CrashResumeResult(
        task=task,
        scale=scale,
        seed=seed,
        baseline_metrics=baseline["metrics"],
        kills=kills,
        corruption_detected=corruption_detected,
        quarantined_files=quarantined,
        run_dir=str(root),
    )
