"""Out-of-core shard scaling: peak memory vs corpus size at fixed shard size.

The point of the sharded data plane (:mod:`repro.shards`, DESIGN.md
§16) is an O(shard) memory profile: streaming a corpus through
featurize → LF application → MapReduce should hold one shard of points
and feature rows resident at a time, no matter how large the corpus is.
This experiment measures that claim and **gates** on it:

* sweep corpus size × shard size; every cell streams generated points
  through :func:`~repro.shards.build_sharded_corpus`,
  :func:`~repro.shards.featurize_corpus_sharded`,
  :func:`~repro.shards.apply_lfs_sharded`, and
  :func:`~repro.shards.run_mapreduce_sharded` — the full corpus is
  never materialized;
* record the ``tracemalloc`` peak per cell (numpy buffers are tracked)
  plus per-stage wall timings, and ``ru_maxrss`` for context
  (process-monotone across cells, so recorded but never gated);
* verdict: at fixed shard size, growing the corpus by k× must grow the
  traced peak by well under k× (``peak_ratio <= 0.6 * size_ratio``).
  A linear data plane fails this immediately: the CI smoke greps the
  ``[OK]`` verdict line.

Everything lands in ``BENCH_shardscale.json``.
"""

from __future__ import annotations

import gc
import shutil
import tempfile
import time
import tracemalloc
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.rng import derive_seed, spawn
from repro.datagen.entities import DataPoint, Modality
from repro.experiments.reporting import render_table
from repro.features.schema import FeatureKind
from repro.labeling.lf import LabelingFunction
from repro.obs.bench import BenchArtifact

__all__ = [
    "DEFAULT_SIZES",
    "DEFAULT_SHARD_SIZES",
    "ShardScaleCell",
    "ShardScaleResult",
    "run_shardscale",
]

DEFAULT_SIZES = (400, 1600)
DEFAULT_SHARD_SIZES = (64,)

#: peak-RSS growth allowed per unit of corpus-size growth; a linear
#: plane has ratio ~1.0, a constant-memory one ~1/size_ratio
_SUBLINEAR_SLOPE = 0.6

_STAGES = ("corpus", "featurize", "apply_lfs", "mapreduce")


@dataclass
class ShardScaleCell:
    """One (corpus size, shard size) measurement."""

    n_rows: int
    shard_size: int
    n_shards: int
    tracemalloc_peak_bytes: int
    ru_maxrss_kb: int
    stage_seconds: dict[str, float]
    distinct_keys: int


@dataclass
class ShardScaleResult:
    """The sweep plus the sublinearity verdicts it gates on."""

    cells: list[ShardScaleCell]
    #: shard_size -> (size_ratio, peak_ratio, passed)
    verdicts: dict[int, tuple[float, float, bool]]
    seed: int

    @property
    def passed(self) -> bool:
        return all(ok for _, _, ok in self.verdicts.values())

    def render(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.n_rows,
                    c.shard_size,
                    c.n_shards,
                    f"{c.tracemalloc_peak_bytes / 1e6:.1f}",
                    c.ru_maxrss_kb,
                    *(f"{c.stage_seconds[s]:.2f}" for s in _STAGES),
                ]
            )
        table = render_table(
            ["rows", "shard", "shards", "peak MB", "maxrss KB", *_STAGES],
            rows,
            title=f"Shard scaling — peak memory vs corpus size (seed={self.seed})",
        )
        lines = [table]
        for shard_size, (size_ratio, peak_ratio, ok) in sorted(
            self.verdicts.items()
        ):
            verdict = "OK" if ok else "FAIL"
            lines.append(
                f"peak RSS sublinear at shard_size={shard_size}: "
                f"{size_ratio:.1f}x rows -> {peak_ratio:.2f}x peak "
                f"(limit {_SUBLINEAR_SLOPE * size_ratio:.2f}x) [{verdict}]"
            )
        if not self.verdicts:
            lines.append(
                "peak RSS sublinear: [SKIPPED] — need two corpus sizes "
                "per shard size to form a ratio"
            )
        return "\n".join(lines)


def _stream_points(
    world, task, n: int, seed: int
) -> Iterator[DataPoint]:
    """Generate ``n`` image points one at a time.

    Each point draws from its own ``spawn(seed, tag(point_id))`` stream,
    so generation order — and therefore shard layout — cannot change a
    single byte of any point.
    """
    for pid in range(n):
        rng = spawn(seed, f"shardscale/point/{pid}")
        yield world.generate_point(task, Modality.IMAGE, point_id=pid, rng=rng)


def _threshold_lfs(schema) -> list[LabelingFunction]:
    """Two numeric-threshold LFs over the catalog schema (pure row
    functions, so sharded and unsharded application agree by value)."""
    numeric = [s.name for s in schema if s.kind is FeatureKind.NUMERIC]
    if len(numeric) < 2:
        raise ValueError(
            f"shardscale needs >= 2 numeric features, schema has {numeric}"
        )
    lo, hi = numeric[0], numeric[1]

    def vote_lo(row, name=lo):
        value = row.get(name)
        return 1 if value is not None and float(value) > 0.1 else 0

    def vote_hi(row, name=hi):
        value = row.get(name)
        return -1 if value is not None and float(value) > 0.2 else 0

    return [
        LabelingFunction(f"lf_{lo}_gt", vote_lo, depends_on=(lo,)),
        LabelingFunction(f"lf_{hi}_gt", vote_hi, depends_on=(hi,)),
    ]


def _bucket_mapper(row: dict) -> list[tuple[int, int]]:
    """Decile-bucket every numeric value in the row (commutative count
    job — reducer output is invariant under combiner pre-aggregation,
    the contract sharded MapReduce requires)."""
    out = []
    for value in row.values():
        if isinstance(value, float):
            out.append((min(9, max(0, int(value * 10))), 1))
    return out


def _sum_combiner(key: int, values: list[int]) -> list[int]:
    return [sum(values)]


def _sum_reducer(key: int, values: list[int]) -> int:
    return sum(values)


def run_shardscale(
    sizes: "tuple[int, ...] | list[int] | None" = None,
    shard_sizes: "tuple[int, ...] | list[int] | None" = None,
    seed: int = 1,
    out_dir: str | None = None,
) -> ShardScaleResult:
    """Sweep corpus size × shard size through the sharded data plane."""
    import os
    import resource

    from repro.datagen.tasks import classification_task, generate_task_corpora
    from repro.resources.service_sets import build_resource_suite
    from repro.runs.store import RunStore
    from repro.shards import (
        apply_lfs_sharded,
        build_sharded_corpus,
        featurize_corpus_sharded,
        run_mapreduce_sharded,
    )

    sizes = tuple(sizes) if sizes else DEFAULT_SIZES
    shard_sizes = tuple(shard_sizes) if shard_sizes else DEFAULT_SHARD_SIZES

    # world + catalog are built once, outside the measured cells — the
    # plane under test is corpus streaming, not world construction
    config = classification_task("CT1")
    world, task, _splits = generate_task_corpora(
        config, scale=0.05, seed=seed, n_calibration=4000
    )
    catalog = build_resource_suite(world, task, n_history=2500, seed=seed)
    resources = list(catalog)
    from repro.features.schema import FeatureSchema

    schema = FeatureSchema(r.spec for r in resources)
    lfs = _threshold_lfs(schema)
    feat_seed = derive_seed(seed, "featurize")

    cells: list[ShardScaleCell] = []
    for shard_size in shard_sizes:
        for n in sizes:
            workdir = tempfile.mkdtemp(prefix="repro-shardscale-")
            try:
                store = RunStore(workdir)
                gc.collect()
                tracemalloc.start()
                timings: dict[str, float] = {}

                t0 = time.perf_counter()
                corpus = build_sharded_corpus(
                    store,
                    _stream_points(world, task, n, seed),
                    n,
                    shard_size,
                    name=f"shardscale-{n}",
                )
                timings["corpus"] = time.perf_counter() - t0

                t0 = time.perf_counter()
                table = featurize_corpus_sharded(
                    corpus, resources, store, shard_size, seed=feat_seed
                )
                timings["featurize"] = time.perf_counter() - t0

                t0 = time.perf_counter()
                apply_lfs_sharded(lfs, table, store=store)
                timings["apply_lfs"] = time.perf_counter() - t0

                t0 = time.perf_counter()
                counters: dict[str, int] = {}
                run_mapreduce_sharded(
                    (list(shard.iter_rows()) for shard in table.iter_shards()),
                    _bucket_mapper,
                    _sum_reducer,
                    combiner=_sum_combiner,
                    counters=counters,
                )
                timings["mapreduce"] = time.perf_counter() - t0

                peak = tracemalloc.get_traced_memory()[1]
                tracemalloc.stop()
                cells.append(
                    ShardScaleCell(
                        n_rows=n,
                        shard_size=shard_size,
                        n_shards=table.n_shards,
                        tracemalloc_peak_bytes=int(peak),
                        ru_maxrss_kb=int(
                            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                        ),
                        stage_seconds=timings,
                        distinct_keys=int(counters.get("distinct_keys", 0)),
                    )
                )
            finally:
                if tracemalloc.is_tracing():
                    tracemalloc.stop()
                shutil.rmtree(workdir, ignore_errors=True)

    verdicts: dict[int, tuple[float, float, bool]] = {}
    for shard_size in shard_sizes:
        group = sorted(
            (c for c in cells if c.shard_size == shard_size),
            key=lambda c: c.n_rows,
        )
        if len(group) < 2 or group[-1].n_rows <= group[0].n_rows:
            continue
        size_ratio = group[-1].n_rows / group[0].n_rows
        peak_ratio = (
            group[-1].tracemalloc_peak_bytes
            / max(1, group[0].tracemalloc_peak_bytes)
        )
        verdicts[shard_size] = (
            size_ratio,
            peak_ratio,
            peak_ratio <= _SUBLINEAR_SLOPE * size_ratio,
        )

    result = ShardScaleResult(cells=cells, verdicts=verdicts, seed=seed)

    bench_dir = os.environ.get("REPRO_BENCH_DIR") or out_dir
    if bench_dir:
        artifact = BenchArtifact("shardscale", scale=0.0, seed=seed)
        for c in cells:
            tag = f"n{c.n_rows}_s{c.shard_size}"
            for stage, seconds in c.stage_seconds.items():
                artifact.time(f"{tag}.{stage}", seconds)
        artifact.record(
            cells=[
                {
                    "n_rows": c.n_rows,
                    "shard_size": c.shard_size,
                    "n_shards": c.n_shards,
                    "tracemalloc_peak_bytes": c.tracemalloc_peak_bytes,
                    "ru_maxrss_kb": c.ru_maxrss_kb,
                    "stage_seconds": {
                        k: round(v, 4) for k, v in c.stage_seconds.items()
                    },
                    "distinct_keys": c.distinct_keys,
                }
                for c in cells
            ],
            verdicts={
                str(k): {
                    "size_ratio": round(sr, 3),
                    "peak_ratio": round(pr, 3),
                    "sublinear": ok,
                }
                for k, (sr, pr, ok) in verdicts.items()
            },
            sublinear=result.passed,
        )
        artifact.write(bench_dir)
    return result
