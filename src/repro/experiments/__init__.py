"""Experiment harnesses reproducing every table and figure of §6.

Each module owns one paper artifact:

* :mod:`repro.experiments.table1` — Table 1 (dataset inventory)
* :mod:`repro.experiments.end_to_end` — Table 2 + Figure 5 (end-to-end
  comparison and cross-over curves)
* :mod:`repro.experiments.factor_analysis` — Figure 6
* :mod:`repro.experiments.lesion` — Figure 7
* :mod:`repro.experiments.fusion_ablation` — §6.6 fusion / feature-
  materialization comparison
* :mod:`repro.experiments.lf_comparison` — §6.7.1 automatic vs manual
  LF generation
* :mod:`repro.experiments.label_prop` — Table 3 (label-propagation lift)

All experiments accept ``scale`` (corpus-size multiplier) and ``seed``,
return structured result objects, and render text tables mirroring the
paper's layout.
"""

from repro.experiments.common import ExperimentContext
from repro.experiments.reporting import render_table
from repro.experiments.table1 import run_table1
from repro.experiments.end_to_end import run_figure5, run_table2, run_task_end_to_end
from repro.experiments.factor_analysis import run_figure6
from repro.experiments.lesion import run_figure7
from repro.experiments.fusion_ablation import run_fusion_ablation
from repro.experiments.label_prop import run_table3, run_table3_task
from repro.experiments.lf_comparison import run_lf_comparison
from repro.experiments.ablations import run_all_ablations

__all__ = [
    "ExperimentContext",
    "render_table",
    "run_all_ablations",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_fusion_ablation",
    "run_lf_comparison",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table3_task",
    "run_task_end_to_end",
]
