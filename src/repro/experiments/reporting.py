"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_value", "render_series"]


def format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    formatted = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xs: Sequence[object], ys: Sequence[float], x_name: str, y_name: str
) -> str:
    """Render an (x, y) series as a two-column table (figure data)."""
    return render_table([x_name, y_name], list(zip(xs, ys)))


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: str | None = None,
    width: int = 40,
    reference: float | None = None,
) -> str:
    """Render a horizontal ASCII bar chart (for figure benchmarks).

    ``reference`` (e.g. the baseline at relative AUPRC 1.0) is marked
    with a ``|`` on each bar when it falls inside the plotted range.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines)
    peak = max(max(values), reference or 0.0, 1e-9)
    label_width = max(len(str(label)) for label in labels)
    ref_pos = (
        int(round(reference / peak * width)) if reference is not None else None
    )
    for label, value in zip(labels, values):
        length = max(int(round(value / peak * width)), 0)
        bar = list("#" * length + " " * (width - length))
        if ref_pos is not None and 0 <= ref_pos < width:
            bar[ref_pos] = "|" if bar[ref_pos] == " " else "+"
        lines.append(
            f"{str(label).ljust(label_width)}  {''.join(bar)} {format_value(value)}"
        )
    return "\n".join(lines)
