"""§6.7.1 — automatic vs manual labeling-function generation (CT 1).

The paper's ground-truth team hand-built LFs for CT 1 (7 hours spread
over two weeks); the automatic pipeline needed 14 minutes of itemset
mining (plus 3.75 h of label propagation in parallel) and beat the
experts by 2.7 F1 points with a 3 % coverage gain.

Here the expert is simulated (see :mod:`repro.mining.expert`): it knows
a configurable fraction of the task concept and writes multi-feature
LFs, billing time from a cost model calibrated to the paper's report.
Mining time is *measured* wall-clock; expert time is the cost model's
output.  Both LF suites are restricted to English-language posts for a
representative comparison, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.experiments.common import ExperimentContext, model_auprc, train_table_model
from repro.experiments.reporting import render_table
from repro.labeling.analysis import weak_label_quality
from repro.labeling.label_model import GenerativeLabelModel, conditional_table
from repro.labeling.matrix import apply_lfs
from repro.mining.expert import SimulatedExpert
from repro.mining.lf_generator import MinedLFGenerator

__all__ = ["LFSuiteQuality", "LFComparisonResult", "run_lf_comparison"]


@dataclass
class LFSuiteQuality:
    """Quality and cost of one LF suite."""

    origin: str
    n_lfs: int
    hours: float
    precision: float
    recall: float
    f1: float
    coverage: float
    end_auprc: float


@dataclass
class LFComparisonResult:
    mined: LFSuiteQuality
    expert: LFSuiteQuality
    scale: float
    seed: int
    snuba: LFSuiteQuality | None = None

    @property
    def speedup(self) -> float:
        return self.expert.hours / max(self.mined.hours, 1e-6)

    @property
    def f1_delta_points(self) -> float:
        return 100.0 * (self.mined.f1 - self.expert.f1)

    def render(self) -> str:
        rows = []
        suites = [self.mined, self.expert]
        if self.snuba is not None:
            suites.append(self.snuba)
        for suite in suites:
            rows.append(
                [
                    suite.origin,
                    suite.n_lfs,
                    round(suite.hours, 2),
                    round(suite.precision, 3),
                    round(suite.recall, 3),
                    round(suite.f1, 3),
                    round(suite.coverage, 3),
                    round(suite.end_auprc, 3),
                ]
            )
        table = render_table(
            ["LFs", "n", "hours", "precision", "recall", "F1", "coverage", "end AUPRC"],
            rows,
            title=(
                f"§6.7.1 automatic vs manual LF generation, CT1 "
                f"(scale={self.scale}, seed={self.seed})"
            ),
        )
        notes = (
            f"\nspeedup: {self.speedup:.2f}x (paper: 1.87x)"
            f"\nF1 delta: {self.f1_delta_points:+.1f} points (paper: +2.7)"
        )
        return table + notes


def _english_rows(table) -> np.ndarray:
    """Row indices whose language feature contains "en"."""
    column = table.column("language")
    return np.array(
        [i for i, v in enumerate(column) if v is not None and "en" in v],
        dtype=np.int64,
    )


def _suite_quality(
    origin: str,
    lfs,
    hours: float,
    dev_table,
    eval_table,
    image_table,
    proba_threshold_prior: float,
    ctx: ExperimentContext,
) -> LFSuiteQuality:
    """Fit the generative model over image votes (anchored on dev) and
    score the suite on a held-out labeled text slice, then train the end
    image model on the resulting probabilistic labels."""
    dev_matrix = apply_lfs(lfs, dev_table)
    image_matrix = apply_lfs(lfs, image_table)
    anchors = conditional_table(dev_matrix.votes, dev_table.labels)
    label_model = GenerativeLabelModel(class_balance=proba_threshold_prior)
    label_model.fit(image_matrix, accuracy_anchors=anchors, anchor_strength=25.0)

    eval_matrix = apply_lfs(lfs, eval_table)
    eval_proba = label_model.predict_proba(eval_matrix)
    quality = weak_label_quality(
        eval_proba, eval_table.labels, prior=proba_threshold_prior
    )

    image_proba = label_model.predict_proba(image_matrix)
    covered = (image_matrix.votes != 0).any(axis=1)
    if covered.sum() < 20:
        end_auprc = 0.0
    else:
        features = [
            s.name
            for s in ctx.pipeline.schema
            if s.servable and s.service_set in ("A", "B", "C", "D", "IMG")
        ]
        model = train_table_model(
            image_table.select_rows(np.flatnonzero(covered)),
            image_proba[covered],
            features,
            seed=ctx.model_seed(f"lfcmp-{origin}"),
        )
        end_auprc = model_auprc(model, ctx.test_table, ctx.test_table.labels)
    return LFSuiteQuality(
        origin=origin,
        n_lfs=len(lfs),
        hours=hours,
        precision=quality.precision,
        recall=quality.recall,
        f1=quality.f1,
        coverage=quality.coverage,
        end_auprc=end_auprc,
    )


def run_lf_comparison(
    scale: float = 0.5,
    seed: int = 1,
    expert_knowledge: float = 0.55,
    n_expert_lfs: int = 10,
    include_snuba: bool = True,
) -> LFComparisonResult:
    """Compare mined and simulated-expert LFs on CT 1 (English slice)."""
    ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    text = ctx.text_table
    english = _english_rows(text)
    english_table = text.select_rows(english)
    dev_table, eval_table = _split_rows(english_table, fraction=0.6, seed=seed)

    prior = float(np.clip(dev_table.labels.mean(), 1e-4, 0.5))
    lf_features = [
        n for n in ctx.pipeline.lf_feature_schema().names if n in text.schema
    ]

    # --- automatic ----------------------------------------------------
    generator = MinedLFGenerator()
    with obs.timed("lf_comparison.mine") as t:
        mined_lfs = generator.generate(
            dev_table.select_features(lf_features), features=lf_features
        )
    mining_seconds = t.duration
    # The paper bills the automatic path at wall-clock on production
    # infrastructure (14 min of mining over tens of millions of rows).
    # We report the hours a single machine would need at the paper's
    # corpus size, projected linearly from the measured per-row cost —
    # this is what makes the speedup comparable to the paper's 1.87x.
    paper_corpus_rows = 18_000_000
    mined_hours = (
        mining_seconds * (paper_corpus_rows / max(dev_table.n_rows, 1)) / 3600.0
    )

    # --- manual (simulated) -------------------------------------------
    expert = SimulatedExpert(
        ctx.task.definition,
        knowledge_fraction=expert_knowledge,
        seed=seed,
    )
    expert_lfs = expert.write_lfs(
        n_topics_universe=ctx.world.config.n_topics,
        n_keywords_universe=ctx.world.config.n_keywords,
        n_lfs=n_expert_lfs,
    )
    assert expert.report_ is not None
    expert_hours = expert.report_.hours_spent

    mined_quality = _suite_quality(
        "mined", mined_lfs, mined_hours, dev_table, eval_table,
        ctx.image_table, prior, ctx,
    )
    expert_quality = _suite_quality(
        "expert", expert_lfs, expert_hours, dev_table, eval_table,
        ctx.image_table, prior, ctx,
    )

    # Snuba-style iterative synthesis (the alternative the paper found
    # "too costly to immediately integrate", §4.3) for reference.
    snuba_quality = None
    if include_snuba:
        from repro.mining.snuba import SnubaGenerator

        synthesizer = SnubaGenerator()
        snuba_lfs = synthesizer.generate(
            dev_table.select_features(lf_features), features=lf_features
        )
        assert synthesizer.report_ is not None
        snuba_hours = (
            synthesizer.report_.wall_clock_seconds
            * (paper_corpus_rows / max(dev_table.n_rows, 1))
            / 3600.0
        )
        snuba_quality = _suite_quality(
            "snuba", snuba_lfs, snuba_hours, dev_table, eval_table,
            ctx.image_table, prior, ctx,
        )
    return LFComparisonResult(
        mined=mined_quality, expert=expert_quality, scale=scale, seed=seed,
        snuba=snuba_quality,
    )


def _split_rows(table, fraction: float, seed: int):
    """Deterministic random row split of a feature table."""
    rng = np.random.default_rng(seed)
    idx = rng.permutation(table.n_rows)
    cut = int(fraction * table.n_rows)
    first = table.select_rows(np.sort(idx[:cut]))
    second = table.select_rows(np.sort(idx[cut:]))
    return first, second
