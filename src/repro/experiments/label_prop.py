"""Table 3 — improvement from label propagation in training-data
curation.

For each task, the curation step runs twice — with itemset-mined LFs
only, and with label propagation added — and the table reports the
*relative* change in the generative model's precision / recall / F1
(measured on the old-modality dev split) and in the end discriminative
model's AUPRC.  The paper's reading: propagation trades a little
precision for large recall gains (up to 162×), with F1 up to 129× and
AUPRC up to 1.25×; tasks whose mined LFs already capture recall show
≈ 1.00× (CT 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datagen.tasks import list_tasks
from repro.experiments.common import ExperimentContext, fusion_auprc
from repro.experiments.reporting import render_table

__all__ = ["Table3Row", "Table3Result", "run_table3", "PAPER_TABLE3"]

#: the paper's Table 3 (relative improvements from propagation)
PAPER_TABLE3 = {
    "CT1": {"precision": 0.95, "recall": 1.23, "f1": 1.10, "auprc": 1.01},
    "CT2": {"precision": 1.00, "recall": 1.00, "f1": 1.00, "auprc": 1.00},
    "CT3": {"precision": 0.87, "recall": 1.31, "f1": 1.21, "auprc": 1.25},
    "CT4": {"precision": 1.45, "recall": 162.0, "f1": 129.0, "auprc": 1.24},
    "CT5": {"precision": 1.40, "recall": 46.0, "f1": 44.0, "auprc": 1.05},
}


@dataclass
class Table3Row:
    """With/without propagation measurements for one task."""

    task: str
    precision_ratio: float
    recall_ratio: float
    f1_ratio: float
    auprc_ratio: float
    with_quality: dict[str, float]
    without_quality: dict[str, float]


@dataclass
class Table3Result:
    rows: list[Table3Row]
    scale: float
    seed: int

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE3[row.task]
            table_rows.append(
                [
                    row.task,
                    f"{row.precision_ratio:.2f}x",
                    f"{row.recall_ratio:.2f}x",
                    f"{row.f1_ratio:.2f}x",
                    f"{row.auprc_ratio:.2f}x",
                    f"{paper['precision']}/{paper['recall']}/{paper['f1']}/{paper['auprc']}",
                ]
            )
        return render_table(
            ["Task", "Precision", "Recall", "F1", "AUPRC", "paper P/R/F1/AUPRC"],
            table_rows,
            title=(
                f"Table 3 — relative lift from label propagation "
                f"(scale={self.scale}, seed={self.seed})"
            ),
        )


def _safe_ratio(with_value: float, without_value: float) -> float:
    """Ratio with a floor on the denominator so an all-zero "without"
    measurement reports the large-but-finite lift the paper observed
    rather than infinity."""
    return with_value / max(without_value, 1e-3)


def run_table3_task(
    task_name: str,
    scale: float = 0.5,
    seed: int = 1,
    n_model_seeds: int = 2,
) -> Table3Row:
    """Measure the propagation lift for one task."""
    ctx_with = ExperimentContext(task_name=task_name, scale=scale, seed=seed)
    assert ctx_with.config is not None
    config_without = replace(
        ctx_with.config,
        curation=replace(ctx_with.config.curation, use_propagation=False),
    )
    ctx_without = ctx_with.with_config(config_without)

    quality_with = ctx_with.curation.dev_quality
    quality_without = ctx_without.curation.dev_quality
    assert quality_with is not None and quality_without is not None
    auprc_with = fusion_auprc(ctx_with, n_model_seeds=n_model_seeds)
    auprc_without = fusion_auprc(ctx_without, n_model_seeds=n_model_seeds)

    return Table3Row(
        task=task_name,
        precision_ratio=_safe_ratio(quality_with.precision, quality_without.precision),
        recall_ratio=_safe_ratio(quality_with.recall, quality_without.recall),
        f1_ratio=_safe_ratio(quality_with.f1, quality_without.f1),
        auprc_ratio=_safe_ratio(auprc_with, auprc_without),
        with_quality=quality_with.as_dict(),
        without_quality=quality_without.as_dict(),
    )


def run_table3(
    tasks: list[str] | None = None,
    scale: float = 0.5,
    seed: int = 1,
    n_model_seeds: int = 2,
) -> Table3Result:
    rows = [
        run_table3_task(task, scale=scale, seed=seed, n_model_seeds=n_model_seeds)
        for task in (tasks or list_tasks())
    ]
    return Table3Result(rows=rows, scale=scale, seed=seed)
