"""Figure 7 — multi-modal training lesion study (CT 1).

For each cumulative service-set prefix (A, AB, ABC, ABCD), train three
models — text-only (fully supervised, inferring cross-modally), image-
only (weakly supervised), and text+image — and report AUPRC relative to
the embedding baseline.  The paper's reading: combining modalities beats
either alone at every feature level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentContext, fusion_auprc
from repro.experiments.reporting import render_bars, render_table

__all__ = ["Figure7Result", "run_figure7", "PAPER_FIGURE7", "SET_PREFIXES"]

SET_PREFIXES: list[tuple[str, ...]] = [
    ("A",),
    ("A", "B"),
    ("A", "B", "C"),
    ("A", "B", "C", "D"),
]

#: the paper's Figure 7 values: {prefix: (text, image, text+image)}
PAPER_FIGURE7 = {
    "A": (0.22, 0.65, 1.08),
    "AB": (0.88, 0.89, 1.24),
    "ABC": (0.88, 1.26, 1.43),
    "ABCD": (1.12, 1.43, 1.52),
}


@dataclass
class Figure7Result:
    """Relative AUPRC per (service prefix, modality combination)."""

    prefixes: list[str]
    text_only: list[float]
    image_only: list[float]
    combined: list[float]
    baseline_auprc: float
    scale: float
    seed: int

    def render(self) -> str:
        rows = []
        for i, prefix in enumerate(self.prefixes):
            paper = PAPER_FIGURE7[prefix]
            rows.append(
                [
                    prefix,
                    round(self.text_only[i], 2),
                    round(self.image_only[i], 2),
                    round(self.combined[i], 2),
                    f"{paper[0]}/{paper[1]}/{paper[2]}",
                ]
            )
        table = render_table(
            ["Services", "Text", "Image", "Text+Image", "paper T/I/T+I"],
            rows,
            title=f"Figure 7 — modality lesion CT1 (scale={self.scale}, seed={self.seed})",
        )
        labels = []
        values = []
        for i, prefix in enumerate(self.prefixes):
            labels.extend(
                [f"{prefix} T", f"{prefix} I", f"{prefix} T+I"]
            )
            values.extend(
                [self.text_only[i], self.image_only[i], self.combined[i]]
            )
        bars = render_bars(
            labels, values, reference=1.0,
            title="(| marks the embedding baseline, relative AUPRC 1.0)",
        )
        return table + "\n\n" + bars

    def combined_wins(self) -> int:
        """Number of prefixes where text+image beats both single
        modalities (the paper's claim holds at all 4)."""
        wins = 0
        for t, i, c in zip(self.text_only, self.image_only, self.combined):
            if c >= max(t, i):
                wins += 1
        return wins


def run_figure7(
    scale: float = 0.5, seed: int = 1, n_model_seeds: int = 2
) -> Figure7Result:
    """Run the Figure-7 lesion study on CT 1."""
    ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    text_vals = []
    image_vals = []
    combined_vals = []
    prefixes = []
    for sets in SET_PREFIXES:
        prefixes.append("".join(sets))
        text_vals.append(
            ctx.relative(
                fusion_auprc(ctx, text_sets=sets, image_sets=None,
                             n_model_seeds=n_model_seeds)
            )
        )
        image_vals.append(
            ctx.relative(
                fusion_auprc(ctx, text_sets=None, image_sets=sets,
                             n_model_seeds=n_model_seeds)
            )
        )
        combined_vals.append(
            ctx.relative(
                fusion_auprc(ctx, text_sets=sets, image_sets=sets,
                             n_model_seeds=n_model_seeds)
            )
        )
    return Figure7Result(
        prefixes=prefixes,
        text_only=text_vals,
        image_only=image_vals,
        combined=combined_vals,
        baseline_auprc=ctx.baseline_auprc,
        scale=scale,
        seed=seed,
    )
