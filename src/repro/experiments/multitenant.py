"""Multi-tenant chaos-under-contention experiment.

N tenants — each a full cross-modal adaptation run — share one service
catalog behind a :class:`~repro.scheduler.ServiceGovernor` (per-service
token buckets, a process-shared circuit breaker, per-call deadline
budgets) and one weighted-fair-queued worker pool.  One *victim*
service is simultaneously fault-injected (transient failures at
``1 - availability``) and rate-limited, so the sweep exercises every
protection at once: retries and fallbacks on the value path, breaker
trips and throttle waits on the pacing path, admission shedding and
stage dedup across tenants.

Claims under test (the assertions the CI smoke greps for):

* **completion** — every tenant finishes, even shed ones; zero
  unhandled exceptions;
* **no cliff** — mean tenant AUPRC declines smoothly with victim
  availability (same adjacent-step rule as the chaos experiment);
* **fairness** — Jain's index over per-tenant completion rates stays
  high (the fair queue prevents starvation);
* **isolation** — a tenant's outputs are bit-identical to the same
  config run solo (fingerprints + artifact content hashes), proving
  the shared machinery is pacing-only.

    python -m repro.experiments multitenant --scale 0.1 --seed 7
    python -m repro.experiments multitenant --tenants 2 6 \
        --rate-limits 0 400 --availabilities 1.0 0.5
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.rng import derive_seed
from repro.experiments.common import ExperimentContext
from repro.experiments.reporting import render_table
from repro.obs.bench import BenchArtifact
from repro.resilience.circuit import CircuitConfig
from repro.scheduler import (
    FairQueueConfig,
    GovernorConfig,
    MultiTenantOrchestrator,
    MultiTenantReport,
    OrchestratorConfig,
    TenantSpec,
)

__all__ = [
    "MultiTenantCell",
    "MultiTenantResult",
    "build_tenants",
    "run_multitenant",
    "DEFAULT_TENANT_COUNTS",
    "DEFAULT_RATE_LIMITS",
    "DEFAULT_MT_AVAILABILITIES",
    "VICTIM_SERVICE",
]

DEFAULT_TENANT_COUNTS: tuple[int, ...] = (2, 6)
#: victim-service rate limits in calls/second (0 = unlimited)
DEFAULT_RATE_LIMITS: tuple[float, ...] = (0.0, 400.0)
DEFAULT_MT_AVAILABILITIES: tuple[float, ...] = (1.0, 0.5)
#: the shared service that gets both the faults and the rate limit —
#: the org-wide embedding is the busiest resource in the suite
VICTIM_SERVICE = "org_embedding"
#: simulated-seconds deadline budget per guarded call; tight enough
#: that a second retry backoff (0.05 + 0.1s) no longer fits, so
#: deadline exhaustion actually occurs at low availability
CALL_DEADLINE = 0.08


def build_tenants(
    n_tenants: int,
    seed: int,
    availabilities: tuple[float, ...],
    victim: str = VICTIM_SERVICE,
) -> list[TenantSpec]:
    """Deterministic tenant roster for one cell.

    Tenant ``i`` gets a derived seed and cycles through the
    availability levels; tenant 1 (when present) *duplicates* tenant
    0's seed and availability so every multi-tenant cell demonstrates
    cross-tenant stage dedup.  Admission shedding (decided in spec
    order) hits the tail of the list, never the dedup pair.
    """
    specs: list[TenantSpec] = []
    for i in range(n_tenants):
        if i == 1:
            # dedup twin: identical value-affecting config to tenant 0
            specs.append(
                TenantSpec(
                    name="tenant-1",
                    seed=specs[0].seed,
                    availability=specs[0].availability,
                    faulty_services=specs[0].faulty_services,
                )
            )
            continue
        availability = availabilities[i % len(availabilities)]
        specs.append(
            TenantSpec(
                name=f"tenant-{i}",
                seed=derive_seed(seed, f"tenant-{i}"),
                availability=availability,
                faulty_services=(victim,) if availability < 1.0 else (),
            )
        )
    return specs


@dataclass
class MultiTenantCell:
    """One (tenant count, victim rate limit) sweep cell."""

    n_tenants: int
    rate_limit: float
    wall_s: float
    throughput: float
    jain_fairness: float
    all_ok: bool
    #: mean AUPRC of non-shed tenants per availability level
    auprc_by_availability: dict[float, float]
    shed_tenant_auprcs: dict[str, float] = field(default_factory=dict)
    breaker_trips: int = 0
    throttle_waits: int = 0
    shed_items: int = 0
    shed_tenants: int = 0
    dedup_hits: int = 0
    deadline_exceeded: int = 0
    retries: int = 0
    errors: list[str] = field(default_factory=list)

    def graceful(self, max_step_loss: float = 0.5) -> bool:
        """No adjacent availability step loses more than
        ``max_step_loss`` of the preceding level's AUPRC (the chaos
        experiment's no-cliff rule, applied under contention)."""
        levels = sorted(self.auprc_by_availability, reverse=True)
        ordered = [self.auprc_by_availability[a] for a in levels]
        for prev, nxt in zip(ordered, ordered[1:]):
            if prev > 0 and nxt < (1.0 - max_step_loss) * prev:
                return False
        return True


@dataclass
class MultiTenantResult:
    """The full sweep plus the headline-cell isolation check."""

    cells: list[MultiTenantCell]
    availabilities: list[float]
    victim: str
    scale: float
    seed: int
    #: contended-vs-solo bit-identity of the headline cell's tenant 0
    #: (None when the check was skipped)
    solo_identical: bool | None = None

    def ok(self) -> bool:
        checks = [c.all_ok and c.graceful() for c in self.cells]
        if self.solo_identical is not None:
            checks.append(self.solo_identical)
        return all(checks)

    def render(self) -> str:
        rows = []
        for c in self.cells:
            curve = ", ".join(
                f"{a:.2f}→{auprc:.3f}"
                for a, auprc in sorted(
                    c.auprc_by_availability.items(), reverse=True
                )
            )
            rows.append(
                [
                    c.n_tenants,
                    c.rate_limit or "-",
                    f"{c.wall_s:.1f}s",
                    round(c.jain_fairness, 3),
                    curve,
                    c.breaker_trips,
                    c.shed_items + c.shed_tenants,
                    c.dedup_hits,
                    c.deadline_exceeded,
                    "ok" if c.all_ok and c.graceful() else "FAIL",
                ]
            )
        table = render_table(
            ["tenants", "victim qps", "wall", "Jain",
             "AUPRC by availability", "trips", "shed", "dedup",
             "deadline", "verdict"],
            rows,
            title=(
                f"Multi-tenant chaos under contention — victim "
                f"{self.victim!r} (scale={self.scale}, seed={self.seed})"
            ),
        )
        lines = [table, ""]
        if self.solo_identical is not None:
            lines.append(
                "solo-vs-contended outputs: "
                + ("bit-identical" if self.solo_identical else "MISMATCH")
            )
        lines.append(
            "multitenant verdict: "
            + (
                "all tenants complete, degradation graceful, "
                "fairness holds"
                if self.ok()
                else "FAILED (see rows above)"
            )
        )
        return "\n".join(lines)


def _summarize_cell(
    report: MultiTenantReport,
    specs: list[TenantSpec],
    rate_limit: float,
) -> MultiTenantCell:
    by_avail: dict[float, list[float]] = {}
    shed_auprcs: dict[str, float] = {}
    for result in report.tenants:
        if not result.ok:
            continue
        if result.shed:
            shed_auprcs[result.name] = result.metrics.get("auprc", 0.0)
        else:
            by_avail.setdefault(result.availability, []).append(
                result.metrics.get("auprc", 0.0)
            )
    counters = {
        key: sum(t.counters.get(key, 0) for t in report.tenants)
        for key in ("retries", "deadline_exceeded")
    }
    return MultiTenantCell(
        n_tenants=len(specs),
        rate_limit=rate_limit,
        wall_s=report.wall_s,
        throughput=report.throughput,
        jain_fairness=report.jain_fairness,
        all_ok=report.ok,
        auprc_by_availability={
            a: float(np.mean(vals)) for a, vals in sorted(by_avail.items())
        },
        shed_tenant_auprcs=shed_auprcs,
        breaker_trips=int(report.governor.get("breaker_trips", 0)),
        throttle_waits=int(report.governor.get("throttle_waits", 0)),
        shed_items=report.total_shed_items,
        shed_tenants=len(report.shed_tenants),
        dedup_hits=int(report.dedup.get("hits", 0)),
        deadline_exceeded=counters["deadline_exceeded"],
        retries=counters["retries"],
        errors=[
            f"{t.name}: {t.error}" for t in report.tenants if not t.ok
        ],
    )


def run_multitenant(
    scale: float = 0.1,
    seed: int = 7,
    tenant_counts: tuple[int, ...] = DEFAULT_TENANT_COUNTS,
    rate_limits: tuple[float, ...] = DEFAULT_RATE_LIMITS,
    availabilities: tuple[float, ...] = DEFAULT_MT_AVAILABILITIES,
    victim: str = VICTIM_SERVICE,
    workers: int = 2,
    verify_solo: bool = True,
    out_dir: str | None = None,
    ctx: ExperimentContext | None = None,
) -> MultiTenantResult:
    """Sweep tenant count x victim rate limit under injected faults.

    Every cell runs ``n`` full tenant pipelines concurrently over the
    shared catalog/store/governor; cells with four or more tenants also
    exercise admission control (one tenant is shed into degraded mode).
    After the final (headline) cell, tenant 0 is re-run solo — no
    governor, no fair queue, fresh store — and compared fingerprint-
    for-fingerprint against its contended result.

    Writes ``BENCH_multitenant.json`` into ``out_dir`` (default: the
    ``REPRO_BENCH_DIR`` env var, then the working directory).
    """
    if ctx is None:
        ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    artifact = BenchArtifact("multitenant", scale=ctx.scale, seed=seed)

    cells: list[MultiTenantCell] = []
    cell_dicts: list[dict] = []
    solo_identical: bool | None = None
    headline = (max(tenant_counts), max(rate_limits))

    for n_tenants in tenant_counts:
        specs = build_tenants(n_tenants, seed, availabilities, victim)
        for rate_limit in rate_limits:
            config = OrchestratorConfig(
                governor=GovernorConfig(
                    rate_overrides=(
                        {victim: rate_limit} if rate_limit > 0 else {}
                    ),
                    circuit=CircuitConfig(),
                    call_deadline=CALL_DEADLINE,
                ),
                fair_queue=FairQueueConfig(workers=workers, max_queue=64),
                # four or more tenants: cap concurrency below the roster
                # so admission control sheds exactly one tenant
                max_active=max(2, n_tenants - 2) if n_tenants >= 4 else 0,
                max_waiting=1 if n_tenants >= 4 else None,
            )
            orchestrator = MultiTenantOrchestrator(
                ctx.world,
                ctx.task,
                ctx.splits,
                ctx.catalog,
                config=config,
                base_config=ctx.config,
                context={
                    "experiment": "multitenant",
                    "task": ctx.task_name,
                    "scale": ctx.scale,
                },
                run_root=tempfile.mkdtemp(
                    prefix=f"mt-{n_tenants}x{rate_limit:g}-"
                ),
            )
            report = orchestrator.run(specs)
            cell = _summarize_cell(report, specs, rate_limit)
            cells.append(cell)
            artifact.time(f"cell_{n_tenants}x{rate_limit:g}", cell.wall_s)
            cell_dicts.append(
                {
                    "n_tenants": n_tenants,
                    "rate_limit": rate_limit,
                    "wall_s": round(cell.wall_s, 3),
                    "throughput_runs_per_s": round(cell.throughput, 4),
                    "jain_fairness": round(cell.jain_fairness, 4),
                    "all_ok": cell.all_ok,
                    "graceful": cell.graceful(),
                    "auprc_by_availability": {
                        str(a): round(v, 4)
                        for a, v in cell.auprc_by_availability.items()
                    },
                    "breaker_trips": cell.breaker_trips,
                    "throttle_waits": cell.throttle_waits,
                    "shed_items": cell.shed_items,
                    "shed_tenants": cell.shed_tenants,
                    "dedup_hits": cell.dedup_hits,
                    "deadline_exceeded": cell.deadline_exceeded,
                    "retries": cell.retries,
                    "errors": cell.errors,
                }
            )
            if verify_solo and (n_tenants, rate_limit) == headline:
                contended = next(
                    t for t in report.tenants if t.name == specs[0].name
                )
                solo = orchestrator.run_solo(specs[0])
                solo_identical = solo.matches(contended)

    result = MultiTenantResult(
        cells=cells,
        availabilities=list(availabilities),
        victim=victim,
        scale=ctx.scale,
        seed=seed,
        solo_identical=solo_identical,
    )
    artifact.record(
        cells=cell_dicts,
        victim=victim,
        availabilities=list(availabilities),
        call_deadline=CALL_DEADLINE,
        min_jain_fairness=round(min(c.jain_fairness for c in cells), 4),
        total_breaker_trips=sum(c.breaker_trips for c in cells),
        total_shed=sum(c.shed_items + c.shed_tenants for c in cells),
        total_dedup_hits=sum(c.dedup_hits for c in cells),
        total_deadline_exceeded=sum(c.deadline_exceeded for c in cells),
        all_graceful=all(c.graceful() for c in cells),
        solo_identical=solo_identical,
        ok=result.ok(),
    )
    directory = out_dir or os.environ.get("REPRO_BENCH_DIR", ".")
    path = artifact.write(directory)
    print(f"[bench artifact written to {Path(path)}]")
    return result
