"""Ablations of the pipeline's design decisions (DESIGN.md §5).

Each function isolates one choice the paper makes and measures the
alternative:

* order-1 vs order-2 itemset LFs (§4.3: "we found order-1 sufficient");
* generative label model vs majority vote;
* exact vs streaming (Expander-style) label propagation;
* propagating human labels vs weak (LF-majority) labels (§4.4: the
  paper chose human labels);
* injecting a deliberately low-quality resource without validation
  (§6.5's warning).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.experiments.common import ExperimentContext, fusion_auprc
from repro.experiments.reporting import render_table
from repro.models.metrics import auprc

__all__ = [
    "AblationResult",
    "ablate_itemset_order",
    "ablate_label_model",
    "ablate_streaming_propagation",
    "ablate_propagation_label_source",
    "ablate_low_quality_resource",
    "run_all_ablations",
]


@dataclass
class AblationResult:
    """One ablation: the paper's choice vs the alternative."""

    name: str
    choice_label: str
    choice_value: float
    alternative_label: str
    alternative_value: float
    metric: str = "AUPRC"

    @property
    def ratio(self) -> float:
        return self.choice_value / max(self.alternative_value, 1e-9)

    def row(self) -> list[object]:
        return [
            self.name,
            f"{self.choice_label}={self.choice_value:.3f}",
            f"{self.alternative_label}={self.alternative_value:.3f}",
            f"{self.ratio:.2f}x",
        ]


def _weak_label_auprc(ctx: ExperimentContext) -> float:
    """Ranking quality of the probabilistic labels against the held-out
    ground truth of the unlabeled corpus (evaluation only)."""
    gold = ctx.splits.image_unlabeled.labels
    return auprc(ctx.curation.probabilistic_labels, gold)


def ablate_itemset_order(
    scale: float = 0.4, seed: int = 1
) -> AblationResult:
    """Order-1 vs order-2 mined conjunctions (weak-label quality)."""
    ctx1 = ExperimentContext("CT1", scale=scale, seed=seed)
    assert ctx1.config is not None
    ctx2 = ctx1.with_config(
        replace(ctx1.config, curation=replace(ctx1.config.curation, max_order=2))
    )
    return AblationResult(
        name="itemset order (weak labels)",
        choice_label="order-1",
        choice_value=_weak_label_auprc(ctx1),
        alternative_label="order-2",
        alternative_value=_weak_label_auprc(ctx2),
    )


def ablate_label_model(scale: float = 0.4, seed: int = 1) -> AblationResult:
    """Generative label model vs majority vote (weak-label quality)."""
    ctx_gen = ExperimentContext("CT1", scale=scale, seed=seed)
    assert ctx_gen.config is not None
    ctx_mv = ctx_gen.with_config(
        replace(
            ctx_gen.config,
            curation=replace(ctx_gen.config.curation, use_generative_model=False),
        )
    )
    return AblationResult(
        name="label aggregation (weak labels)",
        choice_label="generative",
        choice_value=_weak_label_auprc(ctx_gen),
        alternative_label="majority",
        alternative_value=_weak_label_auprc(ctx_mv),
    )


def ablate_streaming_propagation(
    scale: float = 0.4, seed: int = 1
) -> AblationResult:
    """Exact Zhu–Ghahramani vs the streaming approximation."""
    ctx_exact = ExperimentContext("CT1", scale=scale, seed=seed)
    assert ctx_exact.config is not None
    ctx_stream = ctx_exact.with_config(
        replace(
            ctx_exact.config,
            curation=replace(
                ctx_exact.config.curation, streaming_propagation=True
            ),
        )
    )
    return AblationResult(
        name="propagation solver (weak labels)",
        choice_label="exact",
        choice_value=_weak_label_auprc(ctx_exact),
        alternative_label="streaming",
        alternative_value=_weak_label_auprc(ctx_stream),
    )


def ablate_propagation_label_source(
    scale: float = 0.4, seed: int = 1
) -> AblationResult:
    """Propagate human labels (the paper's choice) vs weak labels.

    The weak-label variant seeds the graph with LF-majority labels of
    the same text points instead of their human labels, keeping
    everything else fixed.  Measured as the propagation score's ranking
    quality on the unlabeled image corpus.
    """
    from repro.labeling.majority import MajorityVoter
    from repro.labeling.matrix import apply_lfs
    from repro.mining.lf_generator import MinedLFGenerator
    from repro.propagation.graph import GraphConfig, build_knn_graph
    from repro.propagation.propagate import LabelPropagation

    ctx = ExperimentContext("CT1", scale=scale, seed=seed)
    text = ctx.text_table
    image = ctx.image_table
    gold = ctx.splits.image_unlabeled.labels
    cfg = ctx.config.curation if ctx.config else None
    assert cfg is not None

    rng = np.random.default_rng(seed)
    n_seed = min(cfg.max_seed_nodes, text.n_rows)
    seed_idx = np.sort(rng.choice(text.n_rows, n_seed, replace=False))
    seed_table = text.select_rows(seed_idx)

    lf_names = [n for n in ctx.pipeline.lf_feature_schema().names if n in text.schema]
    graph_features = lf_names + ["org_embedding"]
    combined = seed_table.select_features(
        [n for n in graph_features if n in seed_table.schema]
    ).concat(image.select_features([n for n in graph_features if n in image.schema]))
    graph = build_knn_graph(
        combined,
        GraphConfig(
            k=cfg.graph_k,
            feature_weights={
                name: cfg.graph_embedding_weight
                for name in ("org_embedding",)
                if name in combined.schema
            },
            backend=cfg.graph_backend,
        ),
    )
    prior = float(np.clip(text.labels.mean(), 1e-4, 0.5))
    propagator = LabelPropagation(prior=prior)

    human = propagator.run(graph, np.arange(n_seed), seed_table.labels)
    human_quality = auprc(human.scores[n_seed:], gold)

    # weak seed labels: majority vote of mined LFs over the seed table
    lfs = MinedLFGenerator().generate(
        seed_table.select_features(lf_names), features=lf_names
    )
    matrix = apply_lfs(lfs, seed_table)
    weak_seed_labels = (
        MajorityVoter(prior=prior).predict_proba(matrix) > 0.5
    ).astype(int)
    weak = propagator.run(graph, np.arange(n_seed), weak_seed_labels)
    weak_quality = auprc(weak.scores[n_seed:], gold)

    return AblationResult(
        name="propagation label source (scores)",
        choice_label="human",
        choice_value=human_quality,
        alternative_label="weak",
        alternative_value=weak_quality,
    )


def ablate_low_quality_resource(
    scale: float = 0.4, seed: int = 1
) -> AblationResult:
    """§6.5: a low-quality resource selected without validation.

    Compares the cross-modal model trained on the full feature set
    against one where the deliberately signal-free ``language`` feature
    replaces set D (i.e. the team spent its feature budget on a junk
    resource).  The catalog's quality report is what would have caught
    it.
    """
    ctx = ExperimentContext("CT1", scale=scale, seed=seed)
    good = fusion_auprc(ctx, text_sets=("A", "B", "C", "D"),
                        image_sets=("A", "B", "C", "D"), n_model_seeds=2)
    junk = fusion_auprc(ctx, text_sets=("A", "B", "C", "META"),
                        image_sets=("A", "B", "C", "META"), n_model_seeds=2)
    return AblationResult(
        name="resource quality (end model)",
        choice_label="validated(D)",
        choice_value=good,
        alternative_label="junk(language)",
        alternative_value=junk,
    )


def run_all_ablations(scale: float = 0.4, seed: int = 1) -> list[AblationResult]:
    return [
        ablate_itemset_order(scale, seed),
        ablate_label_model(scale, seed),
        ablate_streaming_propagation(scale, seed),
        ablate_propagation_label_source(scale, seed),
        ablate_low_quality_resource(scale, seed),
    ]


def render_ablations(results: list[AblationResult]) -> str:
    return render_table(
        ["Ablation", "paper's choice", "alternative", "choice/alt"],
        [r.row() for r in results],
        title="Design-decision ablations (DESIGN.md §5)",
    )
