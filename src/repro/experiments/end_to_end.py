"""Table 2 and Figure 5 — end-to-end comparison and cross-over curves.

Table 2: for each task, the AUPRC (relative to the embedding-only fully
supervised baseline) of a fully-supervised text model, a weakly
supervised image model, and the cross-modal model — plus the number of
hand-labeled image examples a fully supervised model needs to beat the
cross-modal pipeline (the "cross-over" point).

Figure 5 (CT 1): the full fully-supervised learning curve against the
flat cross-modal line, in two regimes — all four service sets servable
(top), and only sets A+B servable while LFs still use ABCD including
the nonservable features (bottom).  The bottom regime's larger
cross-over is the paper's evidence that nonservable features matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import PipelineConfig
from repro.experiments.common import (
    ExperimentContext,
    find_crossover,
    fusion_auprc,
    modality_feature_names,
    supervised_sweep,
)
from repro.datagen.entities import Modality
from repro.datagen.tasks import list_tasks
from repro.exec import ExecutorConfig
from repro.experiments.reporting import render_table

__all__ = [
    "TaskEndToEnd",
    "Table2Result",
    "Figure5Result",
    "EndToEndRun",
    "build_pipeline_for_run",
    "run_task_end_to_end",
    "run_table2",
    "run_figure5",
    "run_end_to_end",
    "PAPER_TABLE2",
    "default_budgets",
]


def build_pipeline_for_run(
    task: str,
    scale: float,
    seed: int,
    config: "PipelineConfig | None" = None,
):
    """The exact pipeline + splits a checkpointed ``end_to_end`` run uses.

    Factored out of :func:`run_end_to_end` so lineage repair
    (``scrub --repair``, ``storagechaos``) replays stages against the
    identical corpora, resource catalog (``n_history=10_000``), and
    configuration the original run computed with — any drift here and
    rebuilt artifacts would (correctly) fail the repair hash oracle.

    Returns ``(pipeline, splits)``.
    """
    from repro.core.pipeline import CrossModalPipeline
    from repro.datagen.tasks import classification_task, generate_task_corpora
    from repro.resources.service_sets import build_resource_suite

    task_config = classification_task(task)
    world, task_rt, splits = generate_task_corpora(task_config, scale=scale, seed=seed)
    catalog = build_resource_suite(world, task_rt, n_history=10_000, seed=seed)
    pipeline = CrossModalPipeline(
        world, task_rt, catalog, config or PipelineConfig(seed=seed)
    )
    return pipeline, splits

#: the paper's Table 2 (relative AUPRC; cross-over in hand-labels)
PAPER_TABLE2 = {
    "CT1": {"text": 1.12, "image": 1.43, "cross": 1.52, "crossover": 60_000},
    "CT2": {"text": 1.49, "image": 2.32, "cross": 2.43, "crossover": 50_000},
    "CT3": {"text": 0.88, "image": 0.95, "cross": 1.14, "crossover": 5_000},
    "CT4": {"text": 1.74, "image": 2.00, "cross": 2.45, "crossover": 4_000},
    "CT5": {"text": 1.67, "image": 2.03, "cross": 2.42, "crossover": 750_000},
}


def default_budgets(pool_size: int) -> list[int]:
    """Hand-label budgets for the supervised sweep (prefixes of pool).

    The full pool is always the last point so the cross-over search sees
    the best fully-supervised model the data supports.
    """
    budgets = [b for b in (100, 250, 500, 1000, 2000, 4000, 8000) if b < pool_size]
    budgets.append(pool_size)
    return budgets


@dataclass
class TaskEndToEnd:
    """End-to-end measurements for one task."""

    task: str
    baseline_auprc: float
    text_auprc: float
    image_auprc: float
    cross_auprc: float
    budgets: list[int]
    supervised: list[float]
    crossover: int | None

    @property
    def text_relative(self) -> float:
        return self.text_auprc / self.baseline_auprc

    @property
    def image_relative(self) -> float:
        return self.image_auprc / self.baseline_auprc

    @property
    def cross_relative(self) -> float:
        return self.cross_auprc / self.baseline_auprc


@dataclass
class Table2Result:
    """Measured Table 2 across tasks."""

    tasks: list[TaskEndToEnd]
    scale: float
    seed: int

    def render(self) -> str:
        rows = []
        for t in self.tasks:
            paper = PAPER_TABLE2[t.task]
            rows.append(
                [
                    t.task,
                    round(t.text_relative, 2),
                    round(t.image_relative, 2),
                    round(t.cross_relative, 2),
                    t.crossover if t.crossover is not None else f">{t.budgets[-1]}",
                    f"{paper['text']}/{paper['image']}/{paper['cross']}",
                    paper["crossover"],
                ]
            )
        return render_table(
            ["Task", "Text", "Image", "Cross-Modal", "Cross-Over",
             "paper T/I/X", "paper X-over"],
            rows,
            title=f"Table 2 — relative AUPRC (scale={self.scale}, seed={self.seed})",
        )


def run_task_end_to_end(
    ctx: ExperimentContext,
    budgets: list[int] | None = None,
    n_model_seeds: int = 2,
) -> TaskEndToEnd:
    """Measure text / image / cross-modal models and the supervised
    sweep for one task context."""
    if budgets is None:
        budgets = default_budgets(ctx.pool_table.n_rows)
    text = fusion_auprc(ctx, text_sets=("A", "B", "C", "D"), image_sets=None,
                        n_model_seeds=n_model_seeds)
    image = fusion_auprc(ctx, text_sets=None, image_sets=("A", "B", "C", "D"),
                         n_model_seeds=n_model_seeds)
    cross = fusion_auprc(ctx, n_model_seeds=n_model_seeds)
    sup_features = modality_feature_names(
        ctx, ("A", "B", "C", "D"), Modality.IMAGE
    )
    sweep = supervised_sweep(ctx, budgets, sup_features, n_model_seeds=n_model_seeds)
    return TaskEndToEnd(
        task=ctx.task_name,
        baseline_auprc=ctx.baseline_auprc,
        text_auprc=text,
        image_auprc=image,
        cross_auprc=cross,
        budgets=budgets,
        supervised=sweep,
        crossover=find_crossover(budgets, sweep, cross),
    )


def run_table2(
    tasks: list[str] | None = None,
    scale: float = 0.5,
    seed: int = 1,
    budgets: list[int] | None = None,
    n_model_seeds: int = 2,
) -> Table2Result:
    """Run the end-to-end comparison over all (or selected) tasks."""
    results = []
    for task_name in tasks or list_tasks():
        ctx = ExperimentContext(task_name=task_name, scale=scale, seed=seed)
        results.append(run_task_end_to_end(ctx, budgets, n_model_seeds))
    return Table2Result(tasks=results, scale=scale, seed=seed)


@dataclass
class EndToEndRun:
    """One full :meth:`CrossModalPipeline.run` plus its headline
    numbers — the cheapest way to see (and trace) every pipeline layer
    working together."""

    task: str
    metrics: dict[str, float]
    timings: dict[str, float]
    n_lfs: int
    coverage: float
    scale: float
    seed: int
    #: stages replayed from a run checkpoint (empty without --run-dir)
    resumed_stages: list[str] = field(default_factory=list)
    #: stages whose damaged artifacts were rebuilt in place (--auto-repair)
    repaired_stages: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"end-to-end pipeline run — {self.task} "
            f"(scale={self.scale}, seed={self.seed})",
            f"  labeling functions: {self.n_lfs} "
            f"(coverage {self.coverage:.2f})",
        ]
        for key in ("auprc", "f1@0.5", "positive_rate", "n_test"):
            if key in self.metrics:
                lines.append(f"  {key}: {self.metrics[key]:.4g}")
        lines.append(
            "  timings: "
            + ", ".join(f"{k} {v:.1f}s" for k, v in self.timings.items())
        )
        if self.resumed_stages:
            lines.append(
                "  resumed from checkpoint: " + ", ".join(self.resumed_stages)
            )
        if self.repaired_stages:
            lines.append(
                "  auto-repaired from lineage: " + ", ".join(self.repaired_stages)
            )
        return "\n".join(lines)


def run_end_to_end(
    task: str = "CT1",
    scale: float = 0.4,
    seed: int = 1,
    run_dir: str | None = None,
    resume: bool = False,
    executor: "ExecutorConfig | None" = None,
    graph_backend: str | None = None,
    auto_repair: bool = False,
    shard_size: int | None = None,
) -> EndToEndRun:
    """Run the full pipeline (featurize -> curate -> train -> evaluate)
    once on one task.

    Under ``--trace`` this produces the canonical nested trace: one span
    per pipeline step, with per-service featurization counters and
    latency histograms inside the featurize subtree.

    With ``run_dir``, every completed stage is checkpointed there
    (content-hashed artifacts + manifest), and ``resume=True`` replays
    completed stages from a prior interrupted run instead of recomputing
    them — bit-identically, since all stage RNG streams derive from the
    recorded seeds.  A ``result.json`` with the headline numbers is
    written atomically into the run directory on completion.

    ``executor`` selects the execution backend for the parallel stages.
    Backends produce byte-identical artifacts, so the checkpoint context
    deliberately excludes the backend: a run interrupted on one backend
    can resume on another.

    ``graph_backend`` selects kNN graph construction for the curation
    stage (exact | lsh | nn-descent).  Unlike the exec backend it
    changes results, so it IS part of the curate-stage fingerprint: a
    checkpointed run never silently reuses a graph built by a different
    backend.

    ``auto_repair=True`` (CLI: ``--auto-repair``) rebuilds a damaged
    stage artifact in place during replay — recompute, verify against
    the recorded content hash, restore — instead of aborting on the
    first :class:`IntegrityError`.  Off by default: an unexpected
    integrity failure should stay loud unless self-healing was asked
    for.

    ``shard_size`` (CLI: ``--shard-size``) routes featurization through
    the out-of-core sharded data plane (:mod:`repro.shards`): feature
    tables persist as content-hashed shard artifacts of that many rows,
    computed one shard at a time.  Values and downstream results are
    bit-identical to an unsharded run.  Requires ``run_dir`` — the
    shards live in the run's artifact store.
    """
    import os
    from pathlib import Path

    from repro.core.atomicio import atomic_write_json
    from repro.core.config import CurationConfig, PipelineConfig
    from repro.runs import RunCheckpointer

    checkpoint = None
    if run_dir is not None:
        checkpoint = RunCheckpointer(
            run_dir,
            context={
                "experiment": "end_to_end",
                "task": task,
                "scale": scale,
                "seed": seed,
            },
            resume=resume,
            auto_repair=auto_repair,
        )

    config_kwargs: dict = {"seed": seed}
    if executor is not None:
        config_kwargs["executor"] = executor
    if graph_backend is not None:
        config_kwargs["curation"] = CurationConfig(graph_backend=graph_backend)
    if shard_size is not None:
        if run_dir is None:
            from repro.core.exceptions import ConfigurationError

            raise ConfigurationError(
                "--shard-size requires --run-dir: shard artifacts live in "
                "the run's content-hashed store"
            )
        config_kwargs["shard_size"] = shard_size
    config = PipelineConfig(**config_kwargs)
    pipeline, splits = build_pipeline_for_run(task, scale, seed, config)
    result = pipeline.run(splits, checkpoint=checkpoint)
    run = EndToEndRun(
        task=task,
        metrics=result.metrics,
        timings=result.timings,
        n_lfs=len(result.curation.lfs),
        coverage=result.curation.label_matrix.coverage(),
        scale=scale,
        seed=seed,
        resumed_stages=list(result.resumed_stages),
        repaired_stages=(
            list(checkpoint.repaired_stages) if checkpoint is not None else []
        ),
    )
    if run_dir is not None:
        atomic_write_json(
            Path(run_dir) / "result.json",
            {
                "task": run.task,
                "scale": run.scale,
                "seed": run.seed,
                "metrics": run.metrics,
                "n_lfs": run.n_lfs,
                "coverage": run.coverage,
                "resumed_stages": run.resumed_stages,
                "repaired_stages": run.repaired_stages,
            },
            indent=2,
        )
    bench_dir = os.environ.get("REPRO_BENCH_DIR") or run_dir
    if bench_dir:
        from repro.obs.bench import BenchArtifact

        # degradation counters come from the featurized tables when a
        # resilience policy was in play; a plain run reports zeros —
        # the schema stays stable either way
        reports = [
            t.degradation
            for t in result.tables.values()
            if t.degradation is not None
        ]
        counters: dict[str, int] = {
            "breaker_trips": 0, "short_circuits": 0, "deadline_exceeded": 0,
        }
        for report in reports:
            for key in counters:
                counters[key] = max(counters[key], report.counters.get(key, 0))
        artifact = BenchArtifact("end_to_end", scale=scale, seed=seed)
        for stage, seconds in run.timings.items():
            artifact.time(stage, seconds)
        artifact.record(
            task=task,
            metrics={k: round(v, 4) for k, v in run.metrics.items()},
            n_lfs=run.n_lfs,
            coverage=round(run.coverage, 4),
            resumed_stages=run.resumed_stages,
            repaired_stages=run.repaired_stages,
            retries=sum(r.total_retries for r in reports),
            fallbacks=sum(r.n_fallbacks for r in reports),
            shed_items=0,
            dedup_hits=0,
            **counters,
        )
        artifact.write(bench_dir)
    return run


@dataclass
class Figure5Result:
    """The two cross-over curves of Figure 5 (CT 1)."""

    budgets: list[int]
    supervised_full: list[float]
    cross_modal_full: float
    crossover_full: int | None
    supervised_servable: list[float]
    cross_modal_servable: float
    crossover_servable: int | None
    baseline_auprc: float
    scale: float
    seed: int

    def render(self) -> str:
        rows = []
        for i, budget in enumerate(self.budgets):
            rows.append(
                [
                    budget,
                    round(self.supervised_full[i] / self.baseline_auprc, 2),
                    round(self.cross_modal_full / self.baseline_auprc, 2),
                    round(self.supervised_servable[i] / self.baseline_auprc, 2),
                    round(self.cross_modal_servable / self.baseline_auprc, 2),
                ]
            )
        table = render_table(
            ["hand-labels", "sup ABCD", "cross ABCD", "sup AB", "cross AB(+ABCD LFs)"],
            rows,
            title=(
                f"Figure 5 — relative AUPRC vs hand-label budget "
                f"(scale={self.scale}, seed={self.seed})"
            ),
        )
        notes = (
            f"\ncross-over (ABCD servable): {self.crossover_full}"
            f"\ncross-over (AB servable, ABCD LFs): {self.crossover_servable}"
            "\npaper: 60k (top, all sets) vs 140k (bottom, two sets)"
        )
        return table + notes


def run_figure5(
    scale: float = 0.5,
    seed: int = 1,
    budgets: list[int] | None = None,
    n_model_seeds: int = 2,
) -> Figure5Result:
    """Reproduce Figure 5 on CT 1.

    Top: both the supervised model and the cross-modal model use all
    four service sets.  Bottom: both are restricted to servable sets
    A+B, while LFs still mine over ABCD (nonservable simulation).
    """
    ctx = ExperimentContext(task_name="CT1", scale=scale, seed=seed)
    if budgets is None:
        budgets = default_budgets(ctx.pool_table.n_rows)

    # top regime: ABCD servable everywhere
    cross_full = fusion_auprc(ctx, n_model_seeds=n_model_seeds)
    sup_features_full = modality_feature_names(ctx, ("A", "B", "C", "D"), Modality.IMAGE)
    sweep_full = supervised_sweep(ctx, budgets, sup_features_full, n_model_seeds)

    # bottom regime: A+B servable, LFs over ABCD (the default lf sets)
    servable_config = replace(
        ctx.config if ctx.config is not None else PipelineConfig(seed=seed),
        model_service_sets=("A", "B"),
    )
    ctx_servable = ctx.with_config(servable_config)
    cross_servable = fusion_auprc(
        ctx_servable, text_sets=("A", "B"), image_sets=("A", "B"),
        n_model_seeds=n_model_seeds,
    )
    sup_features_servable = modality_feature_names(ctx, ("A", "B"), Modality.IMAGE)
    sweep_servable = supervised_sweep(ctx, budgets, sup_features_servable, n_model_seeds)

    return Figure5Result(
        budgets=budgets,
        supervised_full=sweep_full,
        cross_modal_full=cross_full,
        crossover_full=find_crossover(budgets, sweep_full, cross_full),
        supervised_servable=sweep_servable,
        cross_modal_servable=cross_servable,
        crossover_servable=find_crossover(budgets, sweep_servable, cross_servable),
        baseline_auprc=ctx.baseline_auprc,
        scale=scale,
        seed=seed,
    )
