"""Shared experiment machinery.

:class:`ExperimentContext` generates and caches everything a single
(task, scale, seed) configuration needs — world, corpora, resource
catalog, pipeline, and featurized tables — so that different experiments
over the same configuration don't repeat the expensive steps.

Helper functions train single-table models, compute the paper's
baseline (fully supervised image model on the pretrained embedding
only), and run labeled-budget sweeps for cross-over measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import CrossModalPipeline
from repro.core.rng import derive_seed
from repro.datagen.corpus import CorpusSplits
from repro.datagen.entities import Modality
from repro.datagen.tasks import TaskConfig, classification_task, generate_task_corpora
from repro.datagen.world import TaskRuntime, World
from repro.features.table import FeatureTable
from repro.models.fusion import EarlyFusion
from repro.models.metrics import auprc
from repro.models.mlp import MLPClassifier
from repro.resources.catalog import ResourceCatalog
from repro.resources.service_sets import build_resource_suite

__all__ = [
    "ExperimentContext",
    "train_table_model",
    "model_auprc",
    "supervised_sweep",
    "find_crossover",
]

#: history size used by experiment resource suites (smaller than the
#: library default to keep experiment wall-clock reasonable)
EXPERIMENT_HISTORY = 20_000


@dataclass
class ExperimentContext:
    """One (task, scale, seed) experimental configuration."""

    task_name: str = "CT1"
    scale: float = 0.5
    seed: int = 1
    config: PipelineConfig | None = None
    n_history: int = EXPERIMENT_HISTORY

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = PipelineConfig(seed=self.seed)

    # ------------------------------------------------------------------
    # cached pipeline objects
    # ------------------------------------------------------------------
    @cached_property
    def task_config(self) -> TaskConfig:
        return classification_task(self.task_name)

    @cached_property
    def _generated(self) -> tuple[World, TaskRuntime, CorpusSplits]:
        return generate_task_corpora(
            self.task_config, scale=self.scale, seed=self.seed
        )

    @property
    def world(self) -> World:
        return self._generated[0]

    @property
    def task(self) -> TaskRuntime:
        return self._generated[1]

    @property
    def splits(self) -> CorpusSplits:
        return self._generated[2]

    @cached_property
    def catalog(self) -> ResourceCatalog:
        return build_resource_suite(
            self.world, self.task, n_history=self.n_history, seed=self.seed
        )

    @cached_property
    def pipeline(self) -> CrossModalPipeline:
        return CrossModalPipeline(self.world, self.task, self.catalog, self.config)

    # featurized tables -------------------------------------------------
    @cached_property
    def text_table(self) -> FeatureTable:
        return self.pipeline.featurize(self.splits.text_labeled, include_labels=True)

    @cached_property
    def image_table(self) -> FeatureTable:
        return self.pipeline.featurize(self.splits.image_unlabeled, include_labels=False)

    @cached_property
    def test_table(self) -> FeatureTable:
        return self.pipeline.featurize(self.splits.image_test, include_labels=True)

    @cached_property
    def pool_table(self) -> FeatureTable:
        return self.pipeline.featurize(self.splits.image_labeled_pool, include_labels=True)

    @cached_property
    def curation(self):
        """Training-data curation result for this context's config."""
        return self.pipeline.curate(self.text_table, self.image_table)

    # derived helpers ----------------------------------------------------
    def with_config(self, config: PipelineConfig) -> "ExperimentContext":
        """Same data/world, different pipeline configuration.

        Shares the generated corpora and featurized tables (featurized
        values are config-independent) but rebuilds the pipeline.
        """
        clone = ExperimentContext(
            task_name=self.task_name,
            scale=self.scale,
            seed=self.seed,
            config=config,
            n_history=self.n_history,
        )
        # share expensive cached artifacts
        clone.__dict__["_generated"] = self._generated
        clone.__dict__["catalog"] = self.catalog
        for name in ("text_table", "image_table", "test_table", "pool_table"):
            if name in self.__dict__:
                clone.__dict__[name] = self.__dict__[name]
        # curation only depends on the curation config / LF sets / seed
        same_curation = (
            config.curation == (self.config.curation if self.config else None)
            and config.lf_service_sets
            == (self.config.lf_service_sets if self.config else None)
            and config.seed == (self.config.seed if self.config else None)
        )
        if same_curation and "curation" in self.__dict__:
            clone.__dict__["curation"] = self.__dict__["curation"]
        return clone

    def model_seed(self, tag: str, index: int = 0) -> int:
        return derive_seed(self.seed, f"model-{tag}-{index}")

    @cached_property
    def baseline_auprc(self) -> float:
        """The paper's normalizer: a fully supervised image model
        trained on the full labeled pool using only the pretrained
        org-wide embedding, averaged over two model seeds."""
        scores = []
        for i in range(2):
            model = train_table_model(
                self.pool_table,
                self.pool_table.labels.astype(float),
                ["org_embedding"],
                seed=self.model_seed("baseline", i),
            )
            scores.append(
                model_auprc(model, self.test_table, self.test_table.labels)
            )
        return float(np.mean(scores))

    def relative(self, value: float) -> float:
        """AUPRC relative to the embedding baseline."""
        return value / self.baseline_auprc


def train_table_model(
    table: FeatureTable,
    targets: np.ndarray,
    features: list[str] | None = None,
    seed: int = 0,
    n_epochs: int = 60,
) -> EarlyFusion:
    """Train a single-table early-fusion MLP on selected features."""
    if features is not None:
        table = table.select_features([f for f in features if f in table.schema])
    model = EarlyFusion(
        lambda: MLPClassifier(seed=seed, n_epochs=n_epochs, patience=10)
    )
    model.fit([table], [np.asarray(targets, dtype=float)])
    return model


def model_auprc(
    model, test_table: FeatureTable, test_labels: np.ndarray
) -> float:
    return auprc(model.predict_proba(test_table), test_labels)


def modality_feature_names(
    ctx: ExperimentContext,
    service_sets: tuple[str, ...],
    modality: Modality,
    include_image_features: bool = True,
) -> list[str]:
    """Servable model-feature names for one modality and service sets."""
    sets = list(service_sets)
    if include_image_features and modality is not Modality.TEXT:
        sets.append("IMG")
    schema = ctx.pipeline.schema.select(
        service_sets=sets, servable_only=True, modality=modality
    )
    return schema.names


def fusion_auprc(
    ctx: ExperimentContext,
    text_sets: tuple[str, ...] | None = ("A", "B", "C", "D"),
    image_sets: tuple[str, ...] | None = ("A", "B", "C", "D"),
    n_model_seeds: int = 2,
) -> float:
    """Early-fusion AUPRC with per-modality service-set restrictions.

    ``text_sets=None`` drops the text modality entirely (image-only
    weakly supervised model); ``image_sets=None`` drops image (text-only
    model doing cross-modal inference).  Image data is always the
    weakly supervised table from the context's curation.
    """
    if text_sets is None and image_sets is None:
        raise ValueError("at least one modality must be included")
    tables: list[FeatureTable] = []
    targets: list[np.ndarray] = []
    if text_sets is not None:
        names = modality_feature_names(ctx, text_sets, Modality.TEXT)
        tables.append(
            ctx.text_table.select_features(
                [n for n in names if n in ctx.text_table.schema]
            )
        )
        targets.append(ctx.text_table.labels.astype(float))
    if image_sets is not None:
        curation = ctx.curation
        image_aug = curation.image_table_augmented
        mask = curation.coverage_mask
        rows = np.flatnonzero(mask)
        names = modality_feature_names(ctx, image_sets, Modality.IMAGE)
        tables.append(
            image_aug.select_rows(rows).select_features(
                [n for n in names if n in image_aug.schema]
            )
        )
        targets.append(curation.probabilistic_labels[mask])

    tag = f"fusion-{text_sets}-{image_sets}"
    scores = []
    for i in range(n_model_seeds):
        model = EarlyFusion(
            lambda: MLPClassifier(
                seed=ctx.model_seed(tag, i), n_epochs=60, patience=10
            )
        )
        model.fit(tables, targets)
        scores.append(model_auprc(model, ctx.test_table, ctx.test_table.labels))
    return float(np.mean(scores))


def supervised_sweep(
    ctx: ExperimentContext,
    budgets: list[int],
    features: list[str],
    n_model_seeds: int = 2,
) -> list[float]:
    """Fully-supervised image AUPRC at increasing hand-label budgets.

    Budgets are prefixes of the labeled pool (so larger budgets are
    supersets), and each point averages ``n_model_seeds`` model seeds to
    tame small-sample training variance.
    """
    pool = ctx.pool_table
    results = []
    for budget in budgets:
        n = min(budget, pool.n_rows)
        rows = np.arange(n)
        subset = pool.select_rows(rows)
        scores = []
        for i in range(n_model_seeds):
            model = train_table_model(
                subset,
                pool.labels[:n].astype(float),
                features,
                seed=ctx.model_seed(f"sup{budget}", i),
            )
            scores.append(model_auprc(model, ctx.test_table, ctx.test_table.labels))
        results.append(float(np.mean(scores)))
    return results


def find_crossover(
    budgets: list[int], sweep: list[float], reference: float
) -> int | None:
    """Smallest budget whose supervised AUPRC beats ``reference``
    (with the sweep made monotone by a running max, mirroring how the
    paper reads its Figure 5 curves)."""
    running = -np.inf
    for budget, value in zip(budgets, sweep):
        running = max(running, value)
        if running > reference:
            return budget
    return None
