"""Multi-modal fusion strategies (paper §5, Figure 4).

* :class:`EarlyFusion` — merge all modalities' features into one table
  ("features specific to certain data modalities are left empty" for
  the others) and train a single model on the combined dataset.  The
  paper finds this simple strategy wins.
* :class:`IntermediateFusion` — train an independent model per
  modality, strip each model's final prediction layer, concatenate the
  resulting embeddings (every point passes through *all* models via the
  shared features) and train a final model on the concatenation.
* :class:`DeViSE` — train model A on the old modalities and freeze it;
  pre-train model B on the weakly-supervised new modality; learn a
  projection P matching B's embedding of a point to A's embedding of
  its shared features; at inference, route new-modality points through
  B -> P -> A's frozen prediction layer [Frome et al. 2013, adapted].

All three consume :class:`~repro.features.table.FeatureTable` objects
plus (possibly probabilistic) targets, and emit P(y=1) for any table.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from functools import reduce

import numpy as np

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.features.table import FeatureTable
from repro.features.vectorize import Vectorizer
from repro.models.base import Estimator
from repro.models.linear import LogisticRegression
from repro.models.mlp import MLPClassifier

__all__ = ["EarlyFusion", "IntermediateFusion", "DeViSE"]

ModelFactory = Callable[[], Estimator]


def _check_alignment(
    tables: Sequence[FeatureTable],
    targets: Sequence[np.ndarray],
    sample_weights: Sequence[np.ndarray | None] | None,
) -> list[np.ndarray | None]:
    if len(tables) == 0:
        raise ConfigurationError("fusion requires at least one table")
    if len(tables) != len(targets):
        raise ConfigurationError(
            f"{len(tables)} tables but {len(targets)} target arrays"
        )
    for table, y in zip(tables, targets):
        if len(y) != table.n_rows:
            raise ConfigurationError(
                f"table with {table.n_rows} rows got {len(y)} targets"
            )
    if sample_weights is None:
        return [None] * len(tables)
    if len(sample_weights) != len(tables):
        raise ConfigurationError("sample_weights must align with tables")
    return list(sample_weights)


def _concat_weights(
    tables: Sequence[FeatureTable],
    weights: Sequence[np.ndarray | None],
) -> np.ndarray:
    parts = []
    for table, w in zip(tables, weights):
        parts.append(
            np.ones(table.n_rows) if w is None else np.asarray(w, dtype=float)
        )
    return np.concatenate(parts)


def _embed(model: Estimator, X: np.ndarray) -> np.ndarray:
    """A model's pre-prediction representation of ``X``.

    MLPs expose their penultimate layer; linear models contribute their
    decision function (a 1-D embedding); anything else falls back to
    its output probability.
    """
    if isinstance(model, MLPClassifier):
        return model.hidden(X)
    if isinstance(model, LogisticRegression):
        return model.decision_function(X)[:, None]
    return model.predict_proba(X)[:, None]


class EarlyFusion:
    """Single model over the row-concatenation of all modality tables."""

    def __init__(self, model_factory: ModelFactory, max_vocab: int = 512) -> None:
        self.model_factory = model_factory
        self.max_vocab = max_vocab
        self.vectorizer_: Vectorizer | None = None
        self.model_: Estimator | None = None

    def fit(
        self,
        tables: Sequence[FeatureTable],
        targets: Sequence[np.ndarray],
        sample_weights: Sequence[np.ndarray | None] | None = None,
    ) -> "EarlyFusion":
        weights = _check_alignment(tables, targets, sample_weights)
        joint = reduce(lambda a, b: a.concat(b), tables)
        self.vectorizer_ = Vectorizer(joint.schema, max_vocab=self.max_vocab).fit(joint)
        X = self.vectorizer_.transform(joint)
        y = np.concatenate([np.asarray(t, dtype=float) for t in targets])
        w = _concat_weights(tables, weights)
        self.model_ = self.model_factory()
        self.model_.fit(X, y, sample_weight=w)
        return self

    def predict_proba(self, table: FeatureTable) -> np.ndarray:
        if self.vectorizer_ is None or self.model_ is None:
            raise NotFittedError("EarlyFusion.fit has not been called")
        return self.model_.predict_proba(self.vectorizer_.transform(table))


class IntermediateFusion:
    """Per-modality models -> concatenated embeddings -> joint head."""

    def __init__(
        self,
        model_factory: ModelFactory,
        head_factory: ModelFactory | None = None,
        max_vocab: int = 512,
    ) -> None:
        self.model_factory = model_factory
        self.head_factory = head_factory or model_factory
        self.max_vocab = max_vocab
        self.vectorizers_: list[Vectorizer] | None = None
        self.models_: list[Estimator] | None = None
        self.head_: Estimator | None = None

    def fit(
        self,
        tables: Sequence[FeatureTable],
        targets: Sequence[np.ndarray],
        sample_weights: Sequence[np.ndarray | None] | None = None,
    ) -> "IntermediateFusion":
        weights = _check_alignment(tables, targets, sample_weights)

        # First pass: independent model per modality table.
        vectorizers: list[Vectorizer] = []
        models: list[Estimator] = []
        for table, y, w in zip(tables, targets, weights):
            vec = Vectorizer(table.schema, max_vocab=self.max_vocab).fit(table)
            model = self.model_factory()
            model.fit(
                vec.transform(table),
                np.asarray(y, dtype=float),
                sample_weight=w,
            )
            vectorizers.append(vec)
            models.append(model)

        # Second pass: every point flows through every modality model
        # (shared features route through; modality-specific ones vanish).
        joint = reduce(lambda a, b: a.concat(b), tables)
        embedding = self._joint_embedding(joint, vectorizers, models)
        y_all = np.concatenate([np.asarray(t, dtype=float) for t in targets])
        w_all = _concat_weights(tables, weights)
        head = self.head_factory()
        head.fit(embedding, y_all, sample_weight=w_all)

        self.vectorizers_ = vectorizers
        self.models_ = models
        self.head_ = head
        return self

    @staticmethod
    def _joint_embedding(
        table: FeatureTable,
        vectorizers: list[Vectorizer],
        models: list[Estimator],
    ) -> np.ndarray:
        blocks = [
            _embed(model, vec.transform(table))
            for vec, model in zip(vectorizers, models)
        ]
        return np.hstack(blocks)

    def predict_proba(self, table: FeatureTable) -> np.ndarray:
        if self.vectorizers_ is None or self.models_ is None or self.head_ is None:
            raise NotFittedError("IntermediateFusion.fit has not been called")
        embedding = self._joint_embedding(table, self.vectorizers_, self.models_)
        return self.head_.predict_proba(embedding)


class DeViSE:
    """Frozen old-modality model + projected new-modality embedding."""

    def __init__(
        self,
        model_factory: Callable[[], MLPClassifier],
        ridge: float = 1e-2,
        max_vocab: int = 512,
    ) -> None:
        self.model_factory = model_factory
        self.ridge = ridge
        self.max_vocab = max_vocab
        self.vectorizer_a_: Vectorizer | None = None
        self.vectorizer_b_: Vectorizer | None = None
        self.model_a_: MLPClassifier | None = None
        self.model_b_: MLPClassifier | None = None
        self.projection_: np.ndarray | None = None

    def fit(
        self,
        old_tables: Sequence[FeatureTable],
        old_targets: Sequence[np.ndarray],
        new_table: FeatureTable,
        new_targets: np.ndarray,
        old_weights: Sequence[np.ndarray | None] | None = None,
        new_weight: np.ndarray | None = None,
    ) -> "DeViSE":
        weights = _check_alignment(old_tables, old_targets, old_weights)

        # Stage 1: model A over the existing modalities; then frozen.
        joint_old = reduce(lambda a, b: a.concat(b), old_tables)
        vec_a = Vectorizer(joint_old.schema, max_vocab=self.max_vocab).fit(joint_old)
        model_a = self.model_factory()
        model_a.fit(
            vec_a.transform(joint_old),
            np.concatenate([np.asarray(t, dtype=float) for t in old_targets]),
            sample_weight=_concat_weights(old_tables, weights),
        )

        # Stage 2: pre-train model B on the weakly-supervised new
        # modality.
        vec_b = Vectorizer(new_table.schema, max_vocab=self.max_vocab).fit(new_table)
        model_b = self.model_factory()
        model_b.fit(
            vec_b.transform(new_table),
            np.asarray(new_targets, dtype=float),
            sample_weight=new_weight,
        )

        # Stage 3: projection layer P matching Y = hidden_B(x) to
        # X = hidden_A(shared features of x); ridge least squares.
        H_b = model_b.hidden(vec_b.transform(new_table))
        H_a = model_a.hidden(vec_a.transform(new_table))
        gram = H_b.T @ H_b + self.ridge * np.eye(H_b.shape[1])
        self.projection_ = np.linalg.solve(gram, H_b.T @ H_a)

        self.vectorizer_a_ = vec_a
        self.vectorizer_b_ = vec_b
        self.model_a_ = model_a
        self.model_b_ = model_b
        return self

    def predict_proba(self, table: FeatureTable) -> np.ndarray:
        if (
            self.model_a_ is None
            or self.model_b_ is None
            or self.projection_ is None
            or self.vectorizer_b_ is None
        ):
            raise NotFittedError("DeViSE.fit has not been called")
        H_b = self.model_b_.hidden(self.vectorizer_b_.transform(table))
        projected = H_b @ self.projection_
        return self.model_a_.head(projected)
