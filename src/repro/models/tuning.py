"""Vizier-like black-box hyper-parameter search.

The paper tunes its TFX models with Google Vizier [Golovin et al.
2017], a black-box optimization service.  Random search over a declared
parameter space is its simplest member and is what we ship: trials are
drawn deterministically from a seed, each trial's model is trained on
the training split and scored on the validation split, and the best
configuration (and its fitted model) are kept.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.core.rng import make_rng
from repro.models.base import Estimator
from repro.models.metrics import auprc

__all__ = ["RandomSearchTuner", "TrialResult"]


@dataclass(frozen=True)
class TrialResult:
    """One evaluated configuration."""

    params: dict[str, Any]
    score: float


@dataclass
class RandomSearchTuner:
    """Random search maximizing validation AUPRC (or a custom metric).

    Parameters
    ----------
    model_factory:
        Callable taking keyword parameters and returning an unfitted
        estimator.
    param_space:
        Mapping of parameter name to the list of candidate values.
    n_trials:
        Number of random configurations to evaluate.
    metric:
        ``(scores, labels) -> float`` to maximize; defaults to AUPRC.
    """

    model_factory: Callable[..., Estimator]
    param_space: Mapping[str, Sequence[Any]]
    n_trials: int = 10
    metric: Callable[[np.ndarray, np.ndarray], float] = auprc
    seed: int = 0
    trials_: list[TrialResult] = field(default_factory=list)
    best_params_: dict[str, Any] | None = None
    best_model_: Estimator | None = None
    best_score_: float = -np.inf

    def _sample_params(self, rng: np.random.Generator) -> dict[str, Any]:
        return {
            name: values[int(rng.integers(len(values)))]
            for name, values in self.param_space.items()
        }

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomSearchTuner":
        if self.n_trials < 1:
            raise ConfigurationError("n_trials must be >= 1")
        if not self.param_space:
            raise ConfigurationError("param_space must not be empty")
        rng = make_rng(self.seed)
        seen: set[tuple] = set()
        self.trials_ = []
        for _ in range(self.n_trials):
            params = self._sample_params(rng)
            key = tuple(sorted((k, repr(v)) for k, v in params.items()))
            if key in seen:
                continue
            seen.add(key)
            model = self.model_factory(**params)
            model.fit(X_train, y_train, sample_weight=sample_weight)
            score = float(self.metric(model.predict_proba(X_val), y_val))
            self.trials_.append(TrialResult(params=params, score=score))
            if score > self.best_score_:
                self.best_score_ = score
                self.best_params_ = params
                self.best_model_ = model
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.best_model_ is None:
            raise NotFittedError("RandomSearchTuner.fit has not been called")
        return self.best_model_.predict_proba(X)
