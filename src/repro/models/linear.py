"""Logistic regression trained with Adam on noise-aware cross-entropy.

One of the two model classes the paper's TFX pipelines support; CT 5 in
the case study ships logistic regression "due to improved performance".
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import NotFittedError
from repro.core.rng import make_rng
from repro.models.base import bce_loss, sigmoid, validate_training_inputs

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Accepts soft targets in [0, 1] (probabilistic labels) and per-sample
    weights.  Full-batch Adam keeps the optimizer identical in kind to
    the MLP's while staying robust on small datasets.
    """

    def __init__(
        self,
        l2: float = 1e-4,
        learning_rate: float = 0.05,
        n_epochs: int = 300,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        self.l2 = l2
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.tol = tol
        self.seed = seed
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.loss_history_: list[float] = []

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        X, y, w = validate_training_inputs(X, y, sample_weight)
        n, d = X.shape
        rng = make_rng(self.seed)
        theta = rng.normal(0.0, 0.01, size=d + 1)
        m = np.zeros_like(theta)
        v = np.zeros_like(theta)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        w_norm = w / max(w.sum(), 1e-12)

        self.loss_history_ = []
        prev_loss = np.inf
        for t in range(1, self.n_epochs + 1):
            z = X @ theta[:-1] + theta[-1]
            p = sigmoid(z)
            residual = (p - y) * w_norm
            grad = np.empty_like(theta)
            grad[:-1] = X.T @ residual + self.l2 * theta[:-1]
            grad[-1] = residual.sum()
            m = beta1 * m + (1 - beta1) * grad
            v = beta2 * v + (1 - beta2) * grad**2
            m_hat = m / (1 - beta1**t)
            v_hat = v / (1 - beta2**t)
            theta -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

            loss = bce_loss(p, y, w) + 0.5 * self.l2 * float(theta[:-1] @ theta[:-1])
            self.loss_history_.append(loss)
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss

        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("LogisticRegression.fit has not been called")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) > threshold).astype(np.int64)
