"""Fully-connected neural network classifier (NumPy, Adam, minibatch).

The paper's TFX pipelines use "fully-connected deep neural networks";
CT 1–4 ship the neural model.  Beyond the :class:`Estimator` interface
the MLP exposes its penultimate representation (:meth:`hidden`) and the
final prediction layer (:meth:`head`), which intermediate fusion and
DeViSE need (both remove "the final prediction layer (e.g., softmax)"
and operate on the embedding beneath it).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.core.rng import make_rng
from repro.models.base import bce_loss, sigmoid, validate_training_inputs

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Binary MLP with ReLU hidden layers and a sigmoid output.

    Parameters
    ----------
    hidden_sizes:
        Sizes of hidden layers; the last entry is the embedding width
        exposed by :meth:`hidden`.
    n_epochs, batch_size, learning_rate, l2:
        Adam minibatch training controls.
    early_stopping_fraction / patience:
        When the fraction is > 0, that share of the training data is
        held out and training stops after ``patience`` epochs without
        validation-loss improvement (weights roll back to the best
        epoch).
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (64, 32),
        n_epochs: int = 60,
        batch_size: int = 256,
        learning_rate: float = 1e-3,
        l2: float = 1e-5,
        early_stopping_fraction: float = 0.1,
        patience: int = 8,
        seed: int = 0,
    ) -> None:
        if not hidden_sizes:
            raise ConfigurationError("MLP requires at least one hidden layer")
        if any(h <= 0 for h in hidden_sizes):
            raise ConfigurationError("hidden layer sizes must be positive")
        if not 0.0 <= early_stopping_fraction < 0.5:
            raise ConfigurationError(
                "early_stopping_fraction must be in [0, 0.5)"
            )
        self.hidden_sizes = tuple(hidden_sizes)
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.early_stopping_fraction = early_stopping_fraction
        self.patience = patience
        self.seed = seed
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self.loss_history_: list[float] = []
        self.val_loss_history_: list[float] = []

    # ------------------------------------------------------------------
    # forward pass
    # ------------------------------------------------------------------
    def _forward(
        self, X: np.ndarray, weights: list[np.ndarray], biases: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Activations per layer; the last entry is P(y=1)."""
        activations = [X]
        a = X
        n_layers = len(weights)
        for i, (W, b) in enumerate(zip(weights, biases)):
            z = a @ W + b
            a = sigmoid(z) if i == n_layers - 1 else np.maximum(z, 0.0)
            activations.append(a)
        return activations

    def _init_params(
        self, d_in: int, rng: np.random.Generator
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        sizes = [d_in, *self.hidden_sizes, 1]
        weights = []
        biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))
        return weights, biases

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "MLPClassifier":
        X, y, w = validate_training_inputs(X, y, sample_weight)
        rng = make_rng(self.seed)
        n = len(y)

        if self.early_stopping_fraction > 0 and n >= 50:
            n_val = max(int(self.early_stopping_fraction * n), 1)
            perm = rng.permutation(n)
            val_idx, train_idx = perm[:n_val], perm[n_val:]
            X_val, y_val, w_val = X[val_idx], y[val_idx], w[val_idx]
            X, y, w = X[train_idx], y[train_idx], w[train_idx]
            n = len(y)
        else:
            X_val = y_val = w_val = None

        weights, biases = self._init_params(X.shape[1], rng)
        params = weights + biases
        m_state = [np.zeros_like(p) for p in params]
        v_state = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        best_val = np.inf
        best_params: list[np.ndarray] | None = None
        stale = 0
        self.loss_history_ = []
        self.val_loss_history_ = []

        for _ in range(self.n_epochs):
            perm = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = perm[start:start + self.batch_size]
                Xb, yb, wb = X[idx], y[idx], w[idx]
                activations = self._forward(Xb, weights, biases)
                proba = activations[-1].ravel()
                wb_norm = wb / max(wb.sum(), 1e-12)
                epoch_loss += bce_loss(proba, yb, wb) * len(idx)

                # backprop: d(loss)/d(z_out) = (p - y) for BCE+sigmoid
                delta = ((proba - yb) * wb_norm)[:, None]
                grads_w: list[np.ndarray] = []
                grads_b: list[np.ndarray] = []
                for layer in range(len(weights) - 1, -1, -1):
                    a_prev = activations[layer]
                    grads_w.append(a_prev.T @ delta + self.l2 * weights[layer])
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ weights[layer].T) * (
                            activations[layer] > 0
                        )
                grads = list(reversed(grads_w)) + list(reversed(grads_b))

                step += 1
                for p, g, m_s, v_s in zip(params, grads, m_state, v_state):
                    m_s *= beta1
                    m_s += (1 - beta1) * g
                    v_s *= beta2
                    v_s += (1 - beta2) * g**2
                    m_hat = m_s / (1 - beta1**step)
                    v_hat = v_s / (1 - beta2**step)
                    p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

            self.loss_history_.append(epoch_loss / n)
            if X_val is not None:
                val_proba = self._forward(X_val, weights, biases)[-1].ravel()
                val_loss = bce_loss(val_proba, y_val, w_val)
                self.val_loss_history_.append(val_loss)
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    best_params = [p.copy() for p in params]
                    stale = 0
                else:
                    stale += 1
                    if stale >= self.patience:
                        break

        if best_params is not None:
            k = len(weights)
            weights = best_params[:k]
            biases = best_params[k:]
        self.weights_ = weights
        self.biases_ = biases
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _require_fitted(self) -> tuple[list[np.ndarray], list[np.ndarray]]:
        if self.weights_ is None or self.biases_ is None:
            raise NotFittedError("MLPClassifier.fit has not been called")
        return self.weights_, self.biases_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        weights, biases = self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        return self._forward(X, weights, biases)[-1].ravel()

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) > threshold).astype(np.int64)

    def hidden(self, X: np.ndarray) -> np.ndarray:
        """Penultimate activations — the model's learned embedding (the
        output "prior to the final prediction layer")."""
        weights, biases = self._require_fitted()
        X = np.asarray(X, dtype=np.float64)
        return self._forward(X, weights, biases)[-2]

    def head(self, H: np.ndarray) -> np.ndarray:
        """Final prediction layer applied to an embedding ``H``."""
        weights, biases = self._require_fitted()
        H = np.asarray(H, dtype=np.float64)
        return sigmoid(H @ weights[-1] + biases[-1]).ravel()

    @property
    def embedding_dim(self) -> int:
        return self.hidden_sizes[-1]
