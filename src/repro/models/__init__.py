"""Discriminative models and multi-modal training (paper §5).

NumPy implementations of the two model families the paper's TFX
pipelines support — logistic regression and fully-connected deep neural
networks — trained with a noise-aware cross-entropy over probabilistic
labels, plus the three cross-modal fusion strategies the paper
evaluates (early fusion, intermediate fusion, DeViSE) and a Vizier-like
random-search hyper-parameter tuner.
"""

from repro.models.base import Estimator
from repro.models.linear import LogisticRegression
from repro.models.mlp import MLPClassifier
from repro.models.metrics import (
    auprc,
    f1_score,
    pr_curve,
    precision_recall_at,
    relative_auprc,
)
from repro.models.fusion import DeViSE, EarlyFusion, IntermediateFusion
from repro.models.tuning import RandomSearchTuner

__all__ = [
    "DeViSE",
    "EarlyFusion",
    "Estimator",
    "IntermediateFusion",
    "LogisticRegression",
    "MLPClassifier",
    "RandomSearchTuner",
    "auprc",
    "f1_score",
    "pr_curve",
    "precision_recall_at",
    "relative_auprc",
]
