"""Estimator protocol and shared training utilities.

All models accept *soft* targets in [0, 1] — probabilistic labels from
the generative label model train through the same noise-aware binary
cross-entropy as hard labels ("modified to train with probabilistic
labels using a cross-entropy loss function", §6.3).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = ["Estimator", "validate_training_inputs", "sigmoid", "bce_loss"]


@runtime_checkable
class Estimator(Protocol):
    """Minimal interface every discriminative model implements."""

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "Estimator":
        """Train on features ``X`` and (possibly soft) targets ``y``."""
        ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) per row."""
        ...


def validate_training_inputs(
    X: np.ndarray,
    y: np.ndarray,
    sample_weight: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Check shapes/ranges and normalize dtypes for training."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if X.ndim != 2:
        raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
    if len(y) != X.shape[0]:
        raise ConfigurationError(
            f"X has {X.shape[0]} rows but y has {len(y)} targets"
        )
    if len(y) == 0:
        raise ConfigurationError("cannot fit on an empty dataset")
    if y.min() < 0.0 or y.max() > 1.0:
        raise ConfigurationError("targets must lie in [0, 1]")
    if sample_weight is None:
        sample_weight = np.ones_like(y)
    else:
        sample_weight = np.asarray(sample_weight, dtype=np.float64).ravel()
        if len(sample_weight) != len(y):
            raise ConfigurationError("sample_weight must align with y")
        if (sample_weight < 0).any():
            raise ConfigurationError("sample weights must be non-negative")
    return X, y, sample_weight


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))


def bce_loss(
    proba: np.ndarray, targets: np.ndarray, sample_weight: np.ndarray
) -> float:
    """Weighted binary cross-entropy with soft targets."""
    eps = 1e-9
    p = np.clip(proba, eps, 1.0 - eps)
    losses = -(targets * np.log(p) + (1.0 - targets) * np.log(1.0 - p))
    total_weight = sample_weight.sum()
    if total_weight <= 0:
        return 0.0
    return float((losses * sample_weight).sum() / total_weight)
