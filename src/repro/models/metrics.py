"""Classification metrics: AUPRC (the paper's headline metric), PR
curves, and thresholded precision / recall / F1.

The paper evaluates with the area under the precision-recall curve
"over the labeled image test set", reported *relative to* a baseline
fully-supervised image model trained only on pretrained embeddings;
:func:`relative_auprc` implements that normalization.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError

__all__ = [
    "auprc",
    "pr_curve",
    "precision_recall_at",
    "f1_score",
    "relative_auprc",
]


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=float).ravel()
    labels = np.asarray(labels, dtype=int).ravel()
    if scores.shape != labels.shape:
        raise ConfigurationError(
            f"scores and labels have mismatched shapes {scores.shape} vs {labels.shape}"
        )
    if len(scores) == 0:
        raise ConfigurationError("metrics require at least one example")
    if not np.isin(labels, (0, 1)).all():
        raise ConfigurationError("labels must be binary 0/1")
    return scores, labels


def pr_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns (precision, recall, thresholds), ordered from the highest
    threshold (low recall) to the lowest (recall 1).
    """
    scores, labels = _validate(scores, labels)
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise ConfigurationError("pr_curve requires at least one positive label")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    predicted = np.arange(1, len(labels) + 1)
    precision = tp / predicted
    recall = tp / n_pos
    # collapse ties: keep the last index of each distinct score
    distinct = np.flatnonzero(np.diff(sorted_scores, append=-np.inf))
    return precision[distinct], recall[distinct], sorted_scores[distinct]


def auprc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the precision-recall curve (average precision).

    Computed as the step-wise integral sum_k (R_k - R_{k-1}) * P_k over
    distinct thresholds — the standard average-precision estimator.
    """
    precision, recall, _ = pr_curve(scores, labels)
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


def precision_recall_at(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> tuple[float, float]:
    """(precision, recall) of the ``score > threshold`` classifier."""
    scores, labels = _validate(scores, labels)
    predicted = scores > threshold
    tp = float((predicted & (labels == 1)).sum())
    fp = float((predicted & (labels == 0)).sum())
    fn = float((~predicted & (labels == 1)).sum())
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    return precision, recall


def f1_score(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> float:
    """F1 of the ``score > threshold`` classifier."""
    precision, recall = precision_recall_at(scores, labels, threshold)
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def relative_auprc(
    scores: np.ndarray, labels: np.ndarray, baseline_auprc: float
) -> float:
    """AUPRC relative to a baseline model's AUPRC (the paper's unit)."""
    if baseline_auprc <= 0:
        raise ConfigurationError(
            f"baseline AUPRC must be positive, got {baseline_auprc}"
        )
    return auprc(scores, labels) / baseline_auprc
