"""Seeded randomness helpers.

Every stochastic code path in the package draws from a
:class:`numpy.random.Generator` created here, so experiments are
bit-for-bit reproducible given a seed.  Child generators are derived with
:func:`spawn`, which folds a string tag into the parent seed sequence so
that adding a new consumer of randomness does not perturb existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an ``int`` seed, an existing generator (returned unchanged),
    or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: int, tag: str) -> int:
    """Deterministically derive a child seed from ``seed`` and ``tag``.

    Uses CRC32 of the tag so that distinct tags give independent streams
    and the mapping is stable across runs and platforms.
    """
    return (int(seed) * 1_000_003 + zlib.crc32(tag.encode("utf-8"))) % (2**63)


def spawn(seed: int, tag: str) -> np.random.Generator:
    """Return a generator seeded from ``derive_seed(seed, tag)``."""
    return np.random.default_rng(derive_seed(seed, tag))
