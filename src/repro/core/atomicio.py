"""Atomic, durable file writes and content hashing.

Crash-safe persistence (feature-table artifacts, run manifests,
partition checkpoints) requires that a reader never observes a
half-written file.  The standard recipe: write to a temporary file in
the *same directory* as the destination, ``fsync`` the file, atomically
``rename`` it over the destination, then ``fsync`` the directory so the
rename itself survives a power loss.  POSIX guarantees the rename is
all-or-nothing, so any observer sees either the old content or the new
content — never a truncated hybrid.

Content hashes (SHA-256) are the integrity primitive: artifact stores
name files by their hash and verify it on read, turning silent
corruption into a detectable, quarantinable event.

A process-wide *fault layer* (see :mod:`repro.runs.faultfs`) can be
installed with :func:`set_fault_layer` to inject storage failures into
every atomic write — I/O errors, fsync failures, silent post-write
corruption, and torn directory entries — so the self-healing machinery
above this module is testable against real fault shapes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Protocol

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_dir",
    "sha256_hex",
    "canonical_json",
    "FaultLayer",
    "set_fault_layer",
    "fault_layer",
]


class FaultLayer(Protocol):
    """Injection interface consulted by :func:`atomic_write_bytes`."""

    def on_write(self, path: Path, data: bytes) -> tuple[bytes, bool]:
        """Called before the write.  May raise :class:`OSError` (EIO /
        ENOSPC); returns the bytes to actually persist (possibly
        corrupted) and whether the final rename should happen (``False``
        simulates a torn directory entry: payload durable, name lost).
        """

    def on_fsync(self, path: Path) -> None:
        """Called before the data fsync.  May raise :class:`OSError`."""


_fault_layer: FaultLayer | None = None


def set_fault_layer(layer: FaultLayer | None) -> FaultLayer | None:
    """Install (or clear, with ``None``) the process-wide fault layer.

    Returns the previously installed layer so callers can restore it.
    """
    global _fault_layer
    previous = _fault_layer
    _fault_layer = layer
    return previous


def fault_layer() -> FaultLayer | None:
    """The currently installed fault layer, if any."""
    return _fault_layer


def sha256_hex(data: bytes) -> str:
    """SHA-256 hex digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift).

    Two structurally equal objects always encode to the same bytes, so
    the encoding is safe to fingerprint with :func:`sha256_hex`.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fsync_dir(path: Path) -> None:
    """Flush a directory's metadata (namely, a just-completed rename).

    Platforms that cannot open directories (e.g. Windows) skip silently;
    the rename is still atomic there, just not power-loss durable.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    A crash at any point leaves either the previous file intact or no
    file — never a truncated one.  Returns the destination path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    layer = _fault_layer
    rename = True
    if layer is not None:
        # may raise OSError (injected EIO/ENOSPC) or hand back silently
        # corrupted bytes / a dropped rename — the store's read-side
        # hash verification and the repair layer must cope with both
        data, rename = layer.on_write(path, data)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if layer is not None:
                layer.on_fsync(path)
            os.fsync(handle.fileno())
        if rename:
            os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    if not rename:
        # torn directory entry: the payload hit disk but its name was
        # lost — observers see no file at all, never a truncated one
        tmp.unlink(missing_ok=True)
        return path
    fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic UTF-8 text write; see :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, obj: object, indent: int | None = None) -> Path:
    """Atomic JSON write; see :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, json.dumps(obj, indent=indent).encode("utf-8")
    )
