"""Atomic, durable file writes and content hashing.

Crash-safe persistence (feature-table artifacts, run manifests,
partition checkpoints) requires that a reader never observes a
half-written file.  The standard recipe: write to a temporary file in
the *same directory* as the destination, ``fsync`` the file, atomically
``rename`` it over the destination, then ``fsync`` the directory so the
rename itself survives a power loss.  POSIX guarantees the rename is
all-or-nothing, so any observer sees either the old content or the new
content — never a truncated hybrid.

Content hashes (SHA-256) are the integrity primitive: artifact stores
name files by their hash and verify it on read, turning silent
corruption into a detectable, quarantinable event.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = [
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_dir",
    "sha256_hex",
    "canonical_json",
]


def sha256_hex(data: bytes) -> str:
    """SHA-256 hex digest of ``data``."""
    return hashlib.sha256(data).hexdigest()


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift).

    Two structurally equal objects always encode to the same bytes, so
    the encoding is safe to fingerprint with :func:`sha256_hex`.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def fsync_dir(path: Path) -> None:
    """Flush a directory's metadata (namely, a just-completed rename).

    Platforms that cannot open directories (e.g. Windows) skip silently;
    the rename is still atomic there, just not power-loss durable.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp + fsync + rename).

    A crash at any point leaves either the previous file intact or no
    file — never a truncated one.  Returns the destination path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic UTF-8 text write; see :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, obj: object, indent: int | None = None) -> Path:
    """Atomic JSON write; see :func:`atomic_write_bytes`."""
    return atomic_write_bytes(
        path, json.dumps(obj, indent=indent).encode("utf-8")
    )
