"""Pipeline orchestration: configs, split-architecture steps, and the
end-to-end :class:`~repro.core.pipeline.CrossModalPipeline`."""

from repro.core.config import CurationConfig, PipelineConfig, TrainingConfig
from repro.core.pipeline import CrossModalPipeline, CurationResult, PipelineResult

__all__ = [
    "CrossModalPipeline",
    "CurationConfig",
    "CurationResult",
    "PipelineConfig",
    "PipelineResult",
    "TrainingConfig",
]
