"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SchemaError(ReproError):
    """A feature schema was violated (unknown feature, kind mismatch, ...)."""


class ModalityError(ReproError):
    """A resource or pipeline step was applied to an unsupported modality."""


class NotFittedError(ReproError):
    """A model or transformer was used before ``fit`` was called."""


class LabelingError(ReproError):
    """A labeling function or label model produced invalid output."""


class MiningError(ReproError):
    """Frequent-itemset mining was given invalid parameters or data."""


class GraphError(ReproError):
    """A similarity graph could not be constructed or is malformed."""


class ResourceError(ReproError):
    """An organizational resource failed or was misconfigured."""


class ServiceError(ResourceError):
    """A (simulated) remote service call to a resource failed.

    Subclasses split the space the resilience layer cares about:
    :class:`TransientServiceError` calls are worth retrying,
    :class:`ServiceUnavailableError` calls are not.
    """


class TransientServiceError(ServiceError):
    """A retryable failure: the same call may succeed if repeated."""


class ServiceTimeoutError(TransientServiceError):
    """The simulated call latency exceeded the caller's budget."""


class RateLimitError(TransientServiceError):
    """The service shed load (quota/QPS exceeded); retry after backoff."""


class ServiceUnavailableError(ServiceError):
    """A non-retryable failure: the service is down for this call."""


class CircuitOpenError(ServiceUnavailableError):
    """A circuit breaker short-circuited the call without dialing out."""


class DeadlineExceeded(ServiceError):
    """A call's deadline budget ran out before it could complete.

    Raised by the retry layer when the next backoff sleep would overrun
    the remaining :class:`~repro.resilience.deadline.Deadline` budget
    (the sleep is capped at the budget, then this fires).  Deliberately
    *not* a :class:`TransientServiceError`: an exhausted deadline must
    never be retried — it degrades through the fallback chain instead.
    """


class ExecutorError(ReproError):
    """An execution backend could not run a task set (unpicklable task,
    broken worker pool, ...)."""


class CheckpointError(ReproError):
    """A run checkpoint could not be written, read, or reconstructed."""


class IntegrityError(CheckpointError):
    """A persisted artifact failed verification (content-hash mismatch,
    truncated or malformed document, or format-version skew).

    Raised *instead of* silently recomputing: a corrupt artifact means
    the store can no longer vouch for the run's history, so the bad
    file is quarantined and either an auto-repair layer rebuilds it
    from lineage (``repro.runs.repair``) or the operator decides what
    to do (``python -m repro.experiments scrub --repair``).
    """

    def __init__(self, message: str, quarantined: object = None):
        super().__init__(message)
        #: path the corrupt artifact was moved to, when applicable
        self.quarantined = quarantined

    def __reduce__(self):
        # default Exception pickling replays args only; keep the
        # quarantine path when the error crosses a process boundary
        return (type(self), (self.args[0] if self.args else "", self.quarantined))


class ArtifactMissingError(CheckpointError):
    """An artifact referenced by a run manifest is absent from the store.

    The same repair path as corruption applies: the reference's content
    hash still identifies the exact bytes, so the producing stage can be
    replayed from its lineage and the rebuilt bytes verified against the
    original hash (``scrub --repair`` or an auto-repairing reader).
    """

    def __init__(self, message: str, ref: object = None):
        super().__init__(message)
        #: the dangling :class:`~repro.runs.store.ArtifactRef`
        self.ref = ref

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.ref))


class RepairError(CheckpointError):
    """Lineage-driven artifact repair could not restore the original bytes.

    Raised when the damaged artifact has no producing stage in the
    manifest (orphan), a lineage input cannot itself be restored, the
    stage replay is non-deterministic, or the rebuilt bytes hash
    differently from the recorded reference.  Repair never substitutes
    different bytes: it either restores bit-identical content or fails
    with this error and a lineage report.
    """


class SimulatedCrashError(ReproError):
    """An injected crash fired at a checkpoint boundary (test mode).

    The process-kill injection mode uses ``os._exit``; this exception is
    the in-process equivalent so tests can exercise crash/resume without
    spawning subprocesses.
    """


class RecordError(ReproError):
    """A dataflow record could not be processed.

    Carries the failing record and its input index so a poisoned record
    in a large job can be located without re-running.
    """

    def __init__(self, message: str, record: object = None, index: int | None = None):
        super().__init__(message)
        self.record = record
        self.index = index

    def __reduce__(self):
        # preserve record/index when raised inside a process-pool worker
        return (type(self), (self.args[0] if self.args else "", self.record, self.index))
