"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SchemaError(ReproError):
    """A feature schema was violated (unknown feature, kind mismatch, ...)."""


class ModalityError(ReproError):
    """A resource or pipeline step was applied to an unsupported modality."""


class NotFittedError(ReproError):
    """A model or transformer was used before ``fit`` was called."""


class LabelingError(ReproError):
    """A labeling function or label model produced invalid output."""


class MiningError(ReproError):
    """Frequent-itemset mining was given invalid parameters or data."""


class GraphError(ReproError):
    """A similarity graph could not be constructed or is malformed."""


class ResourceError(ReproError):
    """An organizational resource failed or was misconfigured."""
