"""Pipeline configuration.

The configuration mirrors the experimental axes of the paper's §6:
which service sets feed the deployed (servable) model vs the offline
labeling functions, how training data is curated (mining, propagation,
label model), and how the multi-modal model is trained (fusion strategy
and model family).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.exec import ExecutorConfig

__all__ = ["CurationConfig", "TrainingConfig", "PipelineConfig"]

_FUSIONS = ("early", "intermediate", "devise")
_MODELS = ("mlp", "logreg")


@dataclass(frozen=True)
class CurationConfig:
    """Training-data curation knobs (paper §4)."""

    #: mine LFs automatically from the old-modality dev set
    use_mined_lfs: bool = True
    #: add label-propagation LFs and the nonservable propagation feature
    use_propagation: bool = True
    #: use the streaming (Expander-style) propagation approximation
    streaming_propagation: bool = False
    #: fraction of labeled old-modality data held out as the dev set
    dev_fraction: float = 0.3
    #: cap on propagation seed / dev nodes (graph size control)
    max_seed_nodes: int = 4000
    max_dev_nodes: int = 1500
    #: mining thresholds (precision floor, lift over the base positive
    #: rate, and recall floor per LF)
    min_precision: float = 0.15
    min_lift: float = 3.0
    min_recall: float = 0.005
    max_order: int = 1
    #: propagation-LF dev-precision targets
    propagation_positive_precision: float = 0.7
    propagation_negative_precision: float = 0.995
    #: graph construction: neighbours per node and the Algorithm-1
    #: weight boost for the unstructured image embedding ("we use
    #: features specific to the new modality to construct edges,
    #: including unstructured features such as image embeddings")
    graph_k: int = 20
    graph_embedding_weight: float = 6.0
    #: graph construction backend ("exact", "lsh", "nn-descent"); the
    #: approximate backends change which candidate pairs are considered
    #: (never edge weights), so this knob — unlike the exec backend — is
    #: part of the run fingerprint
    graph_backend: str = "exact"
    #: blend the raw propagation score into the probabilistic labels
    #: with a dev-tuned weight (§4.4: the score "can also be used as a
    #: form of probabilistic label")
    blend_propagation: bool = True
    #: drop points no LF voted on before training (Snorkel practice)
    drop_uncovered: bool = True
    #: use the generative label model (False -> majority vote ablation)
    use_generative_model: bool = True

    def __post_init__(self) -> None:
        if not 0.05 <= self.dev_fraction <= 0.5:
            raise ConfigurationError(
                f"dev_fraction must be in [0.05, 0.5], got {self.dev_fraction}"
            )
        if self.max_order < 1:
            raise ConfigurationError("max_order must be >= 1")
        from repro.propagation.builders import GRAPH_BACKENDS

        if self.graph_backend not in GRAPH_BACKENDS:
            raise ConfigurationError(
                f"unknown graph backend {self.graph_backend!r}; "
                f"available: {sorted(GRAPH_BACKENDS)}"
            )


@dataclass(frozen=True)
class TrainingConfig:
    """Model-training knobs (paper §5)."""

    fusion: str = "early"
    model: str = "mlp"
    hidden_sizes: tuple[int, ...] = (64, 32)
    n_epochs: int = 40
    learning_rate: float = 1e-3
    l2: float = 1e-5
    batch_size: int = 256
    max_vocab: int = 512
    #: run Vizier-like random search instead of the fixed params
    tune: bool = False
    n_tuning_trials: int = 8

    def __post_init__(self) -> None:
        if self.fusion not in _FUSIONS:
            raise ConfigurationError(
                f"fusion must be one of {_FUSIONS}, got {self.fusion!r}"
            )
        if self.model not in _MODELS:
            raise ConfigurationError(
                f"model must be one of {_MODELS}, got {self.model!r}"
            )


@dataclass(frozen=True)
class PipelineConfig:
    """Full pipeline configuration.

    ``model_service_sets`` are the service sets whose *servable*
    features feed the deployed model; ``lf_service_sets`` feed labeling
    functions and label propagation (and may include nonservable
    features).  "T + AB with ABCD LFs" — the paper's Figure 5 (bottom)
    — is ``model_service_sets=("A", "B")``,
    ``lf_service_sets=("A", "B", "C", "D")``.
    """

    model_service_sets: tuple[str, ...] = ("A", "B", "C", "D")
    lf_service_sets: tuple[str, ...] = ("A", "B", "C", "D")
    #: include image-specific features (embeddings) in the image model
    include_image_features: bool = True
    curation: CurationConfig = field(default_factory=CurationConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int = 0
    n_threads: int = 1
    #: execution backend for the parallel stages (featurize, LF
    #: application, graph build); the default serial/1-worker config
    #: defers to the legacy ``n_threads`` knob
    executor: ExecutorConfig = field(default_factory=ExecutorConfig)
    #: rows per shard for the out-of-core featurize path
    #: (:mod:`repro.shards`); ``None`` keeps tables fully in memory.
    #: Requires a checkpointed run (shards live in its artifact store);
    #: values are bit-identical either way.
    shard_size: int | None = None

    def __post_init__(self) -> None:
        if not self.model_service_sets:
            raise ConfigurationError("model_service_sets must not be empty")
        if not self.lf_service_sets:
            raise ConfigurationError("lf_service_sets must not be empty")
        if self.shard_size is not None and self.shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be a positive row count or None, "
                f"got {self.shard_size}"
            )

    def effective_executor(self) -> ExecutorConfig:
        """The executor the pipeline actually runs with.

        An explicitly configured backend wins; the default config plus
        ``n_threads > 1`` keeps the pre-executor behaviour (a thread
        pool of ``n_threads`` workers).
        """
        if self.executor != ExecutorConfig():
            return self.executor
        if self.n_threads > 1:
            return ExecutorConfig(backend="thread", workers=self.n_threads)
        return self.executor
