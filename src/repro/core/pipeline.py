"""The end-to-end cross-modal adaptation pipeline (paper Figure 3).

Three split-architecture steps with well-defined artifacts between them:

A. **Feature generation** — apply the organizational-resource catalog to
   every corpus, producing row-aligned feature tables in the common
   feature space.
B. **Training-data curation** — mine LFs from a labeled old-modality
   development split, augment them with label-propagation LFs over a
   cross-modal similarity graph, and denoise the votes into
   probabilistic labels with the generative label model.
C. **Model training** — train a multi-modal model (early / intermediate
   fusion or DeViSE) over the fully-supervised old modality and the
   weakly-supervised new modality, using only servable features.

Each step is a public method so team members can enter and exit the
pipeline at their step (the paper's production requirement §2.3);
:meth:`CrossModalPipeline.run` chains them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

import repro.obs as obs
from repro.core.config import PipelineConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import Executor
    from repro.resilience.policy import ResiliencePolicy
    from repro.runs.checkpoint import RunCheckpointer
    from repro.runs.manifest import RunManifest
    from repro.runs.store import RunStore
from repro.core.exceptions import ConfigurationError, RepairError
from repro.core.rng import derive_seed, spawn
from repro.exec import ExecutorConfig
from repro.datagen.corpus import Corpus, CorpusSplits
from repro.datagen.entities import Modality
from repro.datagen.world import TaskRuntime, World
from repro.features.schema import FeatureSchema
from repro.features.table import FeatureTable
from repro.labeling.analysis import WeakLabelQuality, weak_label_quality
from repro.labeling.label_model import GenerativeLabelModel, conditional_table
from repro.labeling.lf import LabelingFunction
from repro.labeling.majority import MajorityVoter
from repro.labeling.matrix import LabelMatrix, apply_lfs
from repro.mining.lf_generator import MinedLFGenerator
from repro.models.fusion import DeViSE, EarlyFusion, IntermediateFusion
from repro.models.linear import LogisticRegression
from repro.models.metrics import auprc, f1_score
from repro.models.mlp import MLPClassifier
from repro.propagation.graph import GraphConfig, build_knn_graph
from repro.propagation.lf_adapter import (
    PROPAGATION_FEATURE,
    propagation_feature_spec,
    propagation_lfs,
)
from repro.propagation.propagate import LabelPropagation
from repro.propagation.streaming import StreamingLabelPropagation
from repro.resources.catalog import ResourceCatalog
from repro.resources.featurize import featurize_corpus
from repro.resources.service_sets import IMAGE_SET

__all__ = ["CrossModalPipeline", "CurationResult", "PipelineResult"]


# ----------------------------------------------------------------------
# stage codecs (shared by checkpointed runs and lineage repair)
#
# A repaired artifact must hash bit-identically to the original, so the
# checkpoint path and the offline replay path must encode through the
# exact same functions.  Imports are lazy: repro.runs.codecs imports
# this module for CurationResult.
# ----------------------------------------------------------------------
def _encode_feature_tables(tables: dict[str, FeatureTable]) -> dict:
    from repro.features.io import table_to_dict

    return {
        key: ("feature_table", table_to_dict(table)) for key, table in tables.items()
    }


def _decode_feature_tables(payloads: dict) -> dict[str, FeatureTable]:
    from repro.features.io import table_from_dict

    return {key: table_from_dict(data) for key, data in payloads.items()}


def _encode_sharded_tables(tables: dict) -> dict:
    """Checkpoint encoding of a sharded featurize stage.

    Every shard artifact becomes a stage artifact — ``text`` carries the
    manifest (whose hash chains over the shard hashes, so downstream
    fingerprints stay Merkle-pinned), ``text/shard00003`` the rows part
    and ``text/shard00003.dense`` the binary dense part of shard 3.
    Listing the shards individually is what lets ``scrub --repair``
    audit and heal exactly the damaged shard.  Re-reading the payloads
    here is O(corpus) at the stage boundary; the streaming plane
    (:mod:`repro.shards.stages`) never goes through this codec.
    """
    from repro.shards.table import DENSE_KIND, MANIFEST_KIND, ROWS_KIND

    out: dict = {}
    for key, sharded in tables.items():
        out[key] = (MANIFEST_KIND, sharded.manifest)
        for index in range(sharded.n_shards):
            rows_ref, dense_ref = sharded.shard_refs(index)
            out[f"{key}/shard{index:05d}"] = (
                ROWS_KIND,
                sharded.reader.read_json(rows_ref),
            )
            if dense_ref is not None:
                out[f"{key}/shard{index:05d}.dense"] = (
                    DENSE_KIND,
                    sharded.reader.read_bytes(dense_ref),
                )
    return out


def _decode_sharded_tables(payloads: dict, store: "RunStore") -> dict:
    """Rebind manifest payloads to :class:`ShardedTable` handles (the
    per-shard payloads ride along for repair; the handles re-read them
    through the verifying store path on demand)."""
    from repro.shards.table import ShardedTable

    return {
        key: ShardedTable(store, doc)
        for key, doc in payloads.items()
        if "/" not in key
    }


def _encode_curation_stage(curation: "CurationResult") -> dict:
    from repro.runs import codecs

    return {"curation": ("curation_result", codecs.encode_curation(curation))}


def _decode_curation_stage(payloads: dict) -> "CurationResult":
    from repro.runs import codecs

    return codecs.decode_curation(payloads["curation"])


def _encode_train_stage(model: object) -> dict:
    from repro.runs import codecs

    return {"model": ("fusion_model", codecs.encode_model(model))}


def _decode_train_stage(payloads: dict) -> object:
    from repro.runs import codecs

    return codecs.decode_model(payloads["model"])


def _encode_evaluate_stage(pair: tuple) -> dict:
    from repro.runs import codecs

    return {"evaluation": ("evaluation", codecs.encode_evaluation(pair[0], pair[1]))}


def _decode_evaluate_stage(payloads: dict) -> tuple:
    from repro.runs import codecs

    return codecs.decode_evaluation(payloads["evaluation"])


@dataclass
class CurationResult:
    """Artifacts of the training-data curation step."""

    lfs: list[LabelingFunction]
    label_matrix: LabelMatrix
    probabilistic_labels: np.ndarray
    class_balance: float
    dev_quality: WeakLabelQuality | None = None
    propagation_scores: np.ndarray | None = None
    label_model: GenerativeLabelModel | None = None
    image_table_augmented: FeatureTable | None = None
    dev_table_augmented: FeatureTable | None = None

    @property
    def coverage_mask(self) -> np.ndarray:
        """Rows of the new modality with an informative label: at least
        one LF vote, or a blended probabilistic label that moved away
        from the class prior (propagation evidence)."""
        voted = (self.label_matrix.votes != 0).any(axis=1)
        informative = (
            np.abs(self.probabilistic_labels - self.class_balance) > 0.01
        )
        return voted | informative


@dataclass
class PipelineResult:
    """Everything :meth:`CrossModalPipeline.run` produces."""

    metrics: dict[str, float]
    curation: CurationResult
    model: object
    tables: dict[str, FeatureTable] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    test_scores: np.ndarray | None = None
    #: stages replayed from a run checkpoint instead of recomputed
    resumed_stages: list[str] = field(default_factory=list)


class CrossModalPipeline:
    """Cross-modal adaptation over one task and resource catalog."""

    def __init__(
        self,
        world: World,
        task: TaskRuntime,
        catalog: ResourceCatalog,
        config: PipelineConfig | None = None,
        executor: "Executor | None" = None,
        resilience: "ResiliencePolicy | None" = None,
        resilience_context: dict | None = None,
    ) -> None:
        self.world = world
        self.task = task
        self.catalog = catalog
        self.config = config or PipelineConfig()
        self.schema = catalog.schema()
        #: optional policy guarding every featurization service call
        #: (retry/deadline/fallback; multi-tenant runs also route its
        #: dials through a shared governor)
        self.resilience = resilience
        #: fingerprint slice describing the resilience setup — anything
        #: that changes featurized values (fault seeds, availability,
        #: retry budget, deadline) must be here so checkpoints are
        #: never shared across different degradation regimes
        self.resilience_context = resilience_context
        #: resolved execution backend for the parallel stages; a live
        #: injected executor (e.g. a multi-tenant fair-queue lane) wins
        #: over the config
        self.executor = (
            executor if executor is not None else self.config.effective_executor()
        )
        # LF closures capture mined predicates and cannot pickle, so LF
        # application caps out at the thread backend even when the rest
        # of the pipeline runs on processes.
        if self.executor.backend == "process":
            self._lf_executor = ExecutorConfig(
                backend="thread", workers=self.executor.workers
            )
        else:
            self._lf_executor = self.executor

    # ------------------------------------------------------------------
    # step A: feature generation
    # ------------------------------------------------------------------
    def featurize(self, corpus: Corpus, include_labels: bool = False) -> FeatureTable:
        """Apply the full resource catalog to ``corpus``.

        Featurization always uses the full catalog; experiments narrow
        the feature set later by selecting columns, which keeps values
        identical across configurations (per-point, per-resource RNG
        streams).  With a :attr:`resilience` policy, every service call
        is guarded (retry / deadline / fallback) and the table carries a
        degradation report.
        """
        return featurize_corpus(
            corpus,
            list(self.catalog),
            seed=derive_seed(self.config.seed, "featurize"),
            include_labels=include_labels,
            n_threads=self.config.n_threads,
            policy=self.resilience,
            executor=self.executor,
        )

    def featurize_sharded(
        self,
        corpus: Corpus,
        store: "RunStore",
        include_labels: bool = False,
        progress: object | None = None,
        tag: str = "table",
    ):
        """Out-of-core variant of :meth:`featurize` (``shard_size`` set).

        Returns a :class:`~repro.shards.table.ShardedTable` handle over
        content-hashed shard artifacts in ``store``.  Values are
        bit-identical to :meth:`featurize` for every shard size — the
        per-point RNG streams depend only on (seed, point, resource) —
        but peak memory is O(shard) instead of O(corpus).
        """
        from repro.shards import featurize_corpus_sharded

        if self.config.shard_size is None:
            raise ConfigurationError(
                "featurize_sharded requires config.shard_size to be set"
            )
        return featurize_corpus_sharded(
            corpus,
            list(self.catalog),
            store,
            self.config.shard_size,
            seed=derive_seed(self.config.seed, "featurize"),
            include_labels=include_labels,
            n_threads=self.config.n_threads,
            policy=self.resilience,
            executor=self.executor,
            progress=progress,
            tag=tag,
        )

    # ------------------------------------------------------------------
    # feature selection helpers
    # ------------------------------------------------------------------
    def lf_feature_schema(self) -> FeatureSchema:
        """Features LFs / mining / propagation may read (servable and
        nonservable alike — curation is offline)."""
        return self.schema.select(service_sets=self.config.lf_service_sets)

    def model_feature_schema(self, modality: Modality) -> FeatureSchema:
        """Servable features the deployed model may consume."""
        sets = list(self.config.model_service_sets)
        if self.config.include_image_features and modality is not Modality.TEXT:
            sets.append(IMAGE_SET)
        return self.schema.select(
            service_sets=sets, servable_only=True, modality=modality
        )

    def select_model_features(
        self, table: FeatureTable, modality: Modality
    ) -> FeatureTable:
        schema = self.model_feature_schema(modality)
        names = [n for n in schema.names if n in table.schema]
        return table.select_features(names)

    # ------------------------------------------------------------------
    # step B: training data curation
    # ------------------------------------------------------------------
    def curate(
        self,
        text_table: FeatureTable,
        image_table: FeatureTable,
    ) -> CurationResult:
        """Weakly label the new modality using the old one.

        ``text_table`` must carry labels; ``image_table`` must not (the
        pipeline never reads new-modality labels).
        """
        if text_table.labels is None:
            raise ConfigurationError("curation requires a labeled old-modality table")
        cfg = self.config.curation
        rng = spawn(self.config.seed, "curate")

        # dev / seed split of the labeled old modality
        n_text = text_table.n_rows
        perm = rng.permutation(n_text)
        n_dev = max(int(cfg.dev_fraction * n_text), 50)
        dev_idx = np.sort(perm[:n_dev])
        seed_pool_idx = np.sort(perm[n_dev:])
        dev_table = text_table.select_rows(dev_idx)

        lf_schema = self.lf_feature_schema()
        lf_names = [n for n in lf_schema.names if n in text_table.schema]

        lfs: list[LabelingFunction] = []
        if cfg.use_mined_lfs:
            generator = MinedLFGenerator(
                min_precision=cfg.min_precision,
                min_lift=cfg.min_lift,
                min_recall=cfg.min_recall,
                max_order=cfg.max_order,
            )
            lfs.extend(
                generator.generate(
                    dev_table.select_features(lf_names), features=lf_names
                )
            )

        image_aug = image_table
        dev_aug = dev_table
        propagation_scores: np.ndarray | None = None
        class_balance = float(np.clip(dev_table.labels.mean(), 1e-4, 0.5))

        if cfg.use_propagation:
            image_aug, dev_aug, prop_lfs, propagation_scores = self._propagate(
                text_table, seed_pool_idx, dev_table, image_table, lf_names,
                class_balance, rng,
            )
            lfs.extend(prop_lfs)

        if not lfs:
            raise ConfigurationError(
                "curation produced no labeling functions; "
                "enable mining or propagation, or loosen thresholds"
            )

        matrix = apply_lfs(
            lfs, image_aug, n_threads=self.config.n_threads,
            executor=self._lf_executor,
        )
        dev_matrix = apply_lfs(
            lfs, dev_aug, n_threads=self.config.n_threads,
            executor=self._lf_executor,
        )
        if cfg.use_generative_model:
            # anchor the LF conditional tables to their old-modality
            # dev-set estimates (§4.2: labeled data of existing
            # modalities serves as the development set)
            anchors = conditional_table(dev_matrix.votes, dev_table.labels)
            label_model = GenerativeLabelModel(class_balance=class_balance)
            label_model.fit(matrix, accuracy_anchors=anchors, anchor_strength=25.0)
            proba = label_model.predict_proba(matrix)
        else:
            label_model = None
            proba = MajorityVoter(prior=class_balance).predict_proba(matrix)

        # quality of the weak labels, measured on the dev split
        if cfg.use_generative_model and label_model is not None:
            dev_proba = label_model.predict_proba(dev_matrix)
        else:
            dev_proba = MajorityVoter(prior=class_balance).predict_proba(dev_matrix)

        # The propagation score "can also be used as a form of
        # probabilistic label" (§4.4): blend it into the label-model
        # posterior with a weight chosen on the dev split.
        if cfg.use_propagation and cfg.blend_propagation and propagation_scores is not None:
            dev_prop = np.array(
                [
                    v if v is not None else class_balance
                    for v in dev_aug.column(PROPAGATION_FEATURE)
                ],
                dtype=float,
            )
            weight = self._tune_blend_weight(
                dev_proba, dev_prop, dev_table.labels
            )
            proba = (1.0 - weight) * proba + weight * propagation_scores
            dev_proba = (1.0 - weight) * dev_proba + weight * dev_prop
        dev_quality = weak_label_quality(
            dev_proba, dev_table.labels, prior=class_balance
        )

        return CurationResult(
            lfs=lfs,
            label_matrix=matrix,
            probabilistic_labels=proba,
            class_balance=class_balance,
            dev_quality=dev_quality,
            propagation_scores=propagation_scores,
            label_model=label_model,
            image_table_augmented=image_aug,
            dev_table_augmented=dev_aug,
        )

    @staticmethod
    def _tune_blend_weight(
        dev_model_proba: np.ndarray,
        dev_prop_scores: np.ndarray,
        dev_labels: np.ndarray,
        grid: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    ) -> float:
        """Dev-tuned weight for blending propagation scores into the
        probabilistic labels (0 = label model only, 1 = scores only)."""
        if dev_labels.sum() == 0:
            return 0.0
        best_weight, best_score = 0.0, -np.inf
        for weight in grid:
            blended = (1.0 - weight) * dev_model_proba + weight * dev_prop_scores
            score = auprc(blended, dev_labels)
            if score > best_score:
                best_score = score
                best_weight = weight
        return best_weight

    def graph_config(self, table: FeatureTable | None = None) -> GraphConfig:
        """The :class:`GraphConfig` the curation stage builds with.

        ``table`` (the combined graph table, when already known) filters
        the embedding weight boost down to features the table actually
        carries — the graph build rejects weights for absent features.

        The table-free form feeds the curate-stage checkpoint
        fingerprint: approximate graph backends change *results*, so
        checkpoints must never be reused across graph backends or their
        parameters (the exec backend, a pure performance knob, is
        deliberately excluded).
        """
        cfg = self.config.curation
        weights = {"org_embedding": cfg.graph_embedding_weight}
        if table is not None:
            weights = {n: w for n, w in weights.items() if n in table.schema}
        return GraphConfig(
            k=cfg.graph_k,
            feature_weights=weights,
            backend=cfg.graph_backend,
            seed=derive_seed(self.config.seed, "graph"),
        )

    def _propagate(
        self,
        text_table: FeatureTable,
        seed_pool_idx: np.ndarray,
        dev_table: FeatureTable,
        image_table: FeatureTable,
        lf_names: list[str],
        class_balance: float,
        rng: np.random.Generator,
    ) -> tuple[FeatureTable, FeatureTable, list[LabelingFunction], np.ndarray]:
        """Run label propagation; returns augmented tables, the
        propagation LFs, and the new-modality scores."""
        cfg = self.config.curation

        # cap graph size: sample seed and dev nodes
        if len(seed_pool_idx) > cfg.max_seed_nodes:
            seed_idx = np.sort(
                rng.choice(seed_pool_idx, size=cfg.max_seed_nodes, replace=False)
            )
        else:
            seed_idx = seed_pool_idx
        seed_table = text_table.select_rows(seed_idx)
        if dev_table.n_rows > cfg.max_dev_nodes:
            keep = np.sort(
                rng.choice(dev_table.n_rows, size=cfg.max_dev_nodes, replace=False)
            )
            dev_graph_table = dev_table.select_rows(keep)
        else:
            keep = np.arange(dev_table.n_rows)
            dev_graph_table = dev_table

        # graph features: the LF feature space plus unstructured
        # modality-specific features ("we use features specific to the
        # new modality to construct edges, including ... embeddings")
        graph_features = list(lf_names)
        for extra in ("org_embedding",):
            if extra in image_table.schema and extra not in graph_features:
                graph_features.append(extra)

        combined = (
            seed_table.select_features(
                [n for n in graph_features if n in seed_table.schema]
            )
            .concat(
                dev_graph_table.select_features(
                    [n for n in graph_features if n in dev_graph_table.schema]
                )
            )
            .concat(
                image_table.select_features(
                    [n for n in graph_features if n in image_table.schema]
                )
            )
        )
        graph = build_knn_graph(
            combined,
            self.graph_config(table=combined),
            executor=self.executor,
        )

        n_seed = seed_table.n_rows
        n_dev = dev_graph_table.n_rows
        propagator = (
            StreamingLabelPropagation(prior=class_balance)
            if cfg.streaming_propagation
            else LabelPropagation(prior=class_balance)
        )
        result = propagator.run(
            graph,
            seed_indices=np.arange(n_seed),
            seed_labels=seed_table.labels,
        )
        dev_scores_sampled = result.scores[n_seed:n_seed + n_dev]
        image_scores = result.scores[n_seed + n_dev:]

        top = cfg.propagation_positive_precision
        bottom = cfg.propagation_negative_precision
        prop_lfs = propagation_lfs(
            dev_scores_sampled,
            dev_graph_table.labels,
            positive_precisions=(min(top + 0.2, 0.95), top, max(top - 0.15, 0.4)),
            negative_precisions=(min(bottom + 0.004, 0.9999), bottom, bottom - 0.01),
        )

        spec = propagation_feature_spec()
        image_aug = image_table.with_feature(spec, list(image_scores))
        # dev rows outside the graph sample get the prior (no score)
        dev_scores_full = np.full(dev_table.n_rows, class_balance)
        dev_scores_full[keep] = dev_scores_sampled
        dev_aug = dev_table.with_feature(spec, list(dev_scores_full))
        return image_aug, dev_aug, prop_lfs, image_scores

    # ------------------------------------------------------------------
    # step C: model training
    # ------------------------------------------------------------------
    def model_factory(self, seed_tag: str = "model"):
        """Estimator factory per the training config."""
        t = self.config.training
        seed = derive_seed(self.config.seed, seed_tag)
        if t.model == "logreg":
            return lambda: LogisticRegression(
                l2=max(t.l2, 1e-6), learning_rate=0.05, n_epochs=200, seed=seed
            )
        return lambda: MLPClassifier(
            hidden_sizes=t.hidden_sizes,
            n_epochs=t.n_epochs,
            batch_size=t.batch_size,
            learning_rate=t.learning_rate,
            l2=t.l2,
            seed=seed,
        )

    def train(
        self,
        text_table: FeatureTable,
        curation: CurationResult,
        seed_tag: str = "model",
    ):
        """Train the multi-modal model on servable features.

        Old modality: human labels.  New modality: probabilistic labels
        (rows with no LF coverage are dropped when configured — their
        labels are pure prior).
        """
        if text_table.labels is None:
            raise ConfigurationError("training requires labeled old-modality data")
        image_table = curation.image_table_augmented
        if image_table is None:
            raise ConfigurationError("curation result lacks the augmented table")

        text_sel = self.select_model_features(text_table, Modality.TEXT)
        image_modality = image_table.modalities[0] if image_table.modalities else Modality.IMAGE
        image_sel = self.select_model_features(image_table, image_modality)
        proba = curation.probabilistic_labels
        if self.config.curation.drop_uncovered:
            mask = curation.coverage_mask
            image_sel = image_sel.select_rows(np.flatnonzero(mask))
            proba = proba[mask]

        factory = self.model_factory(seed_tag)
        fusion_kind = self.config.training.fusion
        if fusion_kind == "early":
            model = EarlyFusion(factory, max_vocab=self.config.training.max_vocab)
            model.fit([text_sel, image_sel], [text_table.labels.astype(float), proba])
        elif fusion_kind == "intermediate":
            model = IntermediateFusion(
                factory, max_vocab=self.config.training.max_vocab
            )
            model.fit([text_sel, image_sel], [text_table.labels.astype(float), proba])
        else:
            if self.config.training.model != "mlp":
                raise ConfigurationError("DeViSE requires the MLP model family")
            model = DeViSE(factory, max_vocab=self.config.training.max_vocab)
            model.fit(
                [text_sel],
                [text_table.labels.astype(float)],
                image_sel,
                proba,
            )
        return model

    # ------------------------------------------------------------------
    # evaluation and end-to-end
    # ------------------------------------------------------------------
    def evaluate(self, model, test_table: FeatureTable) -> tuple[dict[str, float], np.ndarray]:
        """Score the trained model on a labeled new-modality test table."""
        if test_table.labels is None:
            raise ConfigurationError("evaluation requires a labeled test table")
        modality = test_table.modalities[0] if test_table.modalities else Modality.IMAGE
        test_sel = self.select_model_features(test_table, modality)
        scores = model.predict_proba(test_sel)
        metrics = {
            "auprc": auprc(scores, test_table.labels),
            "f1@0.5": f1_score(scores, test_table.labels),
            "positive_rate": float(test_table.labels.mean()),
            "n_test": float(test_table.n_rows),
        }
        return metrics, scores

    def run(
        self,
        splits: CorpusSplits,
        checkpoint: "RunCheckpointer | None" = None,
    ) -> PipelineResult:
        """Full pipeline: featurize -> curate -> train -> evaluate.

        Each step runs inside an :mod:`repro.obs` span of the same name,
        so a traced run (``obs.enable()``) exports the full nested tree;
        ``PipelineResult.timings`` is populated either way.

        With a :class:`~repro.runs.RunCheckpointer`, every stage's output
        is persisted as content-hashed artifacts on completion, and a
        stage whose fingerprint (config slice + derived RNG seed + input
        artifact hashes) matches a completed manifest record is replayed
        from disk instead of recomputed.  Because every stage draws from
        an RNG stream derived purely from the recorded seeds, a resumed
        run is bit-identical to an uninterrupted one.
        """
        cfg = self.config
        timings: dict[str, float] = {}
        resumed: list[str] = []
        sharded = checkpoint is not None and cfg.shard_size is not None
        if cfg.shard_size is not None and self.resilience is not None:
            raise ConfigurationError(
                "shard_size cannot be combined with a resilience policy: "
                "sharded featurize does not carry per-run degradation "
                "reports — run resilience regimes unsharded"
            )

        # ----- stage A: feature generation ----------------------------
        def compute_featurize() -> dict[str, FeatureTable]:
            return {
                "text": self.featurize(splits.text_labeled, include_labels=True),
                "image": self.featurize(splits.image_unlabeled, include_labels=False),
                "test": self.featurize(splits.image_test, include_labels=True),
            }

        def compute_featurize_sharded() -> dict:
            from repro.shards import ShardProgress
            from repro.shards.stages import _job_key

            assert checkpoint is not None
            out = {}
            for key, corpus, labeled in (
                ("text", splits.text_labeled, True),
                ("image", splits.image_unlabeled, False),
                ("test", splits.image_test, True),
            ):
                progress = ShardProgress(
                    checkpoint.store.root / f"shards-featurize-{key}.json",
                    job_key=_job_key({**feat_config, "split": key}),
                )
                out[key] = self.featurize_sharded(
                    corpus,
                    checkpoint.store,
                    include_labels=labeled,
                    progress=progress,
                    tag=key,
                )
            return out

        feat_hashes: dict[str, str] = {}
        with obs.timed("featurize", task=self.task.name) as t:
            if checkpoint is None:
                tables = compute_featurize()
            else:
                feat_config: dict = {
                    "seed": cfg.seed,
                    "derived_seed": derive_seed(cfg.seed, "featurize"),
                    "features": sorted(self.schema.names),
                }
                if self.resilience_context is not None:
                    # degradation regime (fault seeds, availability,
                    # retry/deadline budgets) changes featurized values,
                    # so it invalidates the checkpoint like a seed does
                    feat_config["resilience"] = self.resilience_context
                if sharded:
                    # a sharded and an unsharded run lay artifacts out
                    # incompatibly, so they must not replay each other
                    feat_config["shard_size"] = cfg.shard_size
                    outcome = checkpoint.stage(
                        "featurize",
                        config=feat_config,
                        compute=compute_featurize_sharded,
                        encode=_encode_sharded_tables,
                        decode=lambda payloads: _decode_sharded_tables(
                            payloads, checkpoint.store
                        ),
                    )
                    tables = {
                        key: handle.to_table()
                        for key, handle in outcome.value.items()
                    }
                    # downstream fingerprints chain over the manifest
                    # hashes only — each already pins its shard hashes
                    feat_hashes = {
                        key: digest
                        for key, digest in outcome.artifact_hashes.items()
                        if "/" not in key
                    }
                else:
                    outcome = checkpoint.stage(
                        "featurize",
                        config=feat_config,
                        compute=compute_featurize,
                        encode=_encode_feature_tables,
                        decode=_decode_feature_tables,
                    )
                    tables = outcome.value
                    feat_hashes = outcome.artifact_hashes
                if outcome.reused:
                    resumed.append("featurize")
        timings["featurize"] = t.duration
        text_table = tables["text"]
        image_table = tables["image"]
        test_table = tables["test"]

        # ----- stage B: training-data curation -------------------------
        curation_hash: dict[str, str] = {}
        with obs.timed("curate", task=self.task.name) as t:
            if checkpoint is None:
                curation = self.curate(text_table, image_table)
            else:
                outcome = checkpoint.stage(
                    "curate",
                    config={
                        "curation": asdict(cfg.curation),
                        # the full graph config: approximation changes
                        # results, so backend + parameters invalidate
                        # the checkpoint (exec backends do not)
                        "graph": asdict(self.graph_config()),
                        "lf_service_sets": list(cfg.lf_service_sets),
                        "seed": cfg.seed,
                        "derived_seed": derive_seed(cfg.seed, "curate"),
                        "inputs": {
                            key: feat_hashes[key]
                            for key in ("text", "image")
                            if key in feat_hashes
                        },
                    },
                    compute=lambda: self.curate(text_table, image_table),
                    encode=_encode_curation_stage,
                    decode=_decode_curation_stage,
                )
                curation = outcome.value
                curation_hash = outcome.artifact_hashes
                if outcome.reused:
                    resumed.append("curate")
            t.span.add_counter("n_lfs", len(curation.lfs))
        timings["curate"] = t.duration

        # ----- stage C: model training ---------------------------------
        model_hash: dict[str, str] = {}
        with obs.timed("train", task=self.task.name) as t:
            if checkpoint is None:
                model = self.train(text_table, curation)
            else:
                outcome = checkpoint.stage(
                    "train",
                    config={
                        "training": asdict(cfg.training),
                        "model_service_sets": list(cfg.model_service_sets),
                        "include_image_features": cfg.include_image_features,
                        "drop_uncovered": cfg.curation.drop_uncovered,
                        "derived_seed": derive_seed(cfg.seed, "model"),
                        "inputs": {**feat_hashes, **curation_hash},
                    },
                    compute=lambda: self.train(text_table, curation),
                    encode=_encode_train_stage,
                    decode=_decode_train_stage,
                )
                model = outcome.value
                model_hash = outcome.artifact_hashes
                if outcome.reused:
                    resumed.append("train")
        timings["train"] = t.duration

        # ----- stage D: evaluation -------------------------------------
        with obs.timed("evaluate", task=self.task.name) as t:
            if checkpoint is None:
                metrics, scores = self.evaluate(model, test_table)
            else:
                outcome = checkpoint.stage(
                    "evaluate",
                    config={
                        "model_service_sets": list(cfg.model_service_sets),
                        "include_image_features": cfg.include_image_features,
                        "inputs": {
                            **{k: v for k, v in feat_hashes.items() if k == "test"},
                            **model_hash,
                        },
                    },
                    compute=lambda: self.evaluate(model, test_table),
                    encode=_encode_evaluate_stage,
                    decode=_decode_evaluate_stage,
                )
                metrics, scores = outcome.value
                if outcome.reused:
                    resumed.append("evaluate")
        timings["evaluate"] = t.duration

        return PipelineResult(
            metrics=metrics,
            curation=curation,
            model=model,
            tables={
                "text": text_table,
                "image_unlabeled": curation.image_table_augmented or image_table,
                "test": test_table,
            },
            timings=timings,
            test_scores=scores,
            resumed_stages=resumed,
        )

    # ------------------------------------------------------------------
    # lineage repair
    # ------------------------------------------------------------------
    def recompute_stage(
        self,
        name: str,
        manifest: "RunManifest",
        store: "RunStore",
        splits: CorpusSplits,
    ) -> dict:
        """Offline replay of one recorded stage, for lineage repair.

        Recomputes stage ``name`` exactly as a checkpointed :meth:`run`
        would — same derived seeds, same codecs — reading its upstream
        inputs from ``store`` (the :class:`~repro.runs.repair.RepairEngine`
        heals those first).  Returns the stage's checkpoint encoding
        ``{artifact: (kind, payload)}``; the caller verifies the encoded
        bytes hash to the recorded references before restoring anything.

        The pipeline must be constructed with the run's exact
        configuration, or the rebuilt bytes will (correctly) fail the
        repair oracle.  Raises :class:`RepairError` for stages that
        cannot be replayed offline — notably a featurize stage recorded
        under a resilience degradation regime, whose injected service
        faults this replay has no policy to reproduce.
        """
        record = manifest.stages.get(name)
        if record is None:
            raise RepairError(f"run manifest records no stage {name!r} to replay")

        if name == "featurize":
            config = record.config if isinstance(record.config, dict) else {}
            if "resilience" in config and self.resilience is None:
                raise RepairError(
                    "featurize stage was recorded under a resilience degradation "
                    "regime; offline repair cannot reproduce injected service "
                    "faults — re-run the experiment in a fresh --run-dir instead"
                )
            shard_size = config.get("shard_size")
            if shard_size is not None:
                # rebuild the shards in a scratch store so a divergent
                # replay leaves no orphans in the real one; the repair
                # oracle verifies the encoded bytes before restoring
                import tempfile

                from repro.runs.store import RunStore as _ScratchStore
                from repro.shards import featurize_corpus_sharded

                seed = derive_seed(self.config.seed, "featurize")
                with tempfile.TemporaryDirectory(
                    prefix="repro-shard-replay-"
                ) as scratch:
                    scratch_store = _ScratchStore(scratch)
                    return _encode_sharded_tables(
                        {
                            key: featurize_corpus_sharded(
                                corpus,
                                list(self.catalog),
                                scratch_store,
                                int(shard_size),
                                seed=seed,
                                include_labels=labeled,
                                n_threads=self.config.n_threads,
                                executor=self.executor,
                                tag=key,
                            )
                            for key, corpus, labeled in (
                                ("text", splits.text_labeled, True),
                                ("image", splits.image_unlabeled, False),
                                ("test", splits.image_test, True),
                            )
                        }
                    )
            return _encode_feature_tables(
                {
                    "text": self.featurize(splits.text_labeled, include_labels=True),
                    "image": self.featurize(
                        splits.image_unlabeled, include_labels=False
                    ),
                    "test": self.featurize(splits.image_test, include_labels=True),
                }
            )

        def upstream_ref(stage: str, key: str):
            upstream_record = manifest.stages.get(stage)
            if upstream_record is None:
                raise RepairError(
                    f"replaying stage {name!r} needs the {stage!r} record, "
                    f"which the manifest lacks"
                )
            ref = upstream_record.artifacts.get(key)
            if ref is None:
                raise RepairError(
                    f"replaying stage {name!r} needs artifact {key!r} of "
                    f"stage {stage!r}, which its record does not list"
                )
            return ref

        def upstream(stage: str, key: str) -> object:
            return store.get_json(upstream_ref(stage, key))

        def feature_table(key: str) -> FeatureTable:
            from repro.features.io import table_from_dict
            from repro.shards.table import MANIFEST_KIND, ShardedTable

            ref = upstream_ref("featurize", key)
            doc = store.get_json(ref)
            if ref.kind == MANIFEST_KIND:  # sharded run: materialize
                return ShardedTable(store, doc).to_table()
            return table_from_dict(doc)

        if name == "curate":
            return _encode_curation_stage(
                self.curate(feature_table("text"), feature_table("image"))
            )
        if name == "train":
            curation = _decode_curation_stage(
                {"curation": upstream("curate", "curation")}
            )
            return _encode_train_stage(self.train(feature_table("text"), curation))
        if name == "evaluate":
            model = _decode_train_stage({"model": upstream("train", "model")})
            return _encode_evaluate_stage(self.evaluate(model, feature_table("test")))
        raise RepairError(
            f"stage {name!r} has no offline replay; repairable stages are "
            f"featurize, curate, train, and evaluate"
        )
