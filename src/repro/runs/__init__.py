"""Crash-safe pipeline runs: durable checkpoints and resume.

The paper's split architecture exists so teams can "enter and exit the
pipeline at their step" through well-defined artifacts; at production
scale those artifacts must also survive preemption and partial failure
(Snorkel DryBell runs its pipelines as preemptible MapReduce jobs).
This package makes a pipeline run durable:

* :class:`RunStore` — content-hashed artifacts, written atomically,
  verified on read, quarantined on corruption;
* :class:`RunManifest` — per-run record of stage completions, config
  fingerprints (chained over input hashes), and artifacts;
* :class:`RunCheckpointer` — stage replay-or-compute threaded through
  :meth:`CrossModalPipeline.run <repro.core.pipeline.CrossModalPipeline.run>`;
* :class:`PartitionCheckpointer` — the same at MapReduce partition
  granularity;
* :mod:`repro.runs.crash` — kill-at-boundary injection used by the
  crash/resume harness (``python -m repro.experiments crash``);
* :mod:`repro.runs.repair` — lineage-driven replay of damaged
  artifacts, with the original content hash as the acceptance oracle;
* :mod:`repro.runs.scrub` — full-store audit (healthy / corrupt /
  missing / orphaned) with optional in-place repair;
* :mod:`repro.runs.faultfs` — seeded filesystem fault injection
  (EIO, ENOSPC, fsync failure, bit flips, torn directory entries)
  shimming :mod:`repro.core.atomicio`.

A resumed run is bit-identical to an uninterrupted one: every stage
artifact round-trips exactly (see :mod:`repro.runs.codecs`) and all
stage RNG streams are derived from recorded seeds.  The same property
powers self-healing: a damaged artifact's producing stage replays to
bit-identical bytes, or repair refuses and fails loudly.
"""

from repro.runs.checkpoint import PartitionCheckpointer, RunCheckpointer, StageOutcome
from repro.runs.crash import (
    CRASH_AT_ENV,
    CRASH_EXIT_CODE,
    CRASH_MODE_ENV,
    crash_boundary,
)
from repro.runs.faultfs import (
    FAULT_TYPES,
    FaultEvent,
    FaultFSConfig,
    FaultyFS,
    InjectedFaultError,
    inject_faults,
)
from repro.runs.manifest import MANIFEST_VERSION, RunManifest, StageRecord, stage_fingerprint
from repro.runs.repair import RepairAction, RepairEngine, verify_and_restore
from repro.runs.scrub import ScrubEntry, ScrubReport, scrub_run
from repro.runs.store import ARTIFACT_FORMAT_VERSION, ArtifactRef, RunStore, encode_envelope

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactRef",
    "CRASH_AT_ENV",
    "CRASH_EXIT_CODE",
    "CRASH_MODE_ENV",
    "FAULT_TYPES",
    "FaultEvent",
    "FaultFSConfig",
    "FaultyFS",
    "InjectedFaultError",
    "MANIFEST_VERSION",
    "PartitionCheckpointer",
    "RepairAction",
    "RepairEngine",
    "RunCheckpointer",
    "RunManifest",
    "RunStore",
    "ScrubEntry",
    "ScrubReport",
    "StageOutcome",
    "StageRecord",
    "crash_boundary",
    "encode_envelope",
    "inject_faults",
    "scrub_run",
    "stage_fingerprint",
    "verify_and_restore",
]
