"""Crash-safe pipeline runs: durable checkpoints and resume.

The paper's split architecture exists so teams can "enter and exit the
pipeline at their step" through well-defined artifacts; at production
scale those artifacts must also survive preemption and partial failure
(Snorkel DryBell runs its pipelines as preemptible MapReduce jobs).
This package makes a pipeline run durable:

* :class:`RunStore` — content-hashed artifacts, written atomically,
  verified on read, quarantined on corruption;
* :class:`RunManifest` — per-run record of stage completions, config
  fingerprints (chained over input hashes), and artifacts;
* :class:`RunCheckpointer` — stage replay-or-compute threaded through
  :meth:`CrossModalPipeline.run <repro.core.pipeline.CrossModalPipeline.run>`;
* :class:`PartitionCheckpointer` — the same at MapReduce partition
  granularity;
* :mod:`repro.runs.crash` — kill-at-boundary injection used by the
  crash/resume harness (``python -m repro.experiments crash``).

A resumed run is bit-identical to an uninterrupted one: every stage
artifact round-trips exactly (see :mod:`repro.runs.codecs`) and all
stage RNG streams are derived from recorded seeds.
"""

from repro.runs.checkpoint import PartitionCheckpointer, RunCheckpointer, StageOutcome
from repro.runs.crash import (
    CRASH_AT_ENV,
    CRASH_EXIT_CODE,
    CRASH_MODE_ENV,
    crash_boundary,
)
from repro.runs.manifest import MANIFEST_VERSION, RunManifest, StageRecord, stage_fingerprint
from repro.runs.store import ARTIFACT_FORMAT_VERSION, ArtifactRef, RunStore

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactRef",
    "CRASH_AT_ENV",
    "CRASH_EXIT_CODE",
    "CRASH_MODE_ENV",
    "MANIFEST_VERSION",
    "PartitionCheckpointer",
    "RunCheckpointer",
    "RunManifest",
    "RunStore",
    "StageOutcome",
    "StageRecord",
    "crash_boundary",
    "stage_fingerprint",
]
