"""Content-hashed, crash-safe artifact store for pipeline runs.

Every stage output is persisted as an *artifact*: a file named by the
SHA-256 of its bytes, written atomically (temp + fsync + rename).  The
hash in the artifact's :class:`ArtifactRef` is the integrity contract —
:meth:`RunStore.get_bytes` re-hashes what it reads and, on mismatch,
moves the file into ``quarantine/`` and raises
:class:`~repro.core.exceptions.IntegrityError` instead of returning
corrupt data or silently recomputing.  A missing file raises
:class:`~repro.core.exceptions.ArtifactMissingError` — like corruption,
that is *repairable* damage: the content hash still pins the exact
bytes, so the producing stage can be replayed and verified
(see :mod:`repro.runs.repair` and ``scrub --repair``).

JSON artifacts travel inside a small envelope ``{format_version, kind,
data}`` so version skew and kind confusion are detected before any
payload is decoded.  Binary artifacts (pickled MapReduce partitions)
skip the envelope; their integrity rests on the content hash alone.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import repro.obs as obs
from repro.core.atomicio import atomic_write_bytes, sha256_hex
from repro.core.exceptions import ArtifactMissingError, CheckpointError, IntegrityError

__all__ = [
    "ArtifactRef",
    "RunStore",
    "ARTIFACT_FORMAT_VERSION",
    "encode_envelope",
]

#: bump when the artifact envelope layout changes incompatibly
ARTIFACT_FORMAT_VERSION = 1


def encode_envelope(kind: str, payload: object) -> bytes:
    """The exact bytes :meth:`RunStore.put_json` persists for a payload.

    Factored out so lineage-driven repair can rebuild an artifact and
    compare its hash against the original reference byte-for-byte.
    """
    envelope = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "kind": kind,
        "data": payload,
    }
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def _quarantine_note(quarantined: Path | None) -> str:
    if quarantined is None:
        return "the corrupt file was already quarantined by a concurrent reader"
    return f"the corrupt file was quarantined at {quarantined}"


@dataclass(frozen=True)
class ArtifactRef:
    """Pointer to one stored artifact: its content hash, declared kind,
    and size in bytes.  Serializes to/from a plain dict for manifests."""

    hash: str
    kind: str
    size: int

    def to_dict(self) -> dict:
        return {"hash": self.hash, "kind": self.kind, "size": self.size}

    @classmethod
    def from_dict(cls, data: dict) -> "ArtifactRef":
        try:
            return cls(
                hash=str(data["hash"]), kind=str(data["kind"]), size=int(data["size"])
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed artifact reference {data!r}: {exc}"
            ) from exc


class RunStore:
    """Artifact store rooted at ``<root>/artifacts``.

    Files are immutable once written (their name is their hash), so
    re-putting identical content is a no-op and concurrent writers of
    the same content cannot conflict.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.artifact_dir = self.root / "artifacts"
        self.quarantine_dir = self.root / "quarantine"
        self.artifact_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # raw bytes
    # ------------------------------------------------------------------
    def _path_for(self, digest: str, kind: str) -> Path:
        if kind.endswith(".pkl"):
            suffix = ".pkl"
        elif kind.endswith(".npy"):
            suffix = ".npy"
        else:
            suffix = ".json"
        return self.artifact_dir / f"{digest}{suffix}"

    def path_for(self, ref: ArtifactRef) -> Path:
        """On-disk path of an artifact (for memory-mapped readers).

        Mapping a file bypasses the verifying :meth:`get_bytes` path, so
        callers that need the integrity guarantee should :meth:`check`
        the reference first (the scrub pass audits these files the same
        as any other artifact).
        """
        return self._path_for(ref.hash, ref.kind)

    def put_bytes(self, kind: str, data: bytes) -> ArtifactRef:
        """Store raw bytes; returns the content-addressed reference.

        A pre-existing file under the same content-hash name is *not*
        trusted by name alone: its bytes are re-verified and atomically
        rewritten on mismatch (self-heal on write), so corruption that
        slipped onto disk is fixed the next time the content passes
        through instead of only failing at read time.  Write failures
        surface as typed :class:`CheckpointError`\\ s.
        """
        digest = sha256_hex(data)
        path = self._path_for(digest, kind)
        if path.exists():
            if self._on_disk_matches(path, digest):
                return ArtifactRef(hash=digest, kind=kind, size=len(data))
            obs.add_counter("runs.artifacts_healed_on_write")
        try:
            with obs.span("runs.artifact.save", kind=kind, bytes=len(data)):
                atomic_write_bytes(path, data)
        except OSError as exc:
            raise CheckpointError(
                f"artifact write failed for {digest[:12]}… ({kind}): {exc}"
            ) from exc
        obs.add_counter("runs.artifacts_saved")
        obs.add_counter("runs.artifact_bytes_saved", len(data))
        return ArtifactRef(hash=digest, kind=kind, size=len(data))

    @staticmethod
    def _on_disk_matches(path: Path, digest: str) -> bool:
        """Whether ``path`` currently holds bytes hashing to ``digest``."""
        try:
            return sha256_hex(path.read_bytes()) == digest
        except OSError:
            return False

    def check(self, ref: ArtifactRef) -> str:
        """Audit one artifact without side effects.

        Returns ``"healthy"``, ``"corrupt"`` (present but bytes do not
        hash to the reference, or unreadable), or ``"missing"``.
        """
        path = self._path_for(ref.hash, ref.kind)
        if not path.exists():
            return "missing"
        return "healthy" if self._on_disk_matches(path, ref.hash) else "corrupt"

    def get_bytes(self, ref: ArtifactRef) -> bytes:
        """Read and verify an artifact's bytes.

        Hash mismatches quarantine the file and raise
        :class:`IntegrityError`; a missing file raises
        :class:`ArtifactMissingError`.  Both are repairable via the
        lineage replay path (``scrub --repair``).
        """
        path = self._path_for(ref.hash, ref.kind)
        if not path.exists():
            raise ArtifactMissingError(
                f"artifact {ref.hash[:12]}… ({ref.kind}) is missing from "
                f"{self.artifact_dir}. Run `python -m repro.experiments scrub "
                f"--run-dir <run> --repair` to rebuild it from its lineage.",
                ref=ref,
            )
        with obs.span("runs.artifact.load", kind=ref.kind):
            data = path.read_bytes()
            actual = sha256_hex(data)
            if actual != ref.hash:
                quarantined = self.quarantine(path)
                raise IntegrityError(
                    f"artifact {ref.hash[:12]}… ({ref.kind}) failed its integrity "
                    f"check: stored bytes hash to {actual[:12]}…; "
                    f"{_quarantine_note(quarantined)}. Run `python -m "
                    f"repro.experiments scrub --run-dir <run> --repair` to "
                    f"rebuild it from its lineage (or start a fresh --run-dir).",
                    quarantined=quarantined,
                )
        obs.add_counter("runs.artifacts_loaded")
        obs.add_counter("runs.artifact_bytes_loaded", len(data))
        return data

    def quarantine(self, path: Path) -> Path | None:
        """Move a corrupt file out of the store (never delete evidence).

        Idempotent under races: two readers detecting the same corrupt
        artifact both call this, the loser finds the file already moved
        and gets the ``None`` sentinel back instead of an uncaught
        :class:`FileNotFoundError`.  Quarantine names are made unique
        (pid + counter suffix) so repeated corruption of the same
        artifact never overwrites earlier evidence.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        n = 0
        while target.exists():
            n += 1
            target = self.quarantine_dir / f"{path.name}.{os.getpid()}.{n}"
        try:
            os.replace(path, target)
        except FileNotFoundError:
            # a concurrent reader already quarantined (or repair already
            # rewrote) this path — nothing left to preserve
            obs.add_counter("runs.quarantine_races")
            return None
        obs.add_counter("runs.artifacts_quarantined")
        return target

    # ------------------------------------------------------------------
    # JSON envelope
    # ------------------------------------------------------------------
    def put_json(self, kind: str, payload: object) -> ArtifactRef:
        """Store a JSON-serializable payload under an integrity envelope."""
        return self.put_bytes(kind, encode_envelope(kind, payload))

    def get_json(self, ref: ArtifactRef) -> object:
        """Load a JSON artifact, validating envelope version and kind.

        Truncated or non-JSON content is quarantined (the hash matched,
        so the file's *content* was bad at write time — version skew or
        a buggy encoder) and raised as :class:`IntegrityError`.
        """
        data = self.get_bytes(ref)
        path = self._path_for(ref.hash, ref.kind)
        try:
            envelope = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            quarantined = self.quarantine(path)
            raise IntegrityError(
                f"artifact {ref.hash[:12]}… ({ref.kind}) is not valid JSON "
                f"({exc}); {_quarantine_note(quarantined)}",
                quarantined=quarantined,
            ) from exc
        if not isinstance(envelope, dict) or "data" not in envelope:
            quarantined = self.quarantine(path)
            raise IntegrityError(
                f"artifact {ref.hash[:12]}… ({ref.kind}) lacks the artifact "
                f"envelope; {_quarantine_note(quarantined)}",
                quarantined=quarantined,
            )
        version = envelope.get("format_version")
        if version != ARTIFACT_FORMAT_VERSION:
            raise IntegrityError(
                f"artifact {ref.hash[:12]}… ({ref.kind}) has format version "
                f"{version!r}; this build reads version {ARTIFACT_FORMAT_VERSION}. "
                f"Re-run without --resume to rebuild the run with this version."
            )
        if envelope.get("kind") != ref.kind:
            raise IntegrityError(
                f"artifact {ref.hash[:12]}… declares kind {envelope.get('kind')!r} "
                f"but was referenced as {ref.kind!r}"
            )
        return envelope["data"]
