"""Lineage-driven artifact repair.

A damaged artifact (corrupt or missing, per :meth:`RunStore.check`) is
not a dead end: the run manifest records which stage produced it, under
what configuration, from which content-hashed inputs.  Replaying that
stage deterministically rebuilds the bytes — and the *original content
hash is the acceptance oracle*: repair either restores bit-identical
content (the rebuilt bytes hash to the recorded reference) or fails
loudly with :class:`~repro.core.exceptions.RepairError` and a lineage
report.  Wrong bytes are never substituted.

Two entry points:

* :func:`verify_and_restore` — the oracle itself: given a stage's
  recorded artifact refs and a freshly replayed encoding, verify every
  rebuilt artifact's hash *before any write*, then restore only the
  damaged ones.  Used both here and by
  :class:`~repro.runs.checkpoint.RunCheckpointer` auto-repair (which
  has the stage's live ``compute``/``encode`` closures in hand).
* :class:`RepairEngine` — the offline walker for a finished run: finds
  the producing stage of a damaged hash, recursively heals that stage's
  lineage inputs first, then replays it via a caller-supplied
  ``recompute`` callback (see
  :func:`repro.experiments.scrub.rebuild_end_to_end` for the pipeline
  one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import repro.obs as obs
from repro.core.atomicio import sha256_hex
from repro.core.exceptions import (
    ArtifactMissingError,
    IntegrityError,
    RepairError,
)
from repro.runs.manifest import RunManifest, StageRecord
from repro.runs.store import ArtifactRef, RunStore, encode_envelope

__all__ = ["RepairAction", "verify_and_restore", "RepairEngine"]

#: mirror of the checkpoint encode contract: {artifact_name: (kind, payload)}
Encoded = dict[str, tuple[str, Any]]


@dataclass(frozen=True)
class RepairAction:
    """One artifact's outcome from a stage repair pass."""

    stage: str
    key: str
    hash: str
    kind: str
    #: store state when the repair pass reached it
    status_before: str
    #: whether the artifact was rewritten (``False`` = already healthy)
    restored: bool


def _artifact_bytes(kind: str, payload: Any) -> bytes:
    """The exact on-disk bytes a stage artifact persists as."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return encode_envelope(kind, payload)


def _lineage_note(record: StageRecord) -> str:
    inputs = _input_hashes(record)
    shown = ", ".join(h[:12] + "…" for h in inputs) if inputs else "none"
    return (
        f"lineage: stage {record.name!r} (fingerprint "
        f"{record.fingerprint[:12]}…), inputs [{shown}]"
    )


def _input_hashes(record: StageRecord) -> list[str]:
    """Content hashes of the stage's recorded inputs.

    Stages declare their inputs as ``config["inputs"] = {key: hash}`` —
    that is what chains the manifest like a Merkle list, and it is also
    exactly the set of upstream artifacts a replay will read.
    """
    config = record.config
    if isinstance(config, dict):
        inputs = config.get("inputs")
        if isinstance(inputs, dict):
            return [str(value) for value in inputs.values()]
    return []


def verify_and_restore(
    store: RunStore,
    stage: str,
    artifacts: dict[str, ArtifactRef],
    encoded: Encoded,
) -> list[RepairAction]:
    """Apply the repair oracle: verify replayed outputs, restore damage.

    Every recorded artifact must be present in ``encoded`` and its
    rebuilt bytes must hash to the *original* reference; verification of
    the full set happens before any write, so a non-deterministic replay
    leaves the store untouched.  Damaged artifacts (corrupt or missing)
    are then rewritten atomically; healthy ones are left alone.

    Raises :class:`RepairError` if the replay is missing an artifact or
    produced different bytes.
    """
    rebuilt: dict[str, bytes] = {}
    for key, ref in artifacts.items():
        if key not in encoded:
            raise RepairError(
                f"replay of stage {stage!r} produced no artifact {key!r} "
                f"(expected {ref.hash[:12]}…, kind {ref.kind}); the replay "
                f"does not match the recorded run"
            )
        kind, payload = encoded[key]
        data = _artifact_bytes(kind, payload)
        actual = sha256_hex(data)
        if actual != ref.hash:
            raise RepairError(
                f"repair oracle failed for stage {stage!r} artifact {key!r}: "
                f"replay produced hash {actual[:12]}… but the manifest records "
                f"{ref.hash[:12]}… (kind {ref.kind}). The stage replay is not "
                f"bit-deterministic; refusing to substitute different bytes."
            )
        rebuilt[key] = data

    actions: list[RepairAction] = []
    for key, ref in artifacts.items():
        status = store.check(ref)
        restored = False
        if status != "healthy":
            store.put_bytes(ref.kind, rebuilt[key])
            obs.add_counter("runs.artifacts_repaired")
            restored = True
        actions.append(
            RepairAction(
                stage=stage,
                key=key,
                hash=ref.hash,
                kind=ref.kind,
                status_before=status,
                restored=restored,
            )
        )
    return actions


class RepairEngine:
    """Walks a run manifest to rebuild damaged artifacts from lineage.

    ``recompute`` replays one recorded stage — reading its inputs from
    the (already healed) store — and returns the stage's encoding in the
    checkpoint contract ``{artifact_name: (kind, payload)}``.  It may
    raise :class:`RepairError` for stages it cannot replay offline.

    The engine guarantees the repair oracle: every rebuilt artifact is
    hash-verified against its original reference before any write.
    """

    def __init__(
        self,
        manifest: RunManifest,
        store: RunStore,
        recompute: Callable[[StageRecord], Encoded],
        max_depth: int = 16,
    ) -> None:
        self.manifest = manifest
        self.store = store
        self.recompute = recompute
        self.max_depth = max_depth
        #: every artifact touched across repairs, in repair order
        self.actions: list[RepairAction] = []

    # ------------------------------------------------------------------
    # lineage lookup
    # ------------------------------------------------------------------
    def producer_of(self, digest: str) -> tuple[StageRecord, str] | None:
        """The (stage record, artifact key) that produced ``digest``."""
        for record in self.manifest.stages.values():
            for key, ref in record.artifacts.items():
                if ref.hash == digest:
                    return record, key
        return None

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def ensure_healthy(self, digest: str, _depth: int = 0) -> ArtifactRef:
        """Make the artifact with content hash ``digest`` readable.

        If it is damaged, replays its producing stage (recursively
        healing that stage's own lineage inputs first) and verifies the
        rebuilt bytes against ``digest``.  Returns the artifact's ref.

        Raises :class:`RepairError` when no manifest stage produced the
        hash (orphan — nothing records how to rebuild it), when lineage
        recursion runs too deep, or when the oracle rejects the replay.
        """
        if _depth > self.max_depth:
            raise RepairError(
                f"lineage recursion exceeded {self.max_depth} levels while "
                f"repairing artifact {digest[:12]}…; the manifest's input "
                f"chain appears cyclic or corrupt"
            )
        found = self.producer_of(digest)
        if found is None:
            raise RepairError(
                f"artifact {digest[:12]}… has no producing stage in the run "
                f"manifest; it cannot be rebuilt from lineage (orphaned or "
                f"externally supplied content)"
            )
        record, _key = found
        ref = record.artifacts[_key]
        if self.store.check(ref) == "healthy":
            return ref
        self.repair_stage(record, _depth)
        return ref

    def repair_stage(self, record: StageRecord, _depth: int = 0) -> list[RepairAction]:
        """Replay one stage and restore all of its damaged artifacts."""
        for input_hash in _input_hashes(record):
            self._ensure_input(record, input_hash, _depth + 1)
        with obs.span("runs.repair.stage", stage=record.name):
            try:
                encoded = self.recompute(record)
            except (ArtifactMissingError, IntegrityError) as exc:
                raise RepairError(
                    f"replay of stage {record.name!r} hit further store damage "
                    f"({exc}); {_lineage_note(record)}"
                ) from exc
        actions = verify_and_restore(self.store, record.name, record.artifacts, encoded)
        self.actions.extend(actions)
        obs.add_counter("runs.stages_repaired")
        return actions

    def _ensure_input(self, record: StageRecord, digest: str, depth: int) -> None:
        """Heal one lineage input of ``record`` before replaying it."""
        if self.producer_of(digest) is not None:
            self.ensure_healthy(digest, depth)
            return
        # not produced by any recorded stage: acceptable only if the
        # content is already intact in the store (externally supplied)
        for path in self.store.artifact_dir.glob(f"{digest}.*"):
            try:
                if sha256_hex(path.read_bytes()) == digest:
                    return
            except OSError:
                continue
        raise RepairError(
            f"lineage input {digest[:12]}… of stage {record.name!r} is neither "
            f"produced by any manifest stage nor intact in the store; the "
            f"stage cannot be replayed. {_lineage_note(record)}"
        )

    # ------------------------------------------------------------------
    # self-healing read facades
    # ------------------------------------------------------------------
    def read_json(self, ref: ArtifactRef) -> Any:
        """:meth:`RunStore.get_json` with one repair-and-retry on damage."""
        try:
            return self.store.get_json(ref)
        except (ArtifactMissingError, IntegrityError):
            self.ensure_healthy(ref.hash)
            return self.store.get_json(ref)

    def read_bytes(self, ref: ArtifactRef) -> bytes:
        """:meth:`RunStore.get_bytes` with one repair-and-retry on damage."""
        try:
            return self.store.get_bytes(ref)
        except (ArtifactMissingError, IntegrityError):
            self.ensure_healthy(ref.hash)
            return self.store.get_bytes(ref)
