"""Store scrubbing: audit every artifact a run manifest references.

A scrub walks the manifest, re-hashes each referenced artifact on disk,
and classifies it ``healthy`` / ``corrupt`` / ``missing``; files in the
artifact directory that no stage references are reported as *orphans*
(informational, not damage — a store shared across runs legitimately
holds other runs' artifacts).  With ``repair=True`` and a
:class:`~repro.runs.repair.RepairEngine`, damaged artifacts are rebuilt
from lineage and re-verified, and each entry records whether the repair
restored the original bytes (``repaired``) or failed (``unrepaired``,
with the reason).

The audit pass completes before any repair runs, so the report always
shows the damage as found — a stage replay that heals several artifacts
at once does not mask how many were broken.

Library layer only: the CLI wrapper (run-dir argument parsing, the
pipeline-specific ``recompute`` callback, ``BENCH_scrub.json``) lives in
:mod:`repro.experiments.scrub`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.obs as obs
from repro.core.exceptions import CheckpointError, ConfigurationError
from repro.runs.manifest import RunManifest
from repro.runs.repair import RepairEngine
from repro.runs.store import RunStore

__all__ = ["ScrubEntry", "ScrubReport", "scrub_run"]


@dataclass
class ScrubEntry:
    """One referenced artifact's audit (and, optionally, repair) outcome."""

    stage: str
    key: str
    hash: str
    kind: str
    #: healthy | corrupt | missing | repaired | unrepaired
    status: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "key": self.key,
            "hash": self.hash,
            "kind": self.kind,
            "status": self.status,
            "detail": self.detail,
        }


@dataclass
class ScrubReport:
    """The full outcome of one scrub pass over a run directory."""

    run_dir: str
    entries: list[ScrubEntry]
    #: unreferenced file names in the artifact dir (informational)
    orphans: list[str] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        out["orphaned"] = len(self.orphans)
        return out

    @property
    def repaired(self) -> int:
        return sum(1 for e in self.entries if e.status == "repaired")

    @property
    def unrepaired(self) -> int:
        return sum(
            1 for e in self.entries if e.status in ("unrepaired", "corrupt", "missing")
        )

    @property
    def healthy(self) -> bool:
        """No referenced artifact is currently damaged."""
        return self.unrepaired == 0

    def verdict(self) -> str:
        if not self.healthy:
            return (
                f"scrub verdict: UNREPAIRED damage — {self.unrepaired} "
                f"artifact(s) still corrupt or missing"
            )
        if self.repaired:
            return (
                f"scrub verdict: repaired {self.repaired} artifact(s); "
                f"store healthy"
            )
        return "scrub verdict: store healthy"

    def render(self) -> str:
        lines = [f"scrub of {self.run_dir}"]
        header = f"  {'stage':<12} {'artifact':<16} {'hash':<14} status"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for e in self.entries:
            line = f"  {e.stage:<12} {e.key:<16} {e.hash[:12]:<14} {e.status}"
            if e.detail:
                line += f" ({e.detail})"
            lines.append(line)
        if self.orphans:
            lines.append(
                f"  orphans: {len(self.orphans)} unreferenced file(s) "
                f"(other runs' artifacts, or debris)"
            )
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        lines.append(f"  totals: {counts}")
        lines.append(self.verdict())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "run_dir": self.run_dir,
            "counts": self.counts,
            "healthy": self.healthy,
            "entries": [e.to_dict() for e in self.entries],
            "orphans": list(self.orphans),
        }


def scrub_run(
    run_dir: str | Path,
    store: RunStore | None = None,
    engine: RepairEngine | None = None,
    repair: bool = False,
) -> ScrubReport:
    """Audit (and optionally repair) every artifact the run references.

    ``store`` defaults to the run directory's own store; pass the shared
    one if the run was created against it.  ``repair=True`` requires an
    ``engine`` — repair is lineage replay, and the replay recipe is
    experiment-specific.
    """
    run_dir = Path(run_dir)
    if repair and engine is None:
        raise ConfigurationError(
            "scrub_run(repair=True) requires a RepairEngine; build one with "
            "repro.experiments.scrub.make_repair_engine or pass repair=False "
            "for a report-only audit"
        )
    manifest = RunManifest.load(run_dir)
    if store is None:
        store = engine.store if engine is not None else RunStore(run_dir)

    # audit pass: classify everything before touching anything
    entries: list[ScrubEntry] = []
    referenced: set[str] = set()
    with obs.span("runs.scrub.audit", run_dir=str(run_dir)):
        for record in manifest.stages.values():
            for key, ref in record.artifacts.items():
                referenced.add(store._path_for(ref.hash, ref.kind).name)
                status = store.check(ref)
                obs.add_counter(f"runs.scrub.{status}")
                entries.append(
                    ScrubEntry(
                        stage=record.name,
                        key=key,
                        hash=ref.hash,
                        kind=ref.kind,
                        status=status,
                    )
                )
    orphans = sorted(
        path.name
        for path in store.artifact_dir.iterdir()
        if path.is_file()
        and path.name not in referenced
        and not path.name.endswith(".tmp")
    )
    for _ in orphans:
        obs.add_counter("runs.scrub.orphaned")

    # repair pass
    if repair:
        for entry in entries:
            if entry.status not in ("corrupt", "missing"):
                continue
            was = entry.status
            with obs.span("runs.scrub.repair", hash=entry.hash[:12]):
                try:
                    ref = engine.ensure_healthy(entry.hash)
                except CheckpointError as exc:
                    entry.status = "unrepaired"
                    entry.detail = str(exc)
                    obs.add_counter("runs.scrub.unrepaired")
                    continue
            if store.check(ref) == "healthy":
                entry.status = "repaired"
                entry.detail = f"was {was}"
                obs.add_counter("runs.scrub.repaired")
            else:
                entry.status = "unrepaired"
                entry.detail = f"was {was}; replay did not restore the bytes"
                obs.add_counter("runs.scrub.unrepaired")

    return ScrubReport(run_dir=str(run_dir), entries=entries, orphans=orphans)
