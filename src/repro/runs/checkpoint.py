"""Run- and partition-level checkpointers.

:class:`RunCheckpointer` is what the pipeline threads through its
stages: each stage declares its effective configuration (including the
content hashes of its inputs), and the checkpointer either replays the
stage from durable artifacts (fingerprint match) or computes it, stores
the artifacts, and records completion in the manifest — in that order,
so the manifest never references bytes that aren't on disk.

:class:`PartitionCheckpointer` is the same idea one level down, for
MapReduce: each completed partition's mapped output is persisted, so a
killed job recomputes only the partitions that hadn't finished.

Every save / skip emits :mod:`repro.obs` spans and counters
(``runs.stage.save``, ``runs.stage.skip``, ``runs.stages_skipped`` …)
so a traced resumed run shows exactly what it reused.
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import repro.obs as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.dedup import StageDeduper
from repro.core.atomicio import atomic_write_json
from repro.core.exceptions import ArtifactMissingError, CheckpointError, IntegrityError
from repro.runs.crash import crash_boundary
from repro.runs.manifest import RunManifest, StageRecord, stage_fingerprint
from repro.runs.repair import verify_and_restore
from repro.runs.store import ArtifactRef, RunStore

__all__ = ["StageOutcome", "RunCheckpointer", "PartitionCheckpointer"]

#: encode() returns {artifact_name: (kind, json_payload)}
Encoded = dict[str, tuple[str, Any]]


@dataclass
class StageOutcome:
    """What :meth:`RunCheckpointer.stage` produced."""

    value: Any
    record: StageRecord
    reused: bool
    #: satisfied by another run's identical in-flight stage (see
    #: :class:`repro.scheduler.dedup.StageDeduper`); the value was
    #: decoded from the shared store rather than computed here
    deduped: bool = False

    @property
    def artifact_hashes(self) -> dict[str, str]:
        """Content hashes of the stage's artifacts — feed these into the
        next stage's config so fingerprints chain over actual inputs."""
        return {name: ref.hash for name, ref in sorted(self.record.artifacts.items())}


class RunCheckpointer:
    """Durable stage checkpointing for one run directory."""

    def __init__(
        self,
        run_dir: str | Path,
        context: dict | None = None,
        resume: bool = False,
        store: RunStore | None = None,
        deduper: "StageDeduper | None" = None,
        auto_repair: bool = False,
    ) -> None:
        run_dir = Path(run_dir)
        context = dict(context or {})
        if RunManifest.exists(run_dir):
            if not resume:
                raise CheckpointError(
                    f"run directory {run_dir} already holds a manifest; pass "
                    f"resume=True (CLI: --resume) to continue it, or use a fresh "
                    f"directory"
                )
            self.manifest = RunManifest.load(run_dir)
            if self.manifest.context != context:
                raise CheckpointError(
                    f"refusing to resume: run {run_dir} was created with context "
                    f"{self.manifest.context!r} but this invocation has "
                    f"{context!r}; matching task/scale/seed is required"
                )
        else:
            self.manifest = RunManifest.create(run_dir, context)
        self.run_dir = run_dir
        # a shared store dedups identical artifacts across runs by
        # content hash; per-run manifests still live in run_dir
        self.store = store if store is not None else RunStore(run_dir)
        self.deduper = deduper
        # opt-in: damaged artifacts hit during replay/dedup decoding are
        # rebuilt in place (the stage's own compute/encode closures are
        # the replay, the recorded hash the acceptance oracle).  Off by
        # default so integrity failures stay loud unless asked for.
        self.auto_repair = auto_repair
        #: stage names replayed from artifacts (in stage order)
        self.reused_stages: list[str] = []
        #: stage names satisfied by another run's in-flight computation
        self.deduped_stages: list[str] = []
        #: stage names whose artifacts were rebuilt in place (auto-repair)
        self.repaired_stages: list[str] = []

    def _store_payload(self, kind: str, payload: Any) -> ArtifactRef:
        """Persist one encoded payload: raw bytes skip the JSON envelope
        (binary shard containers), everything else travels inside it."""
        if isinstance(payload, (bytes, bytearray)):
            return self.store.put_bytes(kind, bytes(payload))
        return self.store.put_json(kind, payload)

    def _read_payload(self, ref: ArtifactRef) -> Any:
        """Inverse of :meth:`_store_payload`, dispatching on the kind's
        suffix the same way the store picks file extensions."""
        if ref.kind.endswith((".npy", ".pkl")):
            return self.store.get_bytes(ref)
        return self.store.get_json(ref)

    def _decode_refs(self, artifacts: dict[str, ArtifactRef]) -> dict[str, Any]:
        return {key: self._read_payload(ref) for key, ref in artifacts.items()}

    def _stage_payloads(
        self,
        name: str,
        artifacts: dict[str, ArtifactRef],
        compute: Callable[[], Any],
        encode: Callable[[Any], "Encoded"],
    ) -> dict[str, Any]:
        """Load a stage's persisted payloads, auto-repairing on damage.

        A fingerprint match got us here, so ``compute`` is (by the
        checkpoint contract) a deterministic replay of the recorded
        stage; :func:`verify_and_restore` enforces that with the
        recorded content hashes before anything is written.  The
        payloads are then re-read from the store so the caller decodes
        the exact JSON round-trip it would have seen without damage.
        """
        try:
            return self._decode_refs(artifacts)
        except (ArtifactMissingError, IntegrityError):
            if not self.auto_repair:
                raise
            with obs.span("runs.stage.repair", stage=name) as sp:
                value = compute()
                actions = verify_and_restore(self.store, name, artifacts, encode(value))
                sp.add_counter(
                    "artifacts_repaired", sum(1 for a in actions if a.restored)
                )
            obs.add_counter("runs.stages_repaired")
            self.repaired_stages.append(name)
            return self._decode_refs(artifacts)

    def stage(
        self,
        name: str,
        config: object,
        compute: Callable[[], Any],
        encode: Callable[[Any], Encoded],
        decode: Callable[[dict[str, Any]], Any],
    ) -> StageOutcome:
        """Replay ``name`` from artifacts, or compute and persist it.

        ``config`` must capture everything that determines the stage's
        output (config slice, derived RNG seeds, input artifact hashes);
        it is fingerprinted against the manifest record.  Replay happens
        only on an exact fingerprint match — any skew recomputes, and
        the changed output hashes re-fingerprint downstream stages.
        """
        fingerprint = stage_fingerprint(self.manifest.context, name, config)
        record = self.manifest.completed(name, fingerprint)
        if record is not None:
            with obs.span(
                "runs.stage.skip", stage=name, fingerprint=fingerprint[:12]
            ) as sp:
                payloads = self._stage_payloads(name, record.artifacts, compute, encode)
                value = decode(payloads)
                sp.add_counter("artifacts_reused", len(payloads))
                sp.add_counter(
                    "bytes_reused", sum(r.size for r in record.artifacts.values())
                )
            obs.add_counter("runs.stages_skipped")
            self.reused_stages.append(name)
            return StageOutcome(value=value, record=record, reused=True)

        t0 = time.perf_counter()
        if self.deduper is not None:
            # single-flight across concurrent runs sharing this store:
            # the first run with this fingerprint computes and persists,
            # the rest decode its artifacts (same path as a replay)
            def _compute_and_store() -> tuple[Any, dict[str, ArtifactRef]]:
                value = compute()
                with obs.span("runs.stage.save", stage=name) as sp:
                    refs = {
                        key: self._store_payload(kind, payload)
                        for key, (kind, payload) in encode(value).items()
                    }
                    sp.add_counter("artifacts_saved", len(refs))
                return value, refs

            outcome = self.deduper.run(fingerprint, _compute_and_store)
            if outcome.hit:
                with obs.span("runs.stage.dedup", stage=name) as sp:
                    payloads = self._stage_payloads(name, outcome.refs, compute, encode)
                    value = decode(payloads)
                    sp.add_counter("artifacts_reused", len(payloads))
                obs.add_counter("runs.stages_deduped")
                self.deduped_stages.append(name)
            else:
                value = outcome.value
                obs.add_counter("runs.stages_computed")
            record = self.manifest.record_stage(
                name,
                fingerprint,
                config,
                outcome.refs,
                wall_time_s=time.perf_counter() - t0,
            )
            crash_boundary(f"stage:{name}")
            return StageOutcome(
                value=value, record=record, reused=False, deduped=outcome.hit
            )

        value = compute()
        with obs.span("runs.stage.save", stage=name) as sp:
            refs = {
                key: self._store_payload(kind, payload)
                for key, (kind, payload) in encode(value).items()
            }
            record = self.manifest.record_stage(
                name,
                fingerprint,
                config,
                refs,
                wall_time_s=time.perf_counter() - t0,
            )
            sp.add_counter("artifacts_saved", len(refs))
        obs.add_counter("runs.stages_computed")
        crash_boundary(f"stage:{name}")
        return StageOutcome(value=value, record=record, reused=False)


class PartitionCheckpointer:
    """Completed-partition checkpointing for a MapReduce job.

    Partition payloads (the mapped-and-combined group dict plus local
    counters) are pickled into a content-hashed :class:`RunStore`; a
    small ``partitions.json`` manifest maps partition index → artifact
    reference.  ``job_key`` identifies the job configuration — an
    existing manifest written under a different key is ignored and
    replaced, since its partitions belong to a different computation.

    Thread-safe: partitions may complete on worker threads; manifest
    updates serialize through a lock and each rewrite is atomic.
    """

    FILENAME = "partitions.json"
    FORMAT_VERSION = 1
    KIND = "mapreduce.partition.pkl"

    def __init__(self, root: str | Path, job_key: str) -> None:
        self.root = Path(root)
        self.job_key = str(job_key)
        self.store = RunStore(self.root)
        self._path = self.root / self.FILENAME
        self._lock = threading.Lock()
        self._entries: dict[int, ArtifactRef] = {}
        self._load_manifest()

    def _load_manifest(self) -> None:
        if not self._path.exists():
            return
        try:
            data = json.loads(self._path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise IntegrityError(
                f"partition manifest {self._path} is not valid JSON: {exc}; "
                f"it is written atomically, so this indicates external "
                f"modification — delete it to recompute the job"
            ) from exc
        if (
            not isinstance(data, dict)
            or data.get("format_version") != self.FORMAT_VERSION
            or data.get("job_key") != self.job_key
        ):
            return  # different job or version: start fresh
        self._entries = {
            int(index): ArtifactRef.from_dict(ref)
            for index, ref in data.get("partitions", {}).items()
        }

    def _save_manifest(self) -> None:
        atomic_write_json(
            self._path,
            {
                "format_version": self.FORMAT_VERSION,
                "job_key": self.job_key,
                "partitions": {
                    str(i): ref.to_dict() for i, ref in sorted(self._entries.items())
                },
            },
            indent=2,
        )

    def load(self, index: int) -> Any | None:
        """The checkpointed payload of partition ``index``, or ``None``.

        Corrupt payloads quarantine and raise (via the store) rather
        than silently recomputing.
        """
        ref = self._entries.get(index)
        if ref is None:
            return None
        data = self.store.get_bytes(ref)
        try:
            payload = pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure is corruption
            quarantined = self.store.quarantine(self.store._path_for(ref.hash, ref.kind))
            note = (
                f"quarantined at {quarantined}"
                if quarantined is not None
                else "already quarantined by a concurrent reader"
            )
            raise IntegrityError(
                f"partition {index} checkpoint could not be unpickled ({exc}); "
                f"{note}",
                quarantined=quarantined,
            ) from exc
        obs.add_counter("runs.partitions_skipped")
        return payload

    def save(self, index: int, payload: Any) -> None:
        """Persist partition ``index``'s payload and update the manifest."""
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        ref = self.store.put_bytes(self.KIND, data)
        with self._lock:
            self._entries[index] = ref
            self._save_manifest()
        obs.add_counter("runs.partitions_saved")

    def completed(self) -> list[int]:
        """Indices of checkpointed partitions (sorted)."""
        return sorted(self._entries)
