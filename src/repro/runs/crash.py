"""Crash injection at checkpoint boundaries.

The resume guarantee is only credible if it is *proved* by killing real
runs.  This module is the injection point: checkpointing code calls
:func:`crash_boundary` immediately after each durable boundary (a stage
record persisted, a MapReduce partition checkpointed), and the
environment decides whether the process dies there.

``REPRO_CRASH_AT`` names the boundary to kill at — ``stage:curate``,
``partition:3``, … — and ``REPRO_CRASH_MODE`` selects how:

* ``exit`` (default): ``os._exit(CRASH_EXIT_CODE)`` — no ``atexit``
  handlers, no ``finally`` blocks, the closest a test harness gets to
  ``kill -9`` without a second process;
* ``raise``: raise :class:`SimulatedCrashError` instead, so in-process
  tests can exercise crash/resume for every kill point without the cost
  of spawning subprocesses.

Environment variables (rather than plumbed parameters) are deliberate:
the kill must reach code deep inside the pipeline without any layer
having to forward it, exactly like a real preemption would.
"""

from __future__ import annotations

import os
import sys

from repro.core.exceptions import SimulatedCrashError

__all__ = [
    "CRASH_AT_ENV",
    "CRASH_MODE_ENV",
    "CRASH_EXIT_CODE",
    "crash_boundary",
]

CRASH_AT_ENV = "REPRO_CRASH_AT"
CRASH_MODE_ENV = "REPRO_CRASH_MODE"

#: exit status of an injected kill — distinguishable from success (0)
#: and from ordinary Python failures (1) by the resume harness
CRASH_EXIT_CODE = 43


def crash_boundary(boundary: str) -> None:
    """Die here iff the environment targets this boundary.

    Called *after* the boundary's durable state (artifacts + manifest)
    has been persisted, so a resumed run must reuse exactly the work
    completed before the kill.
    """
    target = os.environ.get(CRASH_AT_ENV)
    if not target or target != boundary:
        return
    if os.environ.get(CRASH_MODE_ENV, "exit") == "raise":
        raise SimulatedCrashError(f"injected crash at boundary {boundary!r}")
    print(f"[crash injection] killing process at boundary {boundary!r}", file=sys.stderr)
    sys.stderr.flush()
    os._exit(CRASH_EXIT_CODE)
