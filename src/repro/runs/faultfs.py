"""Seeded filesystem fault injection for the artifact store.

Storage fails in shapes that unit tests rarely exercise: the write
syscall errors (EIO), the disk fills (ENOSPC), ``fsync`` fails after a
successful write, bits rot silently *after* the write succeeded, or a
crash tears the directory entry so the payload is durable but its name
never appears.  :class:`FaultyFS` implements the
:class:`~repro.core.atomicio.FaultLayer` protocol and injects all five,
driven by a seeded RNG so every chaos run is reproducible.

Install it with :func:`inject_faults` (a context manager that restores
the previous layer on exit)::

    config = FaultFSConfig(bitflip_rate=0.2, seed=7, path_substring="artifacts")
    with inject_faults(config) as fs:
        run_pipeline(...)
    print(fs.events)  # every injected fault, in order

Fault draws happen in a fixed order per write (eio → enospc → bitflip →
torn, plus a separate fsync draw), serialized under a lock, so a given
``(seed, write sequence)`` always injects the same faults — two
identical runs see identical damage.  ``path_substring`` scopes
injection (e.g. only ``…/artifacts/`` files) so manifests and result
files stay out of the blast radius when an experiment wants them to.
"""

from __future__ import annotations

import errno
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterator

import repro.obs as obs
from repro.core import atomicio
from repro.core.exceptions import ConfigurationError

__all__ = [
    "FAULT_TYPES",
    "FaultFSConfig",
    "FaultEvent",
    "InjectedFaultError",
    "FaultyFS",
    "inject_faults",
]

#: the injectable fault taxonomy, in draw order (fsync drawn separately)
FAULT_TYPES = ("eio", "enospc", "fsync", "bitflip", "torn")

_RATE_FIELD = {
    "eio": "eio_rate",
    "enospc": "enospc_rate",
    "fsync": "fsync_fail_rate",
    "bitflip": "bitflip_rate",
    "torn": "torn_rate",
}


class InjectedFaultError(OSError):
    """An injected storage fault.

    Subclasses :class:`OSError` so it flows through the same error
    handling as a real kernel failure, but stays distinguishable in
    tests and chaos verdicts.
    """

    def __init__(self, fault: str, path: Path | str, err: int) -> None:
        super().__init__(err, f"injected {fault} fault", str(path))
        self.fault = fault


@dataclass(frozen=True)
class FaultFSConfig:
    """Per-fault injection probabilities plus the RNG seed.

    All rates are independent per-write probabilities in ``[0, 1]``.
    ``path_substring`` limits injection to paths containing it (empty
    string = every atomic write in the process).
    """

    eio_rate: float = 0.0
    enospc_rate: float = 0.0
    fsync_fail_rate: float = 0.0
    bitflip_rate: float = 0.0
    torn_rate: float = 0.0
    seed: int = 0
    path_substring: str = ""

    def __post_init__(self) -> None:
        for f in fields(self):
            if not f.name.endswith("_rate"):
                continue
            rate = getattr(self, f.name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{f.name} must be a probability in [0, 1], got {rate!r}"
                )

    @classmethod
    def single(
        cls,
        fault: str,
        rate: float,
        seed: int = 0,
        path_substring: str = "",
    ) -> "FaultFSConfig":
        """A config injecting only ``fault`` at ``rate``."""
        if fault not in FAULT_TYPES:
            raise ConfigurationError(
                f"unknown fault type {fault!r}; choose from {FAULT_TYPES}"
            )
        return cls(
            **{_RATE_FIELD[fault]: rate},
            seed=seed,
            path_substring=path_substring,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what fired, against which destination path."""

    fault: str
    path: str


class FaultyFS:
    """Stateful :class:`~repro.core.atomicio.FaultLayer` implementation.

    Thread-safe: RNG draws and the event log serialize under a lock, so
    single-writer runs are bit-reproducible for a given seed and
    multi-writer runs never corrupt the RNG state.
    """

    def __init__(self, config: FaultFSConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        #: every injected fault, in injection order
        self.events: list[FaultEvent] = []

    def _eligible(self, path: Path) -> bool:
        return self.config.path_substring in str(path)

    def _record(self, fault: str, path: Path) -> None:
        self.events.append(FaultEvent(fault=fault, path=str(path)))
        obs.add_counter(f"faultfs.{fault}")

    # ------------------------------------------------------------------
    # FaultLayer protocol
    # ------------------------------------------------------------------
    def on_write(self, path: Path, data: bytes) -> tuple[bytes, bool]:
        if not self._eligible(path):
            return data, True
        cfg = self.config
        with self._lock:
            if self._rng.random() < cfg.eio_rate:
                self._record("eio", path)
                raise InjectedFaultError("eio", path, errno.EIO)
            if self._rng.random() < cfg.enospc_rate:
                self._record("enospc", path)
                raise InjectedFaultError("enospc", path, errno.ENOSPC)
            rename = True
            if self._rng.random() < cfg.bitflip_rate:
                self._record("bitflip", path)
                data = self._flip_bit(data)
            if self._rng.random() < cfg.torn_rate:
                # torn directory entry: payload durable, name lost — the
                # atomic writer skips the rename so no file appears
                self._record("torn", path)
                rename = False
            return data, rename

    def on_fsync(self, path: Path) -> None:
        if not self._eligible(path):
            return
        with self._lock:
            if self._rng.random() < self.config.fsync_fail_rate:
                self._record("fsync", path)
                raise InjectedFaultError("fsync", path, errno.EIO)

    def _flip_bit(self, data: bytes) -> bytes:
        """Silent post-write corruption: one random bit flipped."""
        if not data:
            return b"\x01"
        out = bytearray(data)
        index = self._rng.randrange(len(out))
        out[index] ^= 1 << self._rng.randrange(8)
        return bytes(out)


@contextmanager
def inject_faults(config: FaultFSConfig | FaultyFS) -> Iterator[FaultyFS]:
    """Install a fault layer process-wide for the duration of the block.

    Accepts either a config (a fresh :class:`FaultyFS` is built) or an
    existing layer (to share one RNG/event log across blocks).  Restores
    whatever layer was previously installed on exit.
    """
    layer = config if isinstance(config, FaultyFS) else FaultyFS(config)
    previous = atomicio.set_fault_layer(layer)
    try:
        yield layer
    finally:
        atomicio.set_fault_layer(previous)
