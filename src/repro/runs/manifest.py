"""Per-run manifest: which stages completed, under what configuration.

The manifest is the run's durable source of truth.  Each stage record
holds:

* ``status`` — only ``"complete"`` records are ever reused;
* ``fingerprint`` — SHA-256 over the canonical JSON of the stage's
  effective configuration (pipeline config slice, derived RNG seeds,
  and the content hashes of the stage's *inputs*, so records chain like
  a Merkle list: a changed upstream artifact invalidates everything
  downstream);
* ``config`` — the fingerprinted object itself, kept readable so an
  operator can diff "why didn't this stage resume?";
* ``artifacts`` — name → :class:`ArtifactRef` of the stage's outputs.

The file is rewritten atomically after every stage completion, so a
crash between stages leaves a manifest describing exactly the stages
whose artifacts are durable.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.atomicio import atomic_write_json, canonical_json, sha256_hex
from repro.core.exceptions import CheckpointError, IntegrityError
from repro.runs.store import ArtifactRef

__all__ = ["MANIFEST_VERSION", "StageRecord", "RunManifest", "stage_fingerprint"]

#: bump when the manifest layout changes incompatibly
MANIFEST_VERSION = 1


def stage_fingerprint(context: dict, stage: str, config: object) -> str:
    """Deterministic hash of a stage's effective configuration."""
    return sha256_hex(
        canonical_json({"context": context, "stage": stage, "config": config}).encode(
            "utf-8"
        )
    )


@dataclass
class StageRecord:
    """One stage's completion record inside the manifest."""

    name: str
    status: str
    fingerprint: str
    config: object
    artifacts: dict[str, ArtifactRef] = field(default_factory=dict)
    wall_time_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "artifacts": {k: v.to_dict() for k, v in self.artifacts.items()},
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "StageRecord":
        try:
            return cls(
                name=name,
                status=str(data["status"]),
                fingerprint=str(data["fingerprint"]),
                config=data.get("config"),
                artifacts={
                    k: ArtifactRef.from_dict(v)
                    for k, v in data.get("artifacts", {}).items()
                },
                wall_time_s=float(data.get("wall_time_s", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed stage record {name!r} in run manifest: {exc}"
            ) from exc


class RunManifest:
    """The ``manifest.json`` of one run directory."""

    FILENAME = "manifest.json"

    def __init__(self, path: Path, context: dict, created_at: float) -> None:
        self.path = path
        self.context = context
        self.created_at = created_at
        self.stages: dict[str, StageRecord] = {}

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, run_dir: str | Path, context: dict) -> "RunManifest":
        """Start a fresh manifest in ``run_dir`` and persist it."""
        run_dir = Path(run_dir)
        manifest = cls(run_dir / cls.FILENAME, dict(context), time.time())
        manifest.save()
        return manifest

    @classmethod
    def load(cls, run_dir: str | Path) -> "RunManifest":
        """Load an existing manifest, validating version and structure.

        A truncated or malformed manifest raises
        :class:`IntegrityError` — resuming from a manifest that cannot
        be trusted would silently recompute or, worse, mix runs.
        """
        path = Path(run_dir) / cls.FILENAME
        if not path.exists():
            raise CheckpointError(f"no run manifest at {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise IntegrityError(
                f"run manifest {path} is not valid JSON (truncated write?): {exc}. "
                f"The manifest is written atomically, so this indicates external "
                f"modification; start a fresh --run-dir."
            ) from exc
        version = data.get("format_version") if isinstance(data, dict) else None
        if version != MANIFEST_VERSION:
            raise IntegrityError(
                f"run manifest {path} has format version {version!r}; this build "
                f"reads version {MANIFEST_VERSION}. Start a fresh --run-dir."
            )
        manifest = cls(
            path, dict(data.get("context", {})), float(data.get("created_at", 0.0))
        )
        for name, record in data.get("stages", {}).items():
            manifest.stages[name] = StageRecord.from_dict(name, record)
        return manifest

    @classmethod
    def exists(cls, run_dir: str | Path) -> bool:
        return (Path(run_dir) / cls.FILENAME).exists()

    def save(self) -> None:
        """Atomically rewrite the manifest file."""
        atomic_write_json(
            self.path,
            {
                "format_version": MANIFEST_VERSION,
                "created_at": self.created_at,
                "context": self.context,
                "stages": {
                    name: record.to_dict() for name, record in self.stages.items()
                },
            },
            indent=2,
        )

    # ------------------------------------------------------------------
    # stage bookkeeping
    # ------------------------------------------------------------------
    def completed(self, name: str, fingerprint: str) -> StageRecord | None:
        """The stage's record iff it completed under ``fingerprint``.

        A fingerprint mismatch (config/seed/input skew) returns ``None``
        — the stage must recompute, which also re-fingerprints every
        downstream stage through the input-hash chain.
        """
        record = self.stages.get(name)
        if record is None or record.status != "complete":
            return None
        if record.fingerprint != fingerprint:
            return None
        return record

    def record_stage(
        self,
        name: str,
        fingerprint: str,
        config: object,
        artifacts: dict[str, ArtifactRef],
        wall_time_s: float = 0.0,
    ) -> StageRecord:
        """Mark ``name`` complete and persist the manifest atomically."""
        record = StageRecord(
            name=name,
            status="complete",
            fingerprint=fingerprint,
            config=config,
            artifacts=dict(artifacts),
            wall_time_s=wall_time_s,
        )
        self.stages[name] = record
        self.save()
        return record
