"""JSON codecs for pipeline stage artifacts.

Everything a stage hands to the next stage — feature tables, LF sets,
label matrices, probabilistic labels, label-model parameters, trained
model weights — round-trips through these encoders **exactly**: floats
survive JSON bit-for-bit (Python emits shortest-round-trip reprs), so a
resumed run computes on values identical to the originals and its
metrics match an uninterrupted run to the last bit.

Design notes:

* Labeling functions serialize *declaratively* via their
  :attr:`~repro.labeling.lf.LabelingFunction.recipe` (the parametric
  factories record one); rebuilding goes back through the same factory,
  so a restored LF is a working callable, not a stub.  Hand-written
  closure LFs have no recipe and are rejected with a clear error.
* Models serialize as (hyperparameters, fitted arrays).  The restored
  fusion wrappers carry a poisoned ``model_factory`` — refitting a
  checkpointed model is a config change, not a resume.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import CheckpointError
from repro.features.io import _spec_from_dict, _spec_to_dict, table_from_dict, table_to_dict
from repro.features.table import FeatureTable
from repro.features.vectorize import FeatureSlice, Vectorizer
from repro.labeling.analysis import WeakLabelQuality
from repro.labeling.label_model import GenerativeLabelModel
from repro.labeling.lf import LabelingFunction, conjunction_lf, numeric_threshold_lf
from repro.labeling.matrix import LabelMatrix
from repro.models.fusion import DeViSE, EarlyFusion, IntermediateFusion
from repro.models.linear import LogisticRegression
from repro.models.mlp import MLPClassifier

__all__ = [
    "encode_table",
    "decode_table",
    "encode_lf",
    "decode_lf",
    "encode_label_matrix",
    "decode_label_matrix",
    "encode_label_model",
    "decode_label_model",
    "encode_curation",
    "decode_curation",
    "encode_model",
    "decode_model",
    "encode_evaluation",
    "decode_evaluation",
]


# ----------------------------------------------------------------------
# feature tables
# ----------------------------------------------------------------------
def encode_table(table: FeatureTable) -> dict:
    return table_to_dict(table)


def decode_table(data: dict) -> FeatureTable:
    return table_from_dict(data)


def _optional_array(values: object, dtype: type = float) -> np.ndarray | None:
    return None if values is None else np.asarray(values, dtype=dtype)


# ----------------------------------------------------------------------
# labeling functions
# ----------------------------------------------------------------------
def encode_lf(lf: LabelingFunction) -> dict:
    if lf.recipe is None:
        raise CheckpointError(
            f"labeling function {lf.name!r} (origin={lf.origin!r}) has no "
            f"declarative recipe and cannot be checkpointed; only LFs built by "
            f"conjunction_lf / numeric_threshold_lf are persistable"
        )
    return {"name": lf.name, "origin": lf.origin, "recipe": list(lf.recipe)}


def decode_lf(data: dict) -> LabelingFunction:
    recipe = data.get("recipe")
    if not recipe:
        raise CheckpointError(f"labeling-function record {data!r} lacks a recipe")
    family = recipe[0]
    if family == "conjunction":
        _, feature, values, vote = recipe
        return conjunction_lf(
            data["name"], feature, frozenset(values), int(vote), origin=data["origin"]
        )
    if family == "numeric_threshold":
        _, feature, threshold, vote, direction = recipe
        return numeric_threshold_lf(
            data["name"],
            feature,
            float(threshold),
            int(vote),
            direction=direction,
            origin=data["origin"],
        )
    raise CheckpointError(f"unknown labeling-function recipe family {family!r}")


# ----------------------------------------------------------------------
# label matrix / label model / quality
# ----------------------------------------------------------------------
def encode_label_matrix(matrix: LabelMatrix) -> dict:
    return {
        "votes": matrix.votes.tolist(),
        "lfs": [encode_lf(lf) for lf in matrix.lfs],
    }


def decode_label_matrix(data: dict) -> LabelMatrix:
    lfs = [decode_lf(d) for d in data["lfs"]]
    votes = np.asarray(data["votes"], dtype=np.int8)
    if votes.size == 0:
        votes = votes.reshape(0, len(lfs))
    return LabelMatrix(votes, lfs)


def encode_label_model(model: GenerativeLabelModel) -> dict:
    return {
        "class_balance": model.class_balance,
        "max_iter": model.max_iter,
        "tol": model.tol,
        "smoothing": model.smoothing,
        "polarity_consistent": model.polarity_consistent,
        "conditionals": None
        if model.conditionals_ is None
        else model.conditionals_.tolist(),
        "balance": model.balance_,
    }


def decode_label_model(data: dict) -> GenerativeLabelModel:
    model = GenerativeLabelModel(
        class_balance=data["class_balance"],
        max_iter=int(data["max_iter"]),
        tol=float(data["tol"]),
        smoothing=float(data["smoothing"]),
        polarity_consistent=bool(data["polarity_consistent"]),
    )
    model.conditionals_ = _optional_array(data["conditionals"])
    model.balance_ = None if data["balance"] is None else float(data["balance"])
    return model


def _encode_quality(quality: WeakLabelQuality | None) -> dict | None:
    if quality is None:
        return None
    return {
        "precision": quality.precision,
        "recall": quality.recall,
        "f1": quality.f1,
        "coverage": quality.coverage,
        "n_points": quality.n_points,
    }


def _decode_quality(data: dict | None) -> WeakLabelQuality | None:
    if data is None:
        return None
    return WeakLabelQuality(
        precision=data["precision"],
        recall=data["recall"],
        f1=data["f1"],
        coverage=data["coverage"],
        n_points=int(data["n_points"]),
    )


# ----------------------------------------------------------------------
# curation result (stage B artifact)
# ----------------------------------------------------------------------
def encode_curation(curation) -> dict:
    """Encode a :class:`~repro.core.pipeline.CurationResult`."""
    return {
        "lfs": [encode_lf(lf) for lf in curation.lfs],
        "label_matrix": encode_label_matrix(curation.label_matrix),
        "probabilistic_labels": curation.probabilistic_labels.tolist(),
        "class_balance": curation.class_balance,
        "dev_quality": _encode_quality(curation.dev_quality),
        "propagation_scores": None
        if curation.propagation_scores is None
        else np.asarray(curation.propagation_scores).tolist(),
        "label_model": None
        if curation.label_model is None
        else encode_label_model(curation.label_model),
        "image_table_augmented": None
        if curation.image_table_augmented is None
        else encode_table(curation.image_table_augmented),
        "dev_table_augmented": None
        if curation.dev_table_augmented is None
        else encode_table(curation.dev_table_augmented),
    }


def decode_curation(data: dict):
    from repro.core.pipeline import CurationResult

    return CurationResult(
        lfs=[decode_lf(d) for d in data["lfs"]],
        label_matrix=decode_label_matrix(data["label_matrix"]),
        probabilistic_labels=np.asarray(data["probabilistic_labels"], dtype=float),
        class_balance=float(data["class_balance"]),
        dev_quality=_decode_quality(data["dev_quality"]),
        propagation_scores=_optional_array(data["propagation_scores"]),
        label_model=None
        if data["label_model"] is None
        else decode_label_model(data["label_model"]),
        image_table_augmented=None
        if data["image_table_augmented"] is None
        else decode_table(data["image_table_augmented"]),
        dev_table_augmented=None
        if data["dev_table_augmented"] is None
        else decode_table(data["dev_table_augmented"]),
    )


# ----------------------------------------------------------------------
# vectorizer / estimators / fusion models (stage C artifact)
# ----------------------------------------------------------------------
def _encode_vectorizer(vec: Vectorizer) -> dict:
    if vec._slices is None:
        raise CheckpointError("cannot checkpoint an unfitted Vectorizer")
    return {
        "schema": [_spec_to_dict(s) for s in vec.schema],
        "max_vocab": vec.max_vocab,
        "min_count": vec.min_count,
        "add_presence": vec.add_presence,
        "vocab": vec._vocab,
        "numeric_stats": {k: list(v) for k, v in vec._numeric_stats.items()},
        "embedding_stats": {
            k: {"mean": m.tolist(), "std": s.tolist()}
            for k, (m, s) in vec._embedding_stats.items()
        },
        "embedding_dim": vec._embedding_dim,
        "slices": [[sl.name, sl.start, sl.stop] for sl in vec._slices],
        "n_columns": vec._n_columns,
    }


def _decode_vectorizer(data: dict) -> Vectorizer:
    from repro.features.schema import FeatureSchema

    vec = Vectorizer(
        FeatureSchema(_spec_from_dict(s) for s in data["schema"]),
        max_vocab=int(data["max_vocab"]),
        min_count=int(data["min_count"]),
        add_presence=bool(data["add_presence"]),
    )
    vec._vocab = {
        name: {token: int(i) for token, i in vocab.items()}
        for name, vocab in data["vocab"].items()
    }
    vec._numeric_stats = {
        name: (float(m), float(s)) for name, (m, s) in data["numeric_stats"].items()
    }
    vec._embedding_stats = {
        name: (np.asarray(st["mean"], dtype=float), np.asarray(st["std"], dtype=float))
        for name, st in data["embedding_stats"].items()
    }
    vec._embedding_dim = {name: int(d) for name, d in data["embedding_dim"].items()}
    vec._slices = [
        FeatureSlice(name, int(start), int(stop))
        for name, start, stop in data["slices"]
    ]
    vec._n_columns = int(data["n_columns"])
    return vec


def _encode_estimator(model) -> dict:
    if isinstance(model, MLPClassifier):
        if model.weights_ is None or model.biases_ is None:
            raise CheckpointError("cannot checkpoint an unfitted MLPClassifier")
        return {
            "family": "mlp",
            "hidden_sizes": list(model.hidden_sizes),
            "n_epochs": model.n_epochs,
            "batch_size": model.batch_size,
            "learning_rate": model.learning_rate,
            "l2": model.l2,
            "early_stopping_fraction": model.early_stopping_fraction,
            "patience": model.patience,
            "seed": model.seed,
            "weights": [w.tolist() for w in model.weights_],
            "biases": [b.tolist() for b in model.biases_],
        }
    if isinstance(model, LogisticRegression):
        if model.coef_ is None:
            raise CheckpointError("cannot checkpoint an unfitted LogisticRegression")
        return {
            "family": "logreg",
            "l2": model.l2,
            "learning_rate": model.learning_rate,
            "n_epochs": model.n_epochs,
            "tol": model.tol,
            "seed": model.seed,
            "coef": model.coef_.tolist(),
            "intercept": model.intercept_,
        }
    raise CheckpointError(f"no estimator codec for {type(model).__name__}")


def _decode_estimator(data: dict):
    family = data.get("family")
    if family == "mlp":
        model = MLPClassifier(
            hidden_sizes=tuple(data["hidden_sizes"]),
            n_epochs=int(data["n_epochs"]),
            batch_size=int(data["batch_size"]),
            learning_rate=float(data["learning_rate"]),
            l2=float(data["l2"]),
            early_stopping_fraction=float(data["early_stopping_fraction"]),
            patience=int(data["patience"]),
            seed=int(data["seed"]),
        )
        model.weights_ = [np.asarray(w, dtype=float) for w in data["weights"]]
        model.biases_ = [np.asarray(b, dtype=float) for b in data["biases"]]
        return model
    if family == "logreg":
        model = LogisticRegression(
            l2=float(data["l2"]),
            learning_rate=float(data["learning_rate"]),
            n_epochs=int(data["n_epochs"]),
            tol=float(data["tol"]),
            seed=int(data["seed"]),
        )
        model.coef_ = np.asarray(data["coef"], dtype=float)
        model.intercept_ = float(data["intercept"])
        return model
    raise CheckpointError(f"unknown estimator family {family!r}")


def _restored_factory():
    raise CheckpointError(
        "this model was restored from a checkpoint; its model_factory was not "
        "persisted, so it can predict but not refit — retrain from a fresh run "
        "to change it"
    )


def encode_model(model) -> dict:
    """Encode a fitted fusion model (Early/Intermediate/DeViSE)."""
    if isinstance(model, EarlyFusion):
        if model.vectorizer_ is None or model.model_ is None:
            raise CheckpointError("cannot checkpoint an unfitted EarlyFusion")
        return {
            "family": "early",
            "max_vocab": model.max_vocab,
            "vectorizer": _encode_vectorizer(model.vectorizer_),
            "model": _encode_estimator(model.model_),
        }
    if isinstance(model, IntermediateFusion):
        if model.vectorizers_ is None or model.models_ is None or model.head_ is None:
            raise CheckpointError("cannot checkpoint an unfitted IntermediateFusion")
        return {
            "family": "intermediate",
            "max_vocab": model.max_vocab,
            "vectorizers": [_encode_vectorizer(v) for v in model.vectorizers_],
            "models": [_encode_estimator(m) for m in model.models_],
            "head": _encode_estimator(model.head_),
        }
    if isinstance(model, DeViSE):
        if model.projection_ is None:
            raise CheckpointError("cannot checkpoint an unfitted DeViSE")
        return {
            "family": "devise",
            "max_vocab": model.max_vocab,
            "ridge": model.ridge,
            "vectorizer_a": _encode_vectorizer(model.vectorizer_a_),
            "vectorizer_b": _encode_vectorizer(model.vectorizer_b_),
            "model_a": _encode_estimator(model.model_a_),
            "model_b": _encode_estimator(model.model_b_),
            "projection": model.projection_.tolist(),
        }
    raise CheckpointError(f"no model codec for {type(model).__name__}")


def decode_model(data: dict):
    family = data.get("family")
    if family == "early":
        model = EarlyFusion(_restored_factory, max_vocab=int(data["max_vocab"]))
        model.vectorizer_ = _decode_vectorizer(data["vectorizer"])
        model.model_ = _decode_estimator(data["model"])
        return model
    if family == "intermediate":
        model = IntermediateFusion(_restored_factory, max_vocab=int(data["max_vocab"]))
        model.vectorizers_ = [_decode_vectorizer(v) for v in data["vectorizers"]]
        model.models_ = [_decode_estimator(m) for m in data["models"]]
        model.head_ = _decode_estimator(data["head"])
        return model
    if family == "devise":
        model = DeViSE(
            _restored_factory,
            ridge=float(data["ridge"]),
            max_vocab=int(data["max_vocab"]),
        )
        model.vectorizer_a_ = _decode_vectorizer(data["vectorizer_a"])
        model.vectorizer_b_ = _decode_vectorizer(data["vectorizer_b"])
        model.model_a_ = _decode_estimator(data["model_a"])
        model.model_b_ = _decode_estimator(data["model_b"])
        model.projection_ = np.asarray(data["projection"], dtype=float)
        return model
    raise CheckpointError(f"unknown model family {family!r}")


# ----------------------------------------------------------------------
# evaluation (stage D artifact)
# ----------------------------------------------------------------------
def encode_evaluation(metrics: dict[str, float], scores: np.ndarray) -> dict:
    return {"metrics": dict(metrics), "scores": np.asarray(scores).tolist()}


def decode_evaluation(data: dict) -> tuple[dict[str, float], np.ndarray]:
    return dict(data["metrics"]), np.asarray(data["scores"], dtype=float)
