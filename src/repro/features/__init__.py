"""Common structured feature space (paper §3).

Organizational resources transform data points of any modality into
categorical / quantitative / embedding features.  This subpackage holds
the schema describing those features, a columnar :class:`FeatureTable`
aligned with a corpus, vectorization into model-ready matrices, and the
paper's Algorithm-1 pairwise similarity used by label propagation.
"""

from repro.features.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.features.table import MISSING, FeatureTable
from repro.features.vectorize import Vectorizer
from repro.features.distance import SimilarityConfig, algorithm1_similarity

__all__ = [
    "FeatureKind",
    "FeatureSchema",
    "FeatureSpec",
    "FeatureTable",
    "MISSING",
    "SimilarityConfig",
    "Vectorizer",
    "algorithm1_similarity",
]
