"""Pairwise similarity between feature rows (paper Algorithm 1).

The paper builds the label-propagation graph from per-feature
contributions: Jaccard similarity for categorical features and a norm of
the difference for numeric ones, with every feature's contribution
normalized ("In practice, each feature's contribution is normalized in
lines 5 and 7, which we omit for simplicity").  We implement the
normalized form as a similarity in [0, 1]:

* categorical — Jaccard similarity of the two value sets;
* numeric — ``1 - |x_i - x_j| / range`` with the range estimated from a
  reference table;
* embedding — cosine similarity mapped to [0, 1].

The final weight is the mean contribution over features present in both
rows.  This module provides the literal pairwise function (used in tests
and for small graphs); :mod:`repro.propagation.graph` provides the
vectorized blockwise top-k version for real corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import GraphError
from repro.features.schema import FeatureKind, FeatureSchema
from repro.features.table import MISSING, FeatureTable

__all__ = ["SimilarityConfig", "algorithm1_similarity", "numeric_ranges"]


@dataclass(frozen=True)
class SimilarityConfig:
    """Configuration for Algorithm-1 similarity.

    ``numeric_range`` maps numeric feature name -> value range used for
    normalization; features without an entry fall back to
    ``default_numeric_range``.  ``feature_weights`` optionally reweights
    individual features (default 1.0 each).
    """

    numeric_range: dict[str, float] = field(default_factory=dict)
    default_numeric_range: float = 1.0
    feature_weights: dict[str, float] = field(default_factory=dict)

    def range_for(self, name: str) -> float:
        value = self.numeric_range.get(name, self.default_numeric_range)
        if value <= 0:
            raise GraphError(f"numeric range for {name!r} must be positive")
        return value

    def weight_for(self, name: str) -> float:
        return self.feature_weights.get(name, 1.0)


def numeric_ranges(table: FeatureTable, quantile: float = 0.99) -> dict[str, float]:
    """Estimate per-feature normalization ranges from a reference table.

    Uses an inter-quantile range so outliers do not flatten the
    similarity of typical pairs.
    """
    ranges: dict[str, float] = {}
    for spec in table.schema.by_kind(FeatureKind.NUMERIC):
        values = np.array(
            [float(v) for v in table.column(spec.name) if v is not MISSING]
        )
        if values.size == 0:
            ranges[spec.name] = 1.0
            continue
        lo = float(np.quantile(values, 1.0 - quantile))
        hi = float(np.quantile(values, quantile))
        ranges[spec.name] = max(hi - lo, 1e-9)
    return ranges


def _categorical_similarity(a: frozenset, b: frozenset) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def _numeric_similarity(a: float, b: float, value_range: float) -> float:
    return float(np.clip(1.0 - abs(a - b) / value_range, 0.0, 1.0))


def _embedding_similarity(a: np.ndarray, b: np.ndarray) -> float:
    denom = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denom < 1e-12:
        return 0.0
    cosine = float(np.dot(a, b)) / denom
    return 0.5 * (cosine + 1.0)


def algorithm1_similarity(
    row_i: dict[str, object],
    row_j: dict[str, object],
    schema: FeatureSchema,
    config: SimilarityConfig | None = None,
) -> float:
    """Normalized Algorithm-1 weight between two feature rows.

    Only features present in *both* rows contribute (the paper computes
    weights over "the set of all features instantiated by F_i, F_j");
    returns 0.0 when the rows share no features.
    """
    config = config or SimilarityConfig()
    total = 0.0
    weight_sum = 0.0
    for spec in schema:
        vi = row_i.get(spec.name, MISSING)
        vj = row_j.get(spec.name, MISSING)
        if vi is MISSING or vj is MISSING:
            continue
        if spec.kind is FeatureKind.CATEGORICAL:
            sim = _categorical_similarity(vi, vj)  # type: ignore[arg-type]
        elif spec.kind is FeatureKind.NUMERIC:
            sim = _numeric_similarity(
                float(vi), float(vj), config.range_for(spec.name)  # type: ignore[arg-type]
            )
        else:
            sim = _embedding_similarity(
                np.asarray(vi, dtype=float), np.asarray(vj, dtype=float)
            )
        w = config.weight_for(spec.name)
        total += w * sim
        weight_sum += w
    if weight_sum == 0.0:
        return 0.0
    return total / weight_sum
