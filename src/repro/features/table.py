"""Columnar feature table, row-aligned with a corpus.

The table is the hand-off artifact between the feature-generation step
and everything downstream (LF application, itemset mining, label
propagation, vectorization).  Missing values (a feature that does not
exist for a point's modality) are stored as :data:`MISSING` (``None``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.core.exceptions import SchemaError
from repro.datagen.entities import Modality
from repro.features.schema import FeatureKind, FeatureSchema

__all__ = ["MISSING", "FeatureTable"]

#: sentinel for "feature not available for this point"
MISSING = None


class FeatureTable:
    """Columnar container of feature values for one corpus.

    Rows align 1:1 with the corpus the table was built from; ``labels``
    (when present) are ground truth for development/test corpora and are
    *never* populated for corpora the pipeline treats as unlabeled.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        columns: dict[str, list[object]],
        point_ids: Sequence[int],
        modalities: Sequence[Modality],
        labels: np.ndarray | None = None,
        degradation: object = None,
    ) -> None:
        self.schema = schema
        n_rows = len(point_ids)
        for name in schema.names:
            if name not in columns:
                raise SchemaError(f"missing column for feature {name!r}")
            if len(columns[name]) != n_rows:
                raise SchemaError(
                    f"column {name!r} has {len(columns[name])} rows, expected {n_rows}"
                )
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"columns not in schema: {sorted(extra)}")
        if labels is not None and len(labels) != n_rows:
            raise SchemaError(
                f"labels length {len(labels)} != row count {n_rows}"
            )
        self._columns = {name: list(columns[name]) for name in schema.names}
        self.point_ids = np.asarray(point_ids, dtype=np.int64)
        self.modalities = list(modalities)
        self.labels = None if labels is None else np.asarray(labels, dtype=np.int64)
        #: optional :class:`repro.resilience.policy.DegradationReport`
        #: describing how a resilient featurization run degraded; not
        #: propagated through derived tables (select/concat), which
        #: describe a different row/column universe.
        self.degradation = degradation

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.point_ids)

    @property
    def n_rows(self) -> int:
        return len(self.point_ids)

    @property
    def feature_names(self) -> list[str]:
        return self.schema.names

    def column(self, name: str) -> list[object]:
        """The raw value list for feature ``name`` (do not mutate)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown feature {name!r}") from None

    def value(self, row: int, name: str) -> object:
        return self.column(name)[row]

    def row(self, index: int) -> dict[str, object]:
        """Feature-name -> value mapping for one row."""
        return {name: col[index] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        for i in range(self.n_rows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def select_features(self, names: Iterable[str]) -> "FeatureTable":
        """Table restricted to ``names`` (schema order preserved)."""
        sub_schema = self.schema.subset(names)
        return FeatureTable(
            schema=sub_schema,
            columns={n: self._columns[n] for n in sub_schema.names},
            point_ids=self.point_ids,
            modalities=self.modalities,
            labels=self.labels,
        )

    def select_schema(self, schema: FeatureSchema) -> "FeatureTable":
        """Table restricted to the features present in ``schema``."""
        return self.select_features(schema.names)

    def select_rows(self, indices: Sequence[int] | np.ndarray) -> "FeatureTable":
        """Table restricted to the given row indices (in given order)."""
        idx = np.asarray(indices, dtype=np.int64)
        return FeatureTable(
            schema=self.schema,
            columns={
                name: [col[i] for i in idx] for name, col in self._columns.items()
            },
            point_ids=self.point_ids[idx],
            modalities=[self.modalities[i] for i in idx],
            labels=None if self.labels is None else self.labels[idx],
        )

    def with_labels(self, labels: np.ndarray | None) -> "FeatureTable":
        """Copy of the table with ``labels`` attached (or detached)."""
        return FeatureTable(
            schema=self.schema,
            columns=self._columns,
            point_ids=self.point_ids,
            modalities=self.modalities,
            labels=labels,
        )

    def with_feature(self, spec, values: Sequence[object]) -> "FeatureTable":
        """Copy of the table with one new feature column appended.

        Used to attach derived, nonservable features (e.g. the label-
        propagation score) to an existing table.
        """
        if len(values) != self.n_rows:
            raise SchemaError(
                f"new column has {len(values)} rows, expected {self.n_rows}"
            )
        schema = FeatureSchema(list(self.schema) + [spec])
        columns = dict(self._columns)
        columns[spec.name] = list(values)
        return FeatureTable(
            schema=schema,
            columns=columns,
            point_ids=self.point_ids,
            modalities=self.modalities,
            labels=self.labels,
        )

    def concat(self, other: "FeatureTable") -> "FeatureTable":
        """Row-wise concatenation over the union of feature schemas.

        Features absent from one side are filled with :data:`MISSING` —
        this is exactly the paper's early-fusion table construction
        ("features specific to certain data modalities are left empty").
        Labels are kept only if both sides have them.
        """
        schema = self.schema.union(other.schema)
        columns: dict[str, list[object]] = {}
        for name in schema.names:
            left = self._columns.get(name, [MISSING] * self.n_rows)
            right = other._columns.get(name, [MISSING] * other.n_rows)
            columns[name] = list(left) + list(right)
        labels = None
        if self.labels is not None and other.labels is not None:
            labels = np.concatenate([self.labels, other.labels])
        return FeatureTable(
            schema=schema,
            columns=columns,
            point_ids=np.concatenate([self.point_ids, other.point_ids]),
            modalities=self.modalities + other.modalities,
            labels=labels,
        )

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    def numeric_matrix(self, names: Iterable[str] | None = None) -> np.ndarray:
        """Stack numeric features into an (n_rows, k) float array with
        NaN for missing values."""
        if names is None:
            names = [s.name for s in self.schema.by_kind(FeatureKind.NUMERIC)]
        names = list(names)
        out = np.full((self.n_rows, len(names)), np.nan)
        for j, name in enumerate(names):
            if self.schema[name].kind is not FeatureKind.NUMERIC:
                raise SchemaError(f"feature {name!r} is not numeric")
            col = self._columns[name]
            for i, v in enumerate(col):
                if v is not MISSING:
                    out[i, j] = float(v)  # type: ignore[arg-type]
        return out

    def presence_fraction(self, name: str) -> float:
        """Fraction of rows where the feature is present."""
        col = self.column(name)
        if not col:
            return 0.0
        return sum(1 for v in col if v is not MISSING) / len(col)

    def summary(self) -> list[dict[str, object]]:
        """Per-feature presence / cardinality summary."""
        rows = []
        for spec in self.schema:
            col = self._columns[spec.name]
            present = [v for v in col if v is not MISSING]
            entry: dict[str, object] = {
                "feature": spec.name,
                "kind": spec.kind.value,
                "service_set": spec.service_set,
                "servable": spec.servable,
                "presence": round(len(present) / max(len(col), 1), 3),
            }
            if spec.kind is FeatureKind.CATEGORICAL and present:
                vocab = set()
                for v in present:
                    vocab.update(v)  # type: ignore[arg-type]
                entry["vocab_size"] = len(vocab)
            rows.append(entry)
        return rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeatureTable(n_rows={self.n_rows}, "
            f"n_features={len(self.schema)}, "
            f"labeled={self.labels is not None})"
        )
