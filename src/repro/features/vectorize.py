"""Vectorization of a :class:`FeatureTable` into a dense model matrix.

Categorical multivalent features become multi-hot columns over a vocab
learned at fit time (with an optional cap keeping the most frequent
values — production vocabularies in the paper reach several thousand
categories).  Numeric features are standardized.  Embedding features
pass through after per-dimension standardization.  Every feature also
contributes a *presence* column so models can distinguish "absent for
this modality" from "empty value" — the paper's early-fusion tables
leave modality-specific features empty for other modalities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.core.exceptions import NotFittedError, SchemaError
from repro.features.schema import FeatureKind, FeatureSchema
from repro.features.table import MISSING, FeatureTable

__all__ = ["Vectorizer", "FeatureSlice"]


@dataclass(frozen=True)
class FeatureSlice:
    """Column range of one feature inside the output matrix."""

    name: str
    start: int
    stop: int

    @property
    def width(self) -> int:
        return self.stop - self.start


class Vectorizer:
    """Fit on one table, transform any table with a compatible schema."""

    def __init__(
        self,
        schema: FeatureSchema,
        max_vocab: int = 512,
        min_count: int = 2,
        add_presence: bool = True,
    ) -> None:
        self.schema = schema
        self.max_vocab = max_vocab
        self.min_count = min_count
        self.add_presence = add_presence
        self._vocab: dict[str, dict[str, int]] = {}
        self._numeric_stats: dict[str, tuple[float, float]] = {}
        self._embedding_stats: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        self._embedding_dim: dict[str, int] = {}
        self._slices: list[FeatureSlice] | None = None
        self._n_columns = 0

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(self, table: FeatureTable) -> "Vectorizer":
        """Learn vocabularies and standardization statistics."""
        for spec in self.schema:
            if spec.name not in table.schema:
                raise SchemaError(
                    f"fit table lacks feature {spec.name!r} from the vectorizer schema"
                )
        offset = 0
        slices: list[FeatureSlice] = []
        for spec in self.schema:
            col = table.column(spec.name)
            if spec.kind is FeatureKind.CATEGORICAL:
                width = self._fit_categorical(spec.name, col)
            elif spec.kind is FeatureKind.NUMERIC:
                width = self._fit_numeric(spec.name, col)
            else:
                width = self._fit_embedding(spec.name, col)
            if self.add_presence:
                width += 1
            slices.append(FeatureSlice(spec.name, offset, offset + width))
            offset += width
        self._slices = slices
        self._n_columns = offset
        return self

    def _fit_categorical(self, name: str, col: list[object]) -> int:
        counts: Counter[str] = Counter()
        for value in col:
            if value is not MISSING:
                counts.update(value)  # type: ignore[arg-type]
        # min_count filter BEFORE the vocab cap, and a deterministic
        # (-count, token) order: the cap keeps the most frequent
        # eligible tokens, with ties broken lexicographically so the
        # vocab is invariant under corpus row order.
        eligible = sorted(
            (
                (token, count)
                for token, count in counts.items()
                if count >= self.min_count
            ),
            key=lambda tc: (-tc[1], tc[0]),
        )
        kept = [token for token, _ in eligible[: self.max_vocab]]
        self._vocab[name] = {token: i for i, token in enumerate(sorted(kept))}
        return len(self._vocab[name])

    def _fit_numeric(self, name: str, col: list[object]) -> int:
        values = np.array(
            [float(v) for v in col if v is not MISSING], dtype=float  # type: ignore[arg-type]
        )
        if values.size == 0:
            mean, std = 0.0, 1.0
        else:
            mean = float(values.mean())
            std = float(values.std())
            if std < 1e-9:
                std = 1.0
        self._numeric_stats[name] = (mean, std)
        return 1

    def _fit_embedding(self, name: str, col: list[object]) -> int:
        rows = [v for v in col if v is not MISSING]
        if not rows:
            raise SchemaError(
                f"embedding feature {name!r} has no present values in the fit table"
            )
        matrix = np.stack(rows)  # type: ignore[arg-type]
        mean = matrix.mean(axis=0)
        std = matrix.std(axis=0)
        std[std < 1e-9] = 1.0
        self._embedding_stats[name] = (mean, std)
        self._embedding_dim[name] = matrix.shape[1]
        return matrix.shape[1]

    # ------------------------------------------------------------------
    # transforming
    # ------------------------------------------------------------------
    @property
    def n_columns(self) -> int:
        if self._slices is None:
            raise NotFittedError("Vectorizer.fit has not been called")
        return self._n_columns

    @property
    def slices(self) -> list[FeatureSlice]:
        if self._slices is None:
            raise NotFittedError("Vectorizer.fit has not been called")
        return list(self._slices)

    def slice_for(self, name: str) -> FeatureSlice:
        for sl in self.slices:
            if sl.name == name:
                return sl
        raise SchemaError(f"feature {name!r} not in vectorizer schema")

    def transform(self, table: FeatureTable) -> np.ndarray:
        """Vectorize ``table`` into an (n_rows, n_columns) float32 matrix.

        Features missing from the table's schema entirely are treated as
        absent for every row (all-zero block, presence 0) — this is what
        lets a text-only table be transformed by a vectorizer fit on a
        joint text+image table.
        """
        if self._slices is None:
            raise NotFittedError("Vectorizer.fit has not been called")
        with obs.span(
            "vectorize.transform", n_rows=table.n_rows, n_columns=self._n_columns
        ) as sp:
            out = np.zeros((table.n_rows, self._n_columns), dtype=np.float32)
            for sl in self._slices:
                if sl.name not in table.schema:
                    continue
                spec = self.schema[sl.name]
                incoming_kind = table.schema[sl.name].kind
                if incoming_kind is not spec.kind:
                    raise SchemaError(
                        f"feature {sl.name!r} was fit as {spec.kind.name} but the "
                        f"incoming table declares it {incoming_kind.name}"
                    )
                col = table.column(sl.name)
                value_stop = sl.stop - (1 if self.add_presence else 0)
                present = np.fromiter(
                    (v is not MISSING for v in col), dtype=bool, count=len(col)
                )
                if spec.kind is FeatureKind.CATEGORICAL:
                    vocab = self._vocab[sl.name]
                    for i in np.flatnonzero(present):
                        for token in col[i]:  # type: ignore[union-attr]
                            j = vocab.get(token)
                            if j is not None:
                                out[i, sl.start + j] = 1.0
                elif spec.kind is FeatureKind.NUMERIC:
                    mean, std = self._numeric_stats[sl.name]
                    values = np.fromiter(
                        (float(col[i]) for i in np.flatnonzero(present)),  # type: ignore[arg-type]
                        dtype=float,
                        count=int(present.sum()),
                    )
                    out[present, sl.start] = (values - mean) / std
                else:
                    mean_vec, std_vec = self._embedding_stats[sl.name]
                    dim = self._embedding_dim[sl.name]
                    rows_idx = np.flatnonzero(present)
                    if rows_idx.size:
                        vecs = [np.asarray(col[i], dtype=float) for i in rows_idx]
                        for vec in vecs:
                            if vec.shape[0] != dim:
                                raise SchemaError(
                                    f"embedding {sl.name!r} has dim {vec.shape[0]}, "
                                    f"expected {dim}"
                                )
                        block = (np.stack(vecs) - mean_vec) / std_vec
                        out[rows_idx, sl.start:value_stop] = block
                if self.add_presence:
                    out[present, value_stop] = 1.0
            sp.add_counter("cells", int(out.shape[0]) * int(out.shape[1]))
        return out

    def fit_transform(self, table: FeatureTable) -> np.ndarray:
        return self.fit(table).transform(table)

    def vocabulary(self, name: str) -> dict[str, int]:
        """The learned token -> column-offset map for a categorical
        feature."""
        if self._slices is None:
            raise NotFittedError("Vectorizer.fit has not been called")
        try:
            return dict(self._vocab[name])
        except KeyError:
            raise SchemaError(
                f"feature {name!r} is not a fitted categorical feature"
            ) from None

    def column_names(self) -> list[str]:
        """Human-readable name per output column (for debugging and
        feature attribution)."""
        names: list[str] = [""] * self.n_columns
        for sl in self.slices:
            spec = self.schema[sl.name]
            value_stop = sl.stop - (1 if self.add_presence else 0)
            if spec.kind is FeatureKind.CATEGORICAL:
                for token, j in self._vocab[sl.name].items():
                    names[sl.start + j] = f"{sl.name}={token}"
            elif spec.kind is FeatureKind.NUMERIC:
                names[sl.start] = sl.name
            else:
                for d in range(value_stop - sl.start):
                    names[sl.start + d] = f"{sl.name}[{d}]"
            if self.add_presence:
                names[value_stop] = f"{sl.name}#present"
        return names
