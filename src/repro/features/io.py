"""Serialization of feature tables (JSON-based, dependency-free).

Production pipelines hand featurized tables between teams and steps
(the split architecture's well-defined artifacts); this module gives
the :class:`~repro.features.table.FeatureTable` a stable on-disk form.

Format: a single JSON document with the schema, point ids, modalities,
labels, and per-feature columns.  Embeddings are stored as nested
lists; missing values as ``null``.  Round-trips exactly (floats via
JSON's double precision).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.atomicio import atomic_write_json
from repro.core.exceptions import SchemaError
from repro.datagen.entities import Modality
from repro.features.schema import FeatureKind, FeatureSchema, FeatureSpec
from repro.features.table import MISSING, FeatureTable

__all__ = ["save_table", "load_table", "table_to_dict", "table_from_dict"]

_FORMAT_VERSION = 1


def _spec_to_dict(spec: FeatureSpec) -> dict:
    return {
        "name": spec.name,
        "kind": spec.kind.value,
        "servable": spec.servable,
        "service_set": spec.service_set,
        "modalities": (
            None
            if spec.modalities is None
            else sorted(m.value for m in spec.modalities)
        ),
        "description": spec.description,
    }


def _spec_from_dict(data: dict) -> FeatureSpec:
    return FeatureSpec(
        name=data["name"],
        kind=FeatureKind(data["kind"]),
        servable=data["servable"],
        service_set=data["service_set"],
        modalities=(
            None
            if data["modalities"] is None
            else frozenset(Modality(m) for m in data["modalities"])
        ),
        description=data.get("description", ""),
    )


def _encode_value(kind: FeatureKind, value: object) -> object:
    if value is MISSING:
        return None
    if kind is FeatureKind.CATEGORICAL:
        return sorted(value)  # type: ignore[arg-type]
    if kind is FeatureKind.NUMERIC:
        return float(value)  # type: ignore[arg-type]
    return np.asarray(value, dtype=float).tolist()


def _decode_value(kind: FeatureKind, value: object) -> object:
    if value is None:
        return MISSING
    if kind is FeatureKind.CATEGORICAL:
        return frozenset(value)  # type: ignore[arg-type]
    if kind is FeatureKind.NUMERIC:
        return float(value)  # type: ignore[arg-type]
    return np.asarray(value, dtype=float)


def table_to_dict(table: FeatureTable) -> dict:
    """JSON-serializable dictionary form of a feature table."""
    return {
        "format_version": _FORMAT_VERSION,
        "schema": [_spec_to_dict(s) for s in table.schema],
        "point_ids": table.point_ids.tolist(),
        "modalities": [m.value for m in table.modalities],
        "labels": None if table.labels is None else table.labels.tolist(),
        "columns": {
            spec.name: [
                _encode_value(spec.kind, v) for v in table.column(spec.name)
            ]
            for spec in table.schema
        },
    }


def table_from_dict(data: dict) -> FeatureTable:
    """Inverse of :func:`table_to_dict`.

    Validates the format version first and converts structural defects
    (missing keys, wrong value shapes) into :class:`SchemaError` with
    the offending field named, rather than leaking a bare ``KeyError``.
    """
    if not isinstance(data, dict):
        raise SchemaError(
            f"feature-table document must be a JSON object, got {type(data).__name__}"
        )
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise SchemaError(
            f"unsupported feature-table format version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    try:
        schema = FeatureSchema(_spec_from_dict(s) for s in data["schema"])
        columns = {
            spec.name: [
                _decode_value(spec.kind, v) for v in data["columns"][spec.name]
            ]
            for spec in schema
        }
        return FeatureTable(
            schema=schema,
            columns=columns,
            point_ids=data["point_ids"],
            modalities=[Modality(m) for m in data["modalities"]],
            labels=None if data["labels"] is None else np.asarray(data["labels"]),
        )
    except SchemaError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(
            f"malformed feature-table document: {type(exc).__name__}: {exc}"
        ) from exc


def save_table(table: FeatureTable, path: str | Path) -> None:
    """Write a feature table to ``path`` as JSON.

    The write is atomic (temp file + fsync + rename): a crash mid-write
    leaves the previous file (or no file), never a truncated document.
    """
    atomic_write_json(Path(path), table_to_dict(table))


def load_table(path: str | Path) -> FeatureTable:
    """Read a feature table written by :func:`save_table`.

    Raises :class:`SchemaError` for truncated or non-JSON content and
    for any structural defect, so callers can distinguish "corrupt
    artifact" from an OS-level read failure.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SchemaError(
                f"feature-table file {path} is not valid JSON "
                f"(truncated write?): {exc}"
            ) from exc
    return table_from_dict(data)
