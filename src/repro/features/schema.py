"""Feature schema: names, kinds, servability, and service-set grouping.

The paper groups its 15 organizational-resource features into four
service sets (A: URL-based, B: keyword-based, C: topic-model-based,
D: page-content-based), marks two of them *nonservable* (usable for
training-data curation but not in the deployed model), and gives images
three extra modality-specific features.  :class:`FeatureSchema` encodes
all of that so pipeline steps can select exactly the features an
experiment calls for (e.g. "T + AB, LFs over ABCD").
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.core.exceptions import SchemaError
from repro.datagen.entities import Modality

__all__ = ["FeatureKind", "FeatureSpec", "FeatureSchema"]


class FeatureKind(enum.Enum):
    """The type of value a feature holds per data point."""

    #: multivalent categorical: a (possibly empty) set of string tokens
    CATEGORICAL = "categorical"
    #: a single float
    NUMERIC = "numeric"
    #: a fixed-length float vector (pretrained embedding)
    EMBEDDING = "embedding"


@dataclass(frozen=True)
class FeatureSpec:
    """Description of one feature in the common feature space.

    Attributes
    ----------
    name:
        Unique feature name (also the owning resource's feature name).
    kind:
        Value type; see :class:`FeatureKind`.
    servable:
        Whether the feature can be computed at inference time.  The
        paper uses nonservable features for labeling functions and label
        propagation only (§4.1, §6.4).
    service_set:
        ``"A"``/``"B"``/``"C"``/``"D"`` per the paper, or another tag
        for features outside the four sets (e.g. image-specific ones).
    modalities:
        Modalities the feature exists for, or ``None`` for all.
    description:
        Human-readable provenance.
    """

    name: str
    kind: FeatureKind
    servable: bool = True
    service_set: str | None = None
    modalities: frozenset[Modality] | None = None
    description: str = ""

    def available_for(self, modality: Modality) -> bool:
        """Whether this feature exists for points of ``modality``."""
        return self.modalities is None or modality in self.modalities


class FeatureSchema:
    """An ordered collection of :class:`FeatureSpec` with set algebra."""

    def __init__(self, specs: Iterable[FeatureSpec] = ()) -> None:
        self._specs: dict[str, FeatureSpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: FeatureSpec) -> None:
        if spec.name in self._specs:
            raise SchemaError(f"duplicate feature name {spec.name!r}")
        self._specs[spec.name] = spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FeatureSpec]:
        return iter(self._specs.values())

    def __getitem__(self, name: str) -> FeatureSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise SchemaError(f"unknown feature {name!r}") from None

    @property
    def names(self) -> list[str]:
        return list(self._specs)

    def by_kind(self, kind: FeatureKind) -> list[FeatureSpec]:
        return [s for s in self if s.kind is kind]

    def subset(self, names: Iterable[str]) -> "FeatureSchema":
        """Schema restricted to ``names`` (order follows this schema)."""
        wanted = set(names)
        unknown = wanted - set(self._specs)
        if unknown:
            raise SchemaError(f"unknown features: {sorted(unknown)}")
        return FeatureSchema(s for s in self if s.name in wanted)

    def select(
        self,
        service_sets: Iterable[str] | None = None,
        servable_only: bool = False,
        modality: Modality | None = None,
        include_sets: Iterable[str] = (),
    ) -> "FeatureSchema":
        """Filter by service set / servability / modality availability.

        ``service_sets=None`` keeps every set; otherwise only features
        whose ``service_set`` is listed (plus any in ``include_sets``,
        useful for always keeping e.g. image-specific features).
        """
        keep_sets = None if service_sets is None else set(service_sets) | set(include_sets)
        specs = []
        for spec in self:
            if keep_sets is not None and spec.service_set not in keep_sets:
                continue
            if servable_only and not spec.servable:
                continue
            if modality is not None and not spec.available_for(modality):
                continue
            specs.append(spec)
        return FeatureSchema(specs)

    def service_sets(self) -> list[str]:
        """Sorted distinct service-set tags present in the schema."""
        return sorted({s.service_set for s in self if s.service_set is not None})

    def union(self, other: "FeatureSchema") -> "FeatureSchema":
        """Schema with this schema's features followed by new ones from
        ``other`` (specs with the same name must be identical)."""
        merged = FeatureSchema(self)
        for spec in other:
            if spec.name in merged:
                if merged[spec.name] != spec:
                    raise SchemaError(
                        f"conflicting specs for feature {spec.name!r}"
                    )
                continue
            merged.add(spec)
        return merged

    def validate_value(self, name: str, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` is ill-typed for the
        feature (``None`` — missing — is always allowed)."""
        if value is None:
            return
        spec = self[name]
        if spec.kind is FeatureKind.CATEGORICAL:
            ok = isinstance(value, frozenset) and all(
                isinstance(v, str) for v in value
            )
            if not ok:
                raise SchemaError(
                    f"feature {name!r} expects frozenset[str], got {type(value).__name__}"
                )
        elif spec.kind is FeatureKind.NUMERIC:
            if not isinstance(value, (int, float)):
                raise SchemaError(
                    f"feature {name!r} expects a number, got {type(value).__name__}"
                )
        elif spec.kind is FeatureKind.EMBEDDING:
            import numpy as np

            if not isinstance(value, np.ndarray) or value.ndim != 1:
                raise SchemaError(
                    f"feature {name!r} expects a 1-D ndarray, got {type(value).__name__}"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FeatureSchema({self.names})"
