"""Streaming label propagation (Expander-style approximation).

The paper runs label propagation on Expander, a "large-scale
graph-based machine learning platform for streaming, distributed label
propagation" [Ravi & Diao 2016].  The streaming approximation updates
each node's distribution from its neighbours' *current* estimates in a
fixed number of asynchronous sweeps over the node stream, instead of
iterating a synchronous operator to convergence.  It trades a little
accuracy for a bounded, single-digit number of passes — the ablation
bench quantifies the gap against the exact solver.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.propagation.graph import SimilarityGraph
from repro.propagation.propagate import PropagationResult

__all__ = ["StreamingLabelPropagation"]


class StreamingLabelPropagation:
    """Fixed-sweep asynchronous (Gauss–Seidel) label propagation."""

    def __init__(self, n_sweeps: int = 3, prior: float = 0.5) -> None:
        if n_sweeps < 1:
            raise GraphError(f"n_sweeps must be >= 1, got {n_sweeps}")
        self.n_sweeps = n_sweeps
        self.prior = prior

    def run(
        self,
        graph: SimilarityGraph,
        seed_indices: np.ndarray,
        seed_labels: np.ndarray,
    ) -> PropagationResult:
        n = graph.n_nodes
        seed_indices = np.asarray(seed_indices, dtype=np.int64)
        seed_labels = np.asarray(seed_labels, dtype=np.int64)
        if len(seed_indices) == 0:
            raise GraphError("label propagation requires at least one seed")

        is_seed = np.zeros(n, dtype=bool)
        is_seed[seed_indices] = True
        scores = np.full(n, self.prior)
        scores[seed_indices] = seed_labels.astype(float)
        reached = is_seed.copy()

        W = graph.adjacency
        indptr, indices, data = W.indptr, W.indices, W.data
        for _ in range(self.n_sweeps):
            # stream nodes in index order; each unlabeled node averages
            # its neighbours' *latest* scores (asynchronous update)
            for node in range(n):
                if is_seed[node]:
                    continue
                start, stop = indptr[node], indptr[node + 1]
                if start == stop:
                    continue
                neigh = indices[start:stop]
                weights = data[start:stop]
                total = weights.sum()
                if total <= 0:
                    continue
                scores[node] = float(weights @ scores[neigh] / total)
                if reached[neigh].any():
                    reached[node] = True
        scores = np.clip(scores, 0.0, 1.0)
        scores[~reached] = self.prior
        return PropagationResult(
            scores=scores,
            n_iterations=self.n_sweeps,
            converged=False,
            reached=reached,
        )
