"""Turn propagation scores into labeling functions (paper §4.4).

The converged score "is used to construct a threshold-based LF, but can
also be used as a form of probabilistic label", with thresholds tuned
on "a development set of labeled examples in existing modalities".  The
score is attached to the feature table as a *nonservable* numeric
feature (running propagation at serving time is too costly), and two
threshold LFs are emitted: high score -> positive, low score ->
negative.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import GraphError
from repro.features.schema import FeatureKind, FeatureSpec
from repro.labeling.lf import NEGATIVE, POSITIVE, LabelingFunction, numeric_threshold_lf

__all__ = ["PROPAGATION_FEATURE", "propagation_feature_spec", "propagation_lfs", "tune_threshold"]

#: reserved feature name for the propagation score column
PROPAGATION_FEATURE = "label_prop_score"


def propagation_feature_spec() -> FeatureSpec:
    """Spec for the propagation-score feature (nonservable numeric)."""
    return FeatureSpec(
        name=PROPAGATION_FEATURE,
        kind=FeatureKind.NUMERIC,
        servable=False,
        service_set="PROP",
        description="converged label-propagation score (nonservable)",
    )


def tune_threshold(
    dev_scores: np.ndarray,
    dev_labels: np.ndarray,
    target_precision: float,
    polarity: int,
    min_matches: int = 10,
) -> float | None:
    """Find the loosest threshold achieving ``target_precision`` on dev.

    For ``polarity`` POSITIVE, candidates are "score >= t" rules and
    precision is measured against positives; for NEGATIVE, "score <= t"
    rules against negatives.  Returns ``None`` when no threshold with at
    least ``min_matches`` dev matches reaches the target.
    """
    dev_scores = np.asarray(dev_scores, dtype=float)
    dev_labels = np.asarray(dev_labels, dtype=int)
    if dev_scores.shape != dev_labels.shape:
        raise GraphError("dev scores and labels must align")
    order = np.argsort(-dev_scores if polarity == POSITIVE else dev_scores)
    sorted_labels = dev_labels[order]
    sorted_scores = dev_scores[order]
    target_class = 1 if polarity == POSITIVE else 0
    hits = np.cumsum(sorted_labels == target_class)
    counts = np.arange(1, len(sorted_labels) + 1)
    precision = hits / counts
    valid = (precision >= target_precision) & (counts >= min_matches)
    if not valid.any():
        return None
    # loosest threshold = furthest point down the ranking still valid
    last = int(np.flatnonzero(valid)[-1])
    return float(sorted_scores[last])


def propagation_lfs(
    dev_scores: np.ndarray,
    dev_labels: np.ndarray,
    positive_precisions: tuple[float, ...] = (0.9, 0.75, 0.6),
    negative_precisions: tuple[float, ...] = (0.999, 0.995, 0.985),
    feature: str = PROPAGATION_FEATURE,
) -> list[LabelingFunction]:
    """Build graded propagation threshold LFs.

    One positive LF per precision target (nested thresholds give the
    label model a *graded* view of the propagation score, which the
    paper notes "can also be used as a form of probabilistic label"),
    and symmetrically for negatives.  ``dev_scores`` must come from
    labeled old-modality points that were *held out of the seed set*
    (clamped seeds trivially score their own label, so tuning on them
    would be degenerate).
    """
    lfs: list[LabelingFunction] = []
    seen: set[float] = set()
    for target in positive_precisions:
        upper = tune_threshold(dev_scores, dev_labels, target, POSITIVE)
        if upper is None or upper in seen:
            continue
        seen.add(upper)
        lfs.append(
            numeric_threshold_lf(
                f"prop_pos[p{int(target * 100)}]",
                feature,
                upper,
                POSITIVE,
                direction="above",
                origin="propagation",
            )
        )
    seen.clear()
    for target in negative_precisions:
        lower = tune_threshold(dev_scores, dev_labels, target, NEGATIVE)
        if lower is None or lower in seen:
            continue
        seen.add(lower)
        lfs.append(
            numeric_threshold_lf(
                f"prop_neg[p{round(target * 100, 1)}]",
                feature,
                lower,
                NEGATIVE,
                direction="below",
                origin="propagation",
            )
        )
    return lfs
