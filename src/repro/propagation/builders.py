"""Pluggable kNN graph builders: exact oracle, LSH, and NN-descent.

A :class:`GraphBuilder` decides *which* node pairs are considered for
the kNN graph; every backend scores its candidate pairs with the exact
Algorithm-1 similarity (:func:`repro.propagation.graph.score_pairs`),
so approximation changes the candidate set only — never the weight of
a surviving edge.

* ``exact`` — the blockwise O(n²) sweep (the recall oracle).
* ``lsh`` — random-hyperplane signatures over embedding channels and
  minhash banding over categorical channels; nodes sharing a bucket in
  any hash table become candidates.  O(n · tables · candidates).
* ``nn-descent`` — neighbour lists seeded at random and refined by
  local joins (neighbours-of-neighbours, forward and reverse), the
  classic NN-descent iteration [Dong et al., WWW 2011].
  O(n · k · sample · iters).

Determinism contract: every random decision draws from an RNG stream
derived from ``(config.seed, stage, shard)``.  Shards are fixed by
``(n, block_size)`` — not by the executor's worker count — and shard
results merge in shard order, so for a fixed seed each backend's graph
is byte-identical across the serial/thread/process executors and
across runs.  Because approximation changes *results* (unlike exec
backends), run fingerprints must include the graph backend and its
parameters; see ``CrossModalPipeline.graph_config``.

Custom backends register via :func:`register_graph_backend` and become
selectable through ``GraphConfig.backend``.
"""

from __future__ import annotations

import abc

import numpy as np

import repro.obs as obs
from repro.core.exceptions import GraphError
from repro.core.rng import derive_seed
from repro.exec import Executor
from repro.features.schema import FeatureKind

__all__ = [
    "GRAPH_BACKENDS",
    "GraphBuilder",
    "ExactGraphBuilder",
    "LSHGraphBuilder",
    "NNDescentGraphBuilder",
    "get_graph_builder",
    "register_graph_backend",
]

#: registry of backend name -> builder class (see register_graph_backend)
GRAPH_BACKENDS: dict[str, type["GraphBuilder"]] = {}

#: sentinel minhash value for present-but-empty categorical sets, so
#: all-empty sets (Jaccard 1 with each other) share a bucket
_EMPTY_SET_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)

_MIX = np.uint64(0x9E3779B97F4A7C15)


def register_graph_backend(name: str):
    """Class decorator registering a :class:`GraphBuilder` under ``name``."""

    def decorate(cls: type["GraphBuilder"]) -> type["GraphBuilder"]:
        cls.name = name
        GRAPH_BACKENDS[name] = cls
        return cls

    return decorate


def get_graph_builder(name: str) -> "GraphBuilder":
    """Instantiate the registered builder for ``name``."""
    try:
        cls = GRAPH_BACKENDS[name]
    except KeyError:
        raise GraphError(
            f"unknown graph backend {name!r}; available: {sorted(GRAPH_BACKENDS)}"
        ) from None
    return cls()


class GraphBuilder(abc.ABC):
    """Backend contract: produce a symmetric kNN similarity graph.

    ``channels`` are the precomputed per-feature arrays, ``n`` the node
    count, ``k`` the (already clamped) neighbour count.  Builders must
    honour the determinism contract in the module docstring and score
    every edge with the exact Algorithm-1 similarity.
    """

    name: str = "?"

    @abc.abstractmethod
    def build(self, channels, n, k, config, executor: Executor, span):
        """Return a :class:`~repro.propagation.graph.SimilarityGraph`."""


# ----------------------------------------------------------------------
# exact (oracle) backend — the original blockwise O(n²) sweep
# ----------------------------------------------------------------------
@register_graph_backend("exact")
class ExactGraphBuilder(GraphBuilder):
    """Blockwise dense sweep over every pair; bit-identical to the
    pre-backend implementation and the recall oracle for the others."""

    def build(self, channels, n, k, config, executor, span):
        from repro.propagation.graph import (
            _edges_to_graph,
            _GraphBlockTask,
            _shard_bounds,
        )

        bounds = _shard_bounds(n, config.block_size)
        task = _GraphBlockTask(channels, n, k, config.min_weight)
        rows_out: list[np.ndarray] = []
        cols_out: list[np.ndarray] = []
        weights_out: list[np.ndarray] = []
        with obs.span("graph.score"):
            for block_rows, block_cols, block_weights, n_below in (
                executor.imap_ordered(task, bounds)
            ):
                span.add_counter("blocks", 1)
                span.add_counter("edges_below_min_weight", n_below)
                rows_out.append(block_rows)
                cols_out.append(block_cols)
                weights_out.append(block_weights)
        with obs.span("graph.symmetrize"):
            return _edges_to_graph(
                np.concatenate(rows_out),
                np.concatenate(cols_out),
                np.concatenate(weights_out),
                n,
            )


# ----------------------------------------------------------------------
# shared: score per-node candidate lists and keep the top-k
# ----------------------------------------------------------------------
def _top_k_edges(
    channels,
    node_ids: np.ndarray,
    cand_offsets: np.ndarray,
    cand_flat: np.ndarray,
    k: int,
    min_weight: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact-score each node's candidate list, keep its best ``k``.

    ``cand_flat[cand_offsets[i]:cand_offsets[i+1]]`` are the candidate
    neighbours of ``node_ids[i]``.  Ties break on the smaller neighbour
    index so the selection is order-independent.
    """
    from repro.propagation.graph import score_pairs

    pair_rows = np.repeat(node_ids, np.diff(cand_offsets))
    weights = score_pairs(channels, pair_rows, cand_flat)
    rows_out: list[np.ndarray] = []
    cols_out: list[np.ndarray] = []
    wts_out: list[np.ndarray] = []
    for i, node in enumerate(node_ids):
        lo, hi = cand_offsets[i], cand_offsets[i + 1]
        if lo == hi:
            continue
        cand = cand_flat[lo:hi]
        wts = weights[lo:hi]
        order = np.lexsort((cand, -wts))[:k]
        keep_idx = order[wts[order] >= min_weight]
        if len(keep_idx) == 0:
            continue
        rows_out.append(np.full(len(keep_idx), node, dtype=np.int64))
        cols_out.append(cand[keep_idx].astype(np.int64))
        wts_out.append(wts[keep_idx].astype(np.float64))
    if not rows_out:
        empty = np.empty(0)
        return empty.astype(np.int64), empty.astype(np.int64), empty
    return (
        np.concatenate(rows_out),
        np.concatenate(cols_out),
        np.concatenate(wts_out),
    )


# ----------------------------------------------------------------------
# LSH backend
# ----------------------------------------------------------------------
class _LSHSignatureTask:
    """Per-shard bucket-key computation (picklable, pure).

    For each hashing channel a node gets one ``uint64`` key per hash
    table: packed random-hyperplane sign bits for embedding channels,
    mixed minhash rows for categorical channels.
    """

    __slots__ = ("channels", "plans")

    def __init__(self, channels, plans) -> None:
        self.channels = channels
        self.plans = plans

    def __call__(self, bounds: tuple[int, int]) -> list[np.ndarray]:
        start, stop = bounds
        keys: list[np.ndarray] = []
        for channel_idx, plan in self.plans:
            channel = self.channels[channel_idx]
            if channel.kind is FeatureKind.EMBEDDING:
                keys.append(_embedding_keys(channel, plan, start, stop))
            else:
                keys.append(_minhash_keys(channel, plan, start, stop))
        return keys


def _embedding_keys(channel, planes: np.ndarray, start: int, stop: int) -> np.ndarray:
    """(b, tables) uint64 keys from packed hyperplane sign bits.

    ``planes`` has shape (tables, bits, dim)."""
    n_tables, bits, dim = planes.shape
    block = channel.matrix[start:stop]
    signs = (
        block @ planes.reshape(n_tables * bits, dim).T >= 0.0
    ).reshape(-1, n_tables, bits)
    powers = (np.uint64(1) << np.arange(bits, dtype=np.uint64))
    return signs.astype(np.uint64) @ powers


def _minhash_keys(
    channel, coeffs: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """(b, tables) uint64 keys: ``band_rows`` minhash rows mixed per table.

    ``coeffs`` has shape (tables, band_rows, 2) holding the (a, b) of
    each universal hash ``h(t) = a * (t + 1) + b`` over uint64 (natural
    wraparound).  Present-but-empty sets map to a shared sentinel so
    pairs of empty sets (Jaccard 1) stay candidates.
    """
    binary = channel.binary
    indptr = binary.indptr[start:stop + 1]
    tokens = binary.indices[indptr[0]:indptr[-1]].astype(np.uint64) + np.uint64(1)
    starts = (indptr[:-1] - indptr[0]).astype(np.int64)
    lengths = np.diff(indptr)
    b = stop - start
    n_tables, band_rows = coeffs.shape[0], coeffs.shape[1]
    keys = np.zeros((b, n_tables), dtype=np.uint64)
    empty = lengths == 0
    for t in range(n_tables):
        acc = np.full(b, _EMPTY_SET_SENTINEL, dtype=np.uint64)
        for r in range(band_rows):
            a_coef, b_coef = coeffs[t, r]
            hashed = a_coef * tokens + b_coef
            if len(tokens):
                # reduceat needs in-range starts; empty rows are fixed
                # up with the sentinel below
                safe_starts = np.minimum(starts, len(tokens) - 1)
                row_min = np.minimum.reduceat(hashed, safe_starts)
            else:
                row_min = np.zeros(b, dtype=np.uint64)
            row_min = row_min.astype(np.uint64)
            row_min[empty] = _EMPTY_SET_SENTINEL
            acc = acc * _MIX + row_min
        keys[:, t] = acc
    return keys


class _LSHScoreTask:
    """Per-shard candidate gather + exact scoring (picklable, pure).

    A node's candidates are the members of every bucket it belongs to.
    Oversized candidate sets keep the ``max_candidates`` nodes with the
    most shared buckets (collision count — the standard LSH candidate
    ranking): true neighbours collide in many tables while members of
    big uninformative buckets collide in few, so the cap sheds junk
    first.  Ties break on the smaller index; the whole pass is
    deterministic.
    """

    __slots__ = (
        "channels", "bucket_members", "node_bucket_indptr",
        "node_bucket_flat", "k", "min_weight", "max_candidates",
    )

    def __init__(
        self, channels, bucket_members, node_bucket_indptr, node_bucket_flat,
        k, min_weight, max_candidates,
    ) -> None:
        self.channels = channels
        self.bucket_members = bucket_members
        self.node_bucket_indptr = node_bucket_indptr
        self.node_bucket_flat = node_bucket_flat
        self.k = k
        self.min_weight = min_weight
        self.max_candidates = max_candidates

    def __call__(
        self, shard: tuple[int, tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        shard_index, (start, stop) = shard
        node_ids: list[int] = []
        cand_lists: list[np.ndarray] = []
        n_capped = 0
        for node in range(start, stop):
            lo = self.node_bucket_indptr[node]
            hi = self.node_bucket_indptr[node + 1]
            if lo == hi:
                continue
            members = np.concatenate(
                [self.bucket_members[b] for b in self.node_bucket_flat[lo:hi]]
            )
            cand, counts = np.unique(members, return_counts=True)
            keep = cand != node
            cand, counts = cand[keep], counts[keep]
            if len(cand) == 0:
                continue
            if len(cand) > self.max_candidates:
                order = np.lexsort((cand, -counts))[: self.max_candidates]
                cand = np.sort(cand[order])
                n_capped += 1
            node_ids.append(node)
            cand_lists.append(cand)
        if not node_ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.empty(0), 0
        offsets = np.zeros(len(cand_lists) + 1, dtype=np.int64)
        np.cumsum([len(c) for c in cand_lists], out=offsets[1:])
        rows, cols, wts = _top_k_edges(
            self.channels,
            np.asarray(node_ids, dtype=np.int64),
            offsets,
            np.concatenate(cand_lists),
            self.k,
            self.min_weight,
        )
        return rows, cols, wts, n_capped


@register_graph_backend("lsh")
class LSHGraphBuilder(GraphBuilder):
    """Random-hyperplane / minhash-banding candidate generation.

    Requires at least one embedding or categorical channel (numeric
    channels contribute to edge weights but cannot be hashed)."""

    def build(self, channels, n, k, config, executor, span):
        from repro.propagation.graph import _edges_to_graph, _shard_bounds

        plans = self._sample_plans(channels, config)
        if not plans:
            raise GraphError(
                "lsh backend needs at least one categorical or embedding "
                "feature to hash; use backend='exact' for purely numeric tables"
            )
        bounds = _shard_bounds(n, config.block_size)

        with obs.span("graph.hash", n_tables=config.lsh_tables):
            sig_task = _LSHSignatureTask(channels, plans)
            shard_keys = list(executor.imap_ordered(sig_task, bounds))
        # (n, tables) keys per hashing channel, merged in shard order
        channel_keys = [
            np.concatenate([keys[c] for keys in shard_keys])
            for c in range(len(plans))
        ]

        with obs.span("graph.bucket") as bucket_span:
            bucket_members, node_bucket_indptr, node_bucket_flat = (
                self._build_buckets(channels, plans, channel_keys, n, config)
            )
            bucket_span.set_gauge("n_buckets", len(bucket_members))

        with obs.span("graph.score"):
            score_task = _LSHScoreTask(
                channels, bucket_members, node_bucket_indptr, node_bucket_flat,
                k, config.min_weight, config.lsh_max_candidates,
            )
            shards = list(enumerate(bounds))
            rows_out, cols_out, wts_out = [], [], []
            for rows, cols, wts, n_capped in executor.imap_ordered(
                score_task, shards
            ):
                span.add_counter("candidate_capped_nodes", n_capped)
                rows_out.append(rows)
                cols_out.append(cols)
                wts_out.append(wts)
        with obs.span("graph.symmetrize"):
            return _edges_to_graph(
                np.concatenate(rows_out),
                np.concatenate(cols_out),
                np.concatenate(wts_out),
                n,
            )

    @staticmethod
    def _sample_plans(channels, config):
        """One hashing plan per hashable channel, from the global
        ``(seed, "lsh-plans")`` stream (shared by every shard)."""
        rng = np.random.default_rng(derive_seed(config.seed, "lsh-plans"))
        plans = []
        for idx, channel in enumerate(channels):
            if channel.kind is FeatureKind.EMBEDDING:
                dim = channel.matrix.shape[1]
                planes = rng.standard_normal(
                    (config.lsh_tables, dim, config.lsh_bits)
                ).astype(np.float32)
                # (tables, dim, bits) -> (tables, bits, dim) for packing
                plans.append((idx, np.ascontiguousarray(planes.transpose(0, 2, 1))))
            elif channel.kind is FeatureKind.CATEGORICAL:
                coeffs = rng.integers(
                    1, 2**63, size=(config.lsh_tables, config.lsh_band_rows, 2),
                    dtype=np.uint64,
                )
                coeffs[..., 0] |= np.uint64(1)  # odd multipliers mix better
                plans.append((idx, coeffs))
        return plans

    @staticmethod
    def _build_buckets(channels, plans, channel_keys, n, config):
        """Group nodes by (channel, table, key); oversized buckets are
        subsampled with a dedicated RNG stream consumed in deterministic
        (channel, table, sorted-key) order."""
        rng = np.random.default_rng(derive_seed(config.seed, "lsh-buckets"))
        bucket_members: list[np.ndarray] = []
        pair_nodes: list[np.ndarray] = []
        pair_buckets: list[np.ndarray] = []
        for (channel_idx, _plan), keys in zip(plans, channel_keys):
            present_nodes = np.flatnonzero(channels[channel_idx].present)
            if len(present_nodes) == 0:
                continue
            for t in range(keys.shape[1]):
                table_keys = keys[present_nodes, t]
                order = np.argsort(table_keys, kind="stable")
                sorted_nodes = present_nodes[order]
                sorted_keys = table_keys[order]
                boundaries = np.flatnonzero(
                    np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
                )
                ends = np.r_[boundaries[1:], len(sorted_keys)]
                for lo, hi in zip(boundaries, ends):
                    if hi - lo < 2:
                        continue
                    members = sorted_nodes[lo:hi]
                    if len(members) > config.lsh_bucket_cap:
                        members = np.sort(
                            rng.choice(
                                members, size=config.lsh_bucket_cap,
                                replace=False,
                            )
                        )
                    bucket_id = len(bucket_members)
                    bucket_members.append(members.astype(np.int64))
                    pair_nodes.append(members.astype(np.int64))
                    pair_buckets.append(
                        np.full(len(members), bucket_id, dtype=np.int64)
                    )
        if not bucket_members:
            indptr = np.zeros(n + 1, dtype=np.int64)
            return [], indptr, np.empty(0, dtype=np.int64)
        nodes_flat = np.concatenate(pair_nodes)
        buckets_flat = np.concatenate(pair_buckets)
        order = np.argsort(nodes_flat, kind="stable")
        nodes_flat = nodes_flat[order]
        buckets_flat = buckets_flat[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr[1:], nodes_flat, 1)
        np.cumsum(indptr, out=indptr)
        return bucket_members, indptr, buckets_flat


# ----------------------------------------------------------------------
# NN-descent backend
# ----------------------------------------------------------------------
class _NNDInitTask:
    """Per-shard random neighbour-list seeding (picklable, pure)."""

    __slots__ = ("channels", "n", "k", "seed")

    def __init__(self, channels, n, k, seed) -> None:
        self.channels = channels
        self.n = n
        self.k = k
        self.seed = seed

    def __call__(
        self, shard: tuple[int, tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        shard_index, (start, stop) = shard
        rng = np.random.default_rng(
            derive_seed(self.seed, f"nnd-init-{shard_index}")
        )
        from repro.propagation.graph import score_pairs

        b = stop - start
        k = min(self.k, self.n - 1)
        nbr = np.empty((b, k), dtype=np.int64)
        for row, node in enumerate(range(start, stop)):
            cand = rng.choice(self.n - 1, size=k, replace=False)
            cand[cand >= node] += 1  # skip self
            nbr[row] = np.sort(cand)
        rows = np.repeat(np.arange(start, stop), k)
        wts = score_pairs(self.channels, rows, nbr.ravel()).reshape(b, k)
        return nbr, wts.astype(np.float32)


class _NNDIterTask:
    """One Jacobi-style local-join refinement over a shard of nodes.

    Reads the *previous* iteration's full neighbour state (so the
    result is independent of shard scheduling), joins each node with
    the neighbours of a sampled subset of its forward+reverse
    neighbours, rescoring everything exactly.
    """

    __slots__ = (
        "channels", "nbr", "wts", "rev_indptr", "rev_flat",
        "k", "sample", "seed", "iteration",
    )

    def __init__(
        self, channels, nbr, wts, rev_indptr, rev_flat, k, sample, seed,
        iteration,
    ) -> None:
        self.channels = channels
        self.nbr = nbr
        self.wts = wts
        self.rev_indptr = rev_indptr
        self.rev_flat = rev_flat
        self.k = k
        self.sample = sample
        self.seed = seed
        self.iteration = iteration

    def __call__(
        self, shard: tuple[int, tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray, int]:
        shard_index, (start, stop) = shard
        rng = np.random.default_rng(
            derive_seed(
                self.seed, f"nnd-iter-{self.iteration}-{shard_index}"
            )
        )
        from repro.propagation.graph import score_pairs

        b = stop - start
        k = self.k
        node_ids = np.arange(start, stop, dtype=np.int64)
        fwd = self.nbr[start:stop]  # (b, k), always k valid entries

        # reverse neighbours, clipped to the first `sample` per node
        # (the reverse lists are in stable source order, so the clip is
        # deterministic); -1 pads short rows
        row_starts = self.rev_indptr[start:stop]
        lengths = self.rev_indptr[start + 1:stop + 1] - row_starts
        take = np.minimum(lengths, self.sample)
        cols = np.arange(self.sample)
        rev = np.full((b, self.sample), -1, dtype=np.int64)
        in_row = cols[None, :] < take[:, None]
        rev[in_row] = self.rev_flat[
            (row_starts[:, None] + cols[None, :])[in_row]
        ]

        # sample `sample` join bases per node from its forward+reverse
        # pool (random keys + argpartition = vectorized subsampling;
        # invalid entries sort last)
        pool = np.concatenate([fwd, rev], axis=1)
        keys = rng.random(pool.shape)
        keys[pool < 0] = np.inf
        base_cols = np.argpartition(keys, kth=self.sample - 1, axis=1)[
            :, : self.sample
        ]
        base = np.take_along_axis(pool, base_cols, axis=1)  # (b, sample)

        # local join: candidates are the bases' own neighbour lists,
        # plus the bases and current neighbours themselves
        nbr_of_base = np.where(
            base[:, :, None] >= 0, self.nbr[np.clip(base, 0, None)], -1
        ).reshape(b, -1)
        cand = np.concatenate([fwd, base, nbr_of_base], axis=1)

        # row-sort so duplicates are adjacent, then mask dups/self/pads
        cand = np.sort(cand, axis=1)
        invalid = np.zeros(cand.shape, dtype=bool)
        invalid[:, 1:] = cand[:, 1:] == cand[:, :-1]
        invalid |= (cand < 0) | (cand == node_ids[:, None])

        valid_flat = ~invalid.ravel()
        pair_rows = np.repeat(node_ids, cand.shape[1])[valid_flat]
        pair_cols = cand.ravel()[valid_flat]
        wts = np.full(cand.shape, -1.0, dtype=np.float32)
        wts[~invalid] = score_pairs(self.channels, pair_rows, pair_cols)

        # each row keeps >= k valid candidates (its k current
        # neighbours survive dedup), so the top-k is always fully valid
        top = np.argpartition(-wts, kth=k - 1, axis=1)[:, :k]
        new_nbr = np.take_along_axis(cand, top, axis=1)
        new_wts = np.take_along_axis(wts, top, axis=1)
        changed = (
            np.sort(new_nbr, axis=1) != np.sort(self.nbr[start:stop], axis=1)
        ).any(axis=1)
        return new_nbr, new_wts, int(changed.sum())


@register_graph_backend("nn-descent")
class NNDescentGraphBuilder(GraphBuilder):
    """Seeded neighbour-list refinement with local joins."""

    def build(self, channels, n, k, config, executor, span):
        from repro.propagation.graph import _edges_to_graph, _shard_bounds

        bounds = _shard_bounds(n, config.block_size)
        shards = list(enumerate(bounds))

        with obs.span("graph.init"):
            init_task = _NNDInitTask(channels, n, k, config.seed)
            parts = list(executor.imap_ordered(init_task, shards))
            nbr = np.concatenate([p[0] for p in parts])
            wts = np.concatenate([p[1] for p in parts])

        with obs.span("graph.iterate") as iter_span:
            for iteration in range(config.nnd_iters):
                rev_indptr, rev_flat = _reverse_lists(nbr, n)
                task = _NNDIterTask(
                    channels, nbr, wts, rev_indptr, rev_flat,
                    k, config.nnd_sample, config.seed, iteration,
                )
                parts = list(executor.imap_ordered(task, shards))
                nbr = np.concatenate([p[0] for p in parts])
                wts = np.concatenate([p[1] for p in parts])
                n_changed = sum(p[2] for p in parts)
                iter_span.add_counter("nnd_iterations", 1)
                span.add_counter("nnd_updated_lists", n_changed)
                if n_changed <= config.nnd_tol * n:
                    break
            iter_span.set_gauge("final_updated_fraction", n_changed / max(n, 1))

        with obs.span("graph.symmetrize"):
            valid = (nbr >= 0) & (wts >= config.min_weight)
            rows = np.repeat(np.arange(n, dtype=np.int64), k)[valid.ravel()]
            cols = nbr.ravel()[valid.ravel()]
            weights = wts.ravel()[valid.ravel()].astype(np.float64)
            return _edges_to_graph(rows, cols, weights, n)


def _reverse_lists(nbr: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR-shaped reverse-neighbour lists from a (n, k) forward array."""
    valid = nbr >= 0
    sources = np.repeat(np.arange(n, dtype=np.int64), nbr.shape[1])[valid.ravel()]
    targets = nbr.ravel()[valid.ravel()]
    order = np.argsort(targets, kind="stable")
    sources = sources[order]
    targets = targets[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr[1:], targets, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, sources
