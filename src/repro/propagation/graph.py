"""Similarity-graph construction over a feature table.

The graph uses the paper's Algorithm-1 weights.  *Which* node pairs are
considered is delegated to a pluggable :class:`GraphBuilder` backend
(see :mod:`repro.propagation.builders`):

* ``exact`` — the blockwise O(n²) sweep over every pair (the oracle);
* ``lsh`` — random-hyperplane / minhash-banding candidate generation;
* ``nn-descent`` — seeded neighbour-list refinement with local joins.

Edge *weights* are always the exact Algorithm-1 similarity — for each
pair the per-feature contributions are accumulated feature by feature
(Jaccard for categorical features, normalized absolute difference for
numeric features, and shifted cosine for embeddings), and only features
present on both endpoints contribute (matching
:func:`algorithm1_similarity`).  Approximate backends therefore change
only the candidate set, never the weight of a surviving edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

import repro.obs as obs
from repro.core.exceptions import GraphError
from repro.exec import Executor, ExecutorConfig, as_executor
from repro.features.distance import numeric_ranges
from repro.features.schema import FeatureKind
from repro.features.table import MISSING, FeatureTable

__all__ = ["GraphConfig", "SimilarityGraph", "build_knn_graph"]


@dataclass(frozen=True)
class GraphConfig:
    """Knobs for graph construction.

    ``features`` — feature names to build edges from (default: all in
    the table).  ``k`` — neighbours kept per node.  ``block_size`` —
    rows per dense block / per candidate shard (memory/speed
    trade-off).  ``min_weight`` — edges below this similarity are
    dropped.  ``backend`` selects the :class:`GraphBuilder` (``exact``,
    ``lsh``, ``nn-descent``); ``seed`` feeds the approximate backends'
    deterministic RNG streams (the exact backend ignores it).

    LSH parameters: ``lsh_tables`` hash tables per hashing channel,
    each combining ``lsh_bits`` random-hyperplane bits (embedding
    channels) or ``lsh_band_rows`` minhash rows (categorical channels);
    per node at most ``lsh_max_candidates`` bucket-mates are scored and
    buckets larger than ``lsh_bucket_cap`` are subsampled.

    NN-descent parameters: ``nnd_iters`` refinement iterations over
    random-seeded neighbour lists, joining each node with the
    neighbours of ``nnd_sample`` sampled (forward + reverse)
    neighbours; iteration stops early once the fraction of updated
    lists falls below ``nnd_tol``.
    """

    features: tuple[str, ...] | None = None
    k: int = 10
    block_size: int = 512
    min_weight: float = 0.05
    feature_weights: dict[str, float] = field(default_factory=dict)
    backend: str = "exact"
    seed: int = 0
    # --- lsh backend ---------------------------------------------------
    lsh_tables: int = 12
    lsh_bits: int = 8
    lsh_band_rows: int = 2
    lsh_max_candidates: int = 128
    lsh_bucket_cap: int = 128
    # --- nn-descent backend --------------------------------------------
    nnd_iters: int = 8
    nnd_sample: int = 12
    nnd_tol: float = 0.002

    def __post_init__(self) -> None:
        if self.k < 1:
            raise GraphError(f"k must be >= 1, got {self.k}")
        if self.block_size < 1:
            raise GraphError(f"block_size must be >= 1, got {self.block_size}")
        if not 0.0 <= self.min_weight <= 1.0:
            raise GraphError(
                f"min_weight must be in [0, 1], got {self.min_weight}"
            )
        for name, weight in self.feature_weights.items():
            if not math.isfinite(weight) or weight <= 0:
                raise GraphError(
                    f"feature weight for {name!r} must be a positive finite "
                    f"number, got {weight}"
                )
        for attr in (
            "lsh_tables", "lsh_bits", "lsh_band_rows",
            "lsh_max_candidates", "lsh_bucket_cap",
            "nnd_iters", "nnd_sample",
        ):
            if getattr(self, attr) < 1:
                raise GraphError(f"{attr} must be >= 1, got {getattr(self, attr)}")
        if self.nnd_tol < 0:
            raise GraphError(f"nnd_tol must be >= 0, got {self.nnd_tol}")
        from repro.propagation.builders import GRAPH_BACKENDS

        if self.backend not in GRAPH_BACKENDS:
            raise GraphError(
                f"unknown graph backend {self.backend!r}; "
                f"available: {sorted(GRAPH_BACKENDS)}"
            )


@dataclass
class SimilarityGraph:
    """Symmetric weighted graph as a CSR adjacency matrix."""

    adjacency: sparse.csr_matrix
    n_nodes: int

    def degree(self) -> np.ndarray:
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def n_edges(self) -> int:
        return int(self.adjacency.nnz // 2)

    def neighbors(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor indices, edge weights) of one node."""
        row = self.adjacency.getrow(node)
        return row.indices, row.data

    def to_networkx(self):
        """Export to a networkx graph (for analysis/examples)."""
        import networkx as nx

        return nx.from_scipy_sparse_array(self.adjacency)


class _FeatureChannel:
    """Precomputed per-feature arrays for blockwise similarity."""

    def __init__(self, kind: FeatureKind, weight: float) -> None:
        self.kind = kind
        self.weight = weight
        self.present: np.ndarray | None = None
        # categorical
        self.binary: sparse.csr_matrix | None = None
        self.set_sizes: np.ndarray | None = None
        # numeric
        self.values: np.ndarray | None = None
        self.value_range: float = 1.0
        # embedding
        self.matrix: np.ndarray | None = None

    def accumulate(
        self,
        block: slice,
        numerator: np.ndarray,
        denominator: np.ndarray,
    ) -> None:
        present = self.present
        assert present is not None
        co_present = np.outer(present[block], present).astype(np.float32)
        if not co_present.any():
            return
        if self.kind is FeatureKind.CATEGORICAL:
            sim = self._categorical_block(block)
        elif self.kind is FeatureKind.NUMERIC:
            sim = self._numeric_block(block)
        else:
            sim = self._embedding_block(block)
        numerator += self.weight * sim * co_present
        denominator += self.weight * co_present

    def _categorical_block(self, block: slice) -> np.ndarray:
        assert self.binary is not None and self.set_sizes is not None
        # binary is float32 CSR, so the intersection matmul stays float32
        # end-to-end; .toarray() avoids the np.matrix round-trip (and its
        # extra dense copy) that .todense() incurs
        inter = (self.binary[block] @ self.binary.T).toarray()
        sizes_block = self.set_sizes[block][:, None]
        union = sizes_block + self.set_sizes[None, :] - inter
        sim = np.zeros_like(inter)
        nonzero = union > 0
        sim[nonzero] = inter[nonzero] / union[nonzero]
        # Jaccard(∅, ∅) := 1 (both endpoints agree the feature is empty)
        both_empty = (sizes_block == 0) & (self.set_sizes[None, :] == 0)
        sim[both_empty] = 1.0
        return sim

    def _numeric_block(self, block: slice) -> np.ndarray:
        assert self.values is not None
        diff = np.abs(self.values[block][:, None] - self.values[None, :])
        sim = 1.0 - diff / self.value_range
        return np.clip(sim, 0.0, 1.0).astype(np.float32)

    def _embedding_block(self, block: slice) -> np.ndarray:
        assert self.matrix is not None
        cosine = self.matrix[block] @ self.matrix.T
        return (0.5 * (cosine + 1.0)).astype(np.float32)

    def accumulate_pairs(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        numerator: np.ndarray,
        denominator: np.ndarray,
    ) -> None:
        """Accumulate this channel's contribution for explicit pairs.

        The sparse analogue of :meth:`accumulate`: instead of a dense
        (block, n) panel, only the given ``(rows[i], cols[i])`` pairs
        are scored — this is what lets approximate backends score their
        candidate pairs with the exact Algorithm-1 similarity.
        """
        present = self.present
        assert present is not None
        co_present = (present[rows] & present[cols]).astype(np.float32)
        if not co_present.any():
            return
        if self.kind is FeatureKind.CATEGORICAL:
            assert self.binary is not None and self.set_sizes is not None
            inter = np.asarray(
                self.binary[rows].multiply(self.binary[cols]).sum(axis=1),
                dtype=np.float32,
            ).ravel()
            sizes_i = self.set_sizes[rows]
            sizes_j = self.set_sizes[cols]
            union = sizes_i + sizes_j - inter
            sim = np.zeros_like(inter)
            nonzero = union > 0
            sim[nonzero] = inter[nonzero] / union[nonzero]
            sim[(sizes_i == 0) & (sizes_j == 0)] = 1.0
        elif self.kind is FeatureKind.NUMERIC:
            assert self.values is not None
            diff = np.abs(self.values[rows] - self.values[cols])
            sim = np.clip(1.0 - diff / self.value_range, 0.0, 1.0).astype(
                np.float32
            )
        else:
            assert self.matrix is not None
            cosine = (self.matrix[rows] * self.matrix[cols]).sum(axis=1)
            sim = (0.5 * (cosine + 1.0)).astype(np.float32)
        numerator += self.weight * sim * co_present
        denominator += self.weight * co_present


def score_pairs(
    channels: list[_FeatureChannel], rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Exact Algorithm-1 similarity for explicit ``(rows[i], cols[i])``
    pairs, accumulated over all channels (float32, in [0, 1])."""
    numerator = np.zeros(len(rows), dtype=np.float32)
    denominator = np.zeros(len(rows), dtype=np.float32)
    for channel in channels:
        channel.accumulate_pairs(rows, cols, numerator, denominator)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denominator > 0, numerator / denominator, 0.0).astype(
            np.float32
        )


def _build_channels(
    table: FeatureTable, config: GraphConfig
) -> list[_FeatureChannel]:
    names = (
        list(config.features) if config.features is not None else table.feature_names
    )
    ranges = numeric_ranges(table)
    channels: list[_FeatureChannel] = []
    for name in names:
        spec = table.schema[name]
        column = table.column(name)
        channel = _FeatureChannel(
            spec.kind, config.feature_weights.get(name, 1.0)
        )
        channel.present = np.array([v is not MISSING for v in column])
        if spec.kind is FeatureKind.CATEGORICAL:
            vocab: dict[str, int] = {}
            rows: list[int] = []
            cols: list[int] = []
            sizes = np.zeros(len(column), dtype=np.float32)
            for i, value in enumerate(column):
                if value is MISSING:
                    continue
                sizes[i] = len(value)  # type: ignore[arg-type]
                # sorted: vocab index assignment must not depend on set
                # iteration order (PYTHONHASHSEED) — minhash keys hash
                # these indices, so LSH candidates would otherwise vary
                # across processes (Jaccard itself never notices)
                for token in sorted(value):  # type: ignore[arg-type]
                    j = vocab.setdefault(token, len(vocab))
                    rows.append(i)
                    cols.append(j)
            channel.binary = sparse.csr_matrix(
                (np.ones(len(rows), dtype=np.float32), (rows, cols)),
                shape=(len(column), max(len(vocab), 1)),
            )
            channel.set_sizes = sizes
        elif spec.kind is FeatureKind.NUMERIC:
            channel.values = np.array(
                [float(v) if v is not MISSING else 0.0 for v in column],  # type: ignore[arg-type]
                dtype=np.float32,
            )
            channel.value_range = max(ranges.get(name, 1.0), 1e-9)
        else:
            dim = None
            for v in column:
                if v is not MISSING:
                    dim = len(v)  # type: ignore[arg-type]
                    break
            if dim is None:
                channel.present = np.zeros(len(column), dtype=bool)
                channel.matrix = np.zeros((len(column), 1), dtype=np.float32)
            else:
                matrix = np.zeros((len(column), dim), dtype=np.float32)
                for i, v in enumerate(column):
                    if v is not MISSING:
                        matrix[i] = np.asarray(v, dtype=np.float32)
                norms = np.linalg.norm(matrix, axis=1, keepdims=True)
                norms[norms < 1e-9] = 1.0
                channel.matrix = matrix / norms
        channels.append(channel)
    return channels


class _GraphBlockTask:
    """Picklable per-block kNN computation shipped to executor workers.

    Each block is a pure function of the precomputed channels and its
    row range; blocks merge in block order on the coordinator, so the
    resulting edge arrays are byte-identical across backends.
    """

    __slots__ = ("channels", "n", "k", "min_weight")

    def __init__(
        self,
        channels: list[_FeatureChannel],
        n: int,
        k: int,
        min_weight: float,
    ) -> None:
        self.channels = channels
        self.n = n
        self.k = k
        self.min_weight = min_weight

    def __call__(
        self, bounds: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        start, stop = bounds
        block = slice(start, stop)
        b = stop - start
        numerator = np.zeros((b, self.n), dtype=np.float32)
        denominator = np.zeros((b, self.n), dtype=np.float32)
        for channel in self.channels:
            channel.accumulate(block, numerator, denominator)
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.where(denominator > 0, numerator / denominator, 0.0)
        # no self-loops
        for i in range(b):
            sim[i, start + i] = -1.0
        top = np.argpartition(-sim, kth=self.k - 1, axis=1)[:, : self.k]
        block_rows = np.repeat(np.arange(start, stop), self.k)
        block_cols = top.ravel()
        block_weights = sim[np.arange(b)[:, None], top].ravel()
        keep = block_weights >= self.min_weight
        return (
            block_rows[keep],
            block_cols[keep],
            block_weights[keep].astype(np.float64),
            int((~keep).sum()),
        )


def _shard_bounds(n: int, block_size: int) -> list[tuple[int, int]]:
    """Contiguous node shards; fixed by (n, block_size) so shard RNG
    streams are identical regardless of the executor backend.  Same
    partition law as the data plane's shard layout, so the boundary
    property suite (``tests/test_shards.py``) covers this math too."""
    from repro.shards.layout import shard_ranges

    return shard_ranges(n, block_size)


def _edges_to_graph(
    rows: np.ndarray, cols: np.ndarray, weights: np.ndarray, n: int
) -> SimilarityGraph:
    """Symmetrize directed kNN edges (max weight per pair) into a graph."""
    adjacency = sparse.csr_matrix((weights, (rows, cols)), shape=(n, n))
    adjacency = adjacency.maximum(adjacency.T)
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return SimilarityGraph(adjacency=adjacency.tocsr(), n_nodes=n)


def _validate_graph_features(table: FeatureTable, config: GraphConfig) -> None:
    """Reject names that do not exist in the table's schema — today a
    bad name would otherwise fail deep inside a block task."""
    if config.features is not None:
        unknown = [n for n in config.features if n not in table.schema]
        if unknown:
            raise GraphError(
                f"unknown graph feature(s) {unknown!r}; "
                f"table has {sorted(table.schema.names)}"
            )
    names = (
        set(config.features) if config.features is not None
        else set(table.feature_names)
    )
    unknown = [n for n in config.feature_weights if n not in names]
    if unknown:
        raise GraphError(
            f"feature_weights refer to unknown graph feature(s) {unknown!r}; "
            f"graph features are {sorted(names)}"
        )


def build_knn_graph(
    table: FeatureTable,
    config: GraphConfig | None = None,
    executor: Executor | ExecutorConfig | str | None = None,
) -> SimilarityGraph:
    """Build a symmetric k-nearest-neighbour similarity graph.

    Each node keeps its ``k`` most similar other nodes (Algorithm-1
    similarity); the union of directed kNN edges is symmetrized by
    taking the maximum weight per pair.

    ``config.backend`` selects the :class:`GraphBuilder`: ``exact``
    considers every pair (O(n²), the oracle); ``lsh`` and
    ``nn-descent`` consider a sub-quadratic candidate set but score
    candidates with the same exact similarity.  Approximate backends
    are deterministic for a fixed ``config.seed``.

    ``executor`` parallelizes the candidate/similarity pass; every
    shard is an independent pure task with its own derived RNG stream
    and shards merge in shard order, so each backend's graph is
    byte-identical on the serial, thread, and process executors.
    """
    from repro.propagation.builders import get_graph_builder

    config = config or GraphConfig()
    n = table.n_rows
    if n < 2:
        raise GraphError(f"need at least 2 nodes to build a graph, got {n}")
    _validate_graph_features(table, config)
    k = min(config.k, n - 1)
    builder = get_graph_builder(config.backend)
    ex = as_executor(executor)
    with obs.span(
        "graph.build_knn",
        n_nodes=n,
        k=k,
        backend=ex.backend,
        graph_backend=config.backend,
    ) as sp:
        with obs.span("graph.channels"):
            channels = _build_channels(table, config)
        if not channels:
            raise GraphError("no features available for graph construction")
        sp.set_gauge("n_features", len(channels))
        graph = builder.build(channels, n, k, config, ex, sp)
        sp.set_gauge("n_edges", graph.n_edges())
    return graph
