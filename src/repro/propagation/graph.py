"""Similarity-graph construction over a feature table.

The graph uses the paper's Algorithm-1 weights, vectorized: for each
block of rows we accumulate a dense (block, n) similarity numerator and
denominator feature by feature — Jaccard for categorical features
(computed via a sparse intersection matmul), normalized absolute
difference for numeric features, and shifted cosine for embeddings —
then keep the top-k neighbours per row.  Only features present on both
endpoints contribute (matching :func:`algorithm1_similarity`), so
text-image edges are weighted by exactly the features the two
modalities share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

import repro.obs as obs
from repro.core.exceptions import GraphError
from repro.exec import Executor, ExecutorConfig, as_executor
from repro.features.distance import numeric_ranges
from repro.features.schema import FeatureKind
from repro.features.table import MISSING, FeatureTable

__all__ = ["GraphConfig", "SimilarityGraph", "build_knn_graph"]


@dataclass(frozen=True)
class GraphConfig:
    """Knobs for graph construction.

    ``features`` — feature names to build edges from (default: all in
    the table).  ``k`` — neighbours kept per node.  ``block_size`` —
    rows per dense block (memory/speed trade-off).  ``min_weight`` —
    edges below this similarity are dropped.
    """

    features: tuple[str, ...] | None = None
    k: int = 10
    block_size: int = 512
    min_weight: float = 0.05
    feature_weights: dict[str, float] = field(default_factory=dict)


@dataclass
class SimilarityGraph:
    """Symmetric weighted graph as a CSR adjacency matrix."""

    adjacency: sparse.csr_matrix
    n_nodes: int

    def degree(self) -> np.ndarray:
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def n_edges(self) -> int:
        return int(self.adjacency.nnz // 2)

    def neighbors(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(neighbor indices, edge weights) of one node."""
        row = self.adjacency.getrow(node)
        return row.indices, row.data

    def to_networkx(self):
        """Export to a networkx graph (for analysis/examples)."""
        import networkx as nx

        return nx.from_scipy_sparse_array(self.adjacency)


class _FeatureChannel:
    """Precomputed per-feature arrays for blockwise similarity."""

    def __init__(self, kind: FeatureKind, weight: float) -> None:
        self.kind = kind
        self.weight = weight
        self.present: np.ndarray | None = None
        # categorical
        self.binary: sparse.csr_matrix | None = None
        self.set_sizes: np.ndarray | None = None
        # numeric
        self.values: np.ndarray | None = None
        self.value_range: float = 1.0
        # embedding
        self.matrix: np.ndarray | None = None

    def accumulate(
        self,
        block: slice,
        numerator: np.ndarray,
        denominator: np.ndarray,
    ) -> None:
        present = self.present
        assert present is not None
        co_present = np.outer(present[block], present).astype(np.float32)
        if not co_present.any():
            return
        if self.kind is FeatureKind.CATEGORICAL:
            sim = self._categorical_block(block)
        elif self.kind is FeatureKind.NUMERIC:
            sim = self._numeric_block(block)
        else:
            sim = self._embedding_block(block)
        numerator += self.weight * sim * co_present
        denominator += self.weight * co_present

    def _categorical_block(self, block: slice) -> np.ndarray:
        assert self.binary is not None and self.set_sizes is not None
        inter = np.asarray(
            (self.binary[block] @ self.binary.T).todense(), dtype=np.float32
        )
        sizes_block = self.set_sizes[block][:, None]
        union = sizes_block + self.set_sizes[None, :] - inter
        sim = np.zeros_like(inter)
        nonzero = union > 0
        sim[nonzero] = inter[nonzero] / union[nonzero]
        # Jaccard(∅, ∅) := 1 (both endpoints agree the feature is empty)
        both_empty = (sizes_block == 0) & (self.set_sizes[None, :] == 0)
        sim[both_empty] = 1.0
        return sim

    def _numeric_block(self, block: slice) -> np.ndarray:
        assert self.values is not None
        diff = np.abs(self.values[block][:, None] - self.values[None, :])
        sim = 1.0 - diff / self.value_range
        return np.clip(sim, 0.0, 1.0).astype(np.float32)

    def _embedding_block(self, block: slice) -> np.ndarray:
        assert self.matrix is not None
        cosine = self.matrix[block] @ self.matrix.T
        return (0.5 * (cosine + 1.0)).astype(np.float32)


def _build_channels(
    table: FeatureTable, config: GraphConfig
) -> list[_FeatureChannel]:
    names = (
        list(config.features) if config.features is not None else table.feature_names
    )
    ranges = numeric_ranges(table)
    channels: list[_FeatureChannel] = []
    for name in names:
        spec = table.schema[name]
        column = table.column(name)
        channel = _FeatureChannel(
            spec.kind, config.feature_weights.get(name, 1.0)
        )
        channel.present = np.array([v is not MISSING for v in column])
        if spec.kind is FeatureKind.CATEGORICAL:
            vocab: dict[str, int] = {}
            rows: list[int] = []
            cols: list[int] = []
            sizes = np.zeros(len(column), dtype=np.float32)
            for i, value in enumerate(column):
                if value is MISSING:
                    continue
                sizes[i] = len(value)  # type: ignore[arg-type]
                for token in value:  # type: ignore[union-attr]
                    j = vocab.setdefault(token, len(vocab))
                    rows.append(i)
                    cols.append(j)
            channel.binary = sparse.csr_matrix(
                (np.ones(len(rows), dtype=np.float32), (rows, cols)),
                shape=(len(column), max(len(vocab), 1)),
            )
            channel.set_sizes = sizes
        elif spec.kind is FeatureKind.NUMERIC:
            channel.values = np.array(
                [float(v) if v is not MISSING else 0.0 for v in column],  # type: ignore[arg-type]
                dtype=np.float32,
            )
            channel.value_range = max(ranges.get(name, 1.0), 1e-9)
        else:
            dim = None
            for v in column:
                if v is not MISSING:
                    dim = len(v)  # type: ignore[arg-type]
                    break
            if dim is None:
                channel.present = np.zeros(len(column), dtype=bool)
                channel.matrix = np.zeros((len(column), 1), dtype=np.float32)
            else:
                matrix = np.zeros((len(column), dim), dtype=np.float32)
                for i, v in enumerate(column):
                    if v is not MISSING:
                        matrix[i] = np.asarray(v, dtype=np.float32)
                norms = np.linalg.norm(matrix, axis=1, keepdims=True)
                norms[norms < 1e-9] = 1.0
                channel.matrix = matrix / norms
        channels.append(channel)
    return channels


class _GraphBlockTask:
    """Picklable per-block kNN computation shipped to executor workers.

    Each block is a pure function of the precomputed channels and its
    row range; blocks merge in block order on the coordinator, so the
    resulting edge arrays are byte-identical across backends.
    """

    __slots__ = ("channels", "n", "k", "min_weight")

    def __init__(
        self,
        channels: list[_FeatureChannel],
        n: int,
        k: int,
        min_weight: float,
    ) -> None:
        self.channels = channels
        self.n = n
        self.k = k
        self.min_weight = min_weight

    def __call__(
        self, bounds: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        start, stop = bounds
        block = slice(start, stop)
        b = stop - start
        numerator = np.zeros((b, self.n), dtype=np.float32)
        denominator = np.zeros((b, self.n), dtype=np.float32)
        for channel in self.channels:
            channel.accumulate(block, numerator, denominator)
        with np.errstate(invalid="ignore", divide="ignore"):
            sim = np.where(denominator > 0, numerator / denominator, 0.0)
        # no self-loops
        for i in range(b):
            sim[i, start + i] = -1.0
        top = np.argpartition(-sim, kth=self.k - 1, axis=1)[:, : self.k]
        block_rows = np.repeat(np.arange(start, stop), self.k)
        block_cols = top.ravel()
        block_weights = sim[np.arange(b)[:, None], top].ravel()
        keep = block_weights >= self.min_weight
        return (
            block_rows[keep],
            block_cols[keep],
            block_weights[keep].astype(np.float64),
            int((~keep).sum()),
        )


def build_knn_graph(
    table: FeatureTable,
    config: GraphConfig | None = None,
    executor: Executor | ExecutorConfig | str | None = None,
) -> SimilarityGraph:
    """Build a symmetric k-nearest-neighbour similarity graph.

    Each node keeps its ``k`` most similar other nodes (Algorithm-1
    similarity); the union of directed kNN edges is symmetrized by
    taking the maximum weight per pair.

    ``executor`` parallelizes the blockwise similarity pass; every
    block is an independent pure task and edges concatenate in block
    order, so the adjacency matrix is byte-identical on the serial,
    thread, and process backends.
    """
    config = config or GraphConfig()
    n = table.n_rows
    if n < 2:
        raise GraphError(f"need at least 2 nodes to build a graph, got {n}")
    k = min(config.k, n - 1)
    ex = as_executor(executor)
    with obs.span("graph.build_knn", n_nodes=n, k=k, backend=ex.backend) as sp:
        channels = _build_channels(table, config)
        if not channels:
            raise GraphError("no features available for graph construction")
        sp.set_gauge("n_features", len(channels))

        bounds = [
            (start, min(start + config.block_size, n))
            for start in range(0, n, config.block_size)
        ]
        task = _GraphBlockTask(channels, n, k, config.min_weight)
        rows_out: list[np.ndarray] = []
        cols_out: list[np.ndarray] = []
        weights_out: list[np.ndarray] = []
        for block_rows, block_cols, block_weights, n_below in ex.imap_ordered(
            task, bounds
        ):
            sp.add_counter("blocks", 1)
            sp.add_counter("edges_below_min_weight", n_below)
            rows_out.append(block_rows)
            cols_out.append(block_cols)
            weights_out.append(block_weights)

        rows = np.concatenate(rows_out)
        cols = np.concatenate(cols_out)
        weights = np.concatenate(weights_out)
        adjacency = sparse.csr_matrix((weights, (rows, cols)), shape=(n, n))
        # symmetrize with max weight per pair
        adjacency = adjacency.maximum(adjacency.T)
        adjacency.setdiag(0.0)
        adjacency.eliminate_zeros()
        graph = SimilarityGraph(adjacency=adjacency.tocsr(), n_nodes=n)
        sp.set_gauge("n_edges", graph.n_edges())
    return graph
