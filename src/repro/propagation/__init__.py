"""Graph-based label propagation (paper §4.4).

Builds a similarity graph over data points of *all* modalities using
Algorithm-1 weights on the common feature space (plus modality-specific
features like image embeddings), then propagates human labels from the
old modality onto the new one [Zhu & Ghahramani 2002].  The converged
scores identify borderline positives and large volumes of negatives —
the behavioural modes mined LFs miss — and are turned into
threshold-based LFs and a nonservable feature.

A streaming single-pass approximation mirrors the Expander platform the
paper uses in production.
"""

from repro.propagation.builders import (
    GRAPH_BACKENDS,
    GraphBuilder,
    get_graph_builder,
    register_graph_backend,
)
from repro.propagation.graph import GraphConfig, SimilarityGraph, build_knn_graph
from repro.propagation.propagate import LabelPropagation, PropagationResult
from repro.propagation.recall import (
    GraphQuality,
    compare_graphs,
    edge_weight_agreement,
    neighbor_recall,
    propagation_auprc_delta,
)
from repro.propagation.streaming import StreamingLabelPropagation
from repro.propagation.lf_adapter import PROPAGATION_FEATURE, propagation_lfs, propagation_feature_spec

__all__ = [
    "GRAPH_BACKENDS",
    "GraphBuilder",
    "GraphConfig",
    "GraphQuality",
    "LabelPropagation",
    "PROPAGATION_FEATURE",
    "PropagationResult",
    "SimilarityGraph",
    "StreamingLabelPropagation",
    "build_knn_graph",
    "compare_graphs",
    "edge_weight_agreement",
    "get_graph_builder",
    "neighbor_recall",
    "propagation_auprc_delta",
    "register_graph_backend",
]
