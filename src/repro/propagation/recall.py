"""Recall/quality oracle for approximate graph backends.

The ``exact`` backend considers every node pair, so its graph is the
ground truth for *which* neighbours a node should have.  Approximate
backends trade candidate coverage for speed; this module measures what
that trade costs along the three axes that matter for the paper's
curation pipeline:

* :func:`neighbor_recall` — of the oracle's (symmetrized) neighbours,
  what fraction does the approximate graph keep?  This is the standard
  ANN quality metric (recall@k against the exact kNN).
* :func:`edge_weight_agreement` — approximate backends score candidate
  pairs with the exact Algorithm-1 similarity, so a surviving edge
  carries the oracle's weight up to float32 summation order (the
  oracle's blockwise path uses dense BLAS, the candidate path gathers
  per pair).  The maximum divergence over shared edges is a
  correctness probe for that invariant: more than a few float32 ulps
  (~1e-7) means a backend is scoring with a different weight function.
* :func:`propagation_auprc_delta` — the downstream check: run the same
  label propagation over both graphs and compare AUPRC of the
  propagated scores against ground-truth labels.  A missing low-weight
  edge that never changes a propagation outcome is a good trade; this
  metric is what licenses it.

:func:`compare_graphs` bundles the structural metrics into a
:class:`GraphQuality` record (the scaling experiment serializes it into
``BENCH_scaling.json``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.exceptions import GraphError
from repro.models.metrics import auprc
from repro.propagation.graph import SimilarityGraph
from repro.propagation.propagate import LabelPropagation

__all__ = [
    "GraphQuality",
    "compare_graphs",
    "edge_weight_agreement",
    "neighbor_recall",
    "propagation_auprc_delta",
]


@dataclass(frozen=True)
class GraphQuality:
    """Structural agreement between an approximate graph and the oracle.

    ``neighbor_recall`` — mean per-node recall of oracle neighbours.
    ``edge_recall`` / ``edge_precision`` — edge-set overlap rates.
    ``max_weight_divergence`` — max |w_approx − w_oracle| over shared
    edges (0.0 whenever the exact-scoring invariant holds).
    ``n_edges`` / ``n_oracle_edges`` — undirected edge counts.
    """

    neighbor_recall: float
    edge_recall: float
    edge_precision: float
    max_weight_divergence: float
    n_edges: int
    n_oracle_edges: int

    def to_dict(self) -> dict:
        return asdict(self)


def _check_comparable(graph: SimilarityGraph, oracle: SimilarityGraph) -> None:
    if graph.n_nodes != oracle.n_nodes:
        raise GraphError(
            f"graphs are over different node sets: "
            f"{graph.n_nodes} vs {oracle.n_nodes} nodes"
        )


def neighbor_recall(graph: SimilarityGraph, oracle: SimilarityGraph) -> float:
    """Mean per-node fraction of oracle neighbours kept by ``graph``.

    Nodes with no oracle neighbours (isolated in the exact graph) are
    skipped; if every node is isolated the recall is vacuously 1.0.
    """
    _check_comparable(graph, oracle)
    approx = graph.adjacency.tocsr()
    exact = oracle.adjacency.tocsr()
    # weights are non-negative, so a shared edge exists exactly where the
    # elementwise minimum is nonzero; count them per row
    shared = exact.minimum(approx).tocsr()
    exact_degrees = np.diff(exact.indptr)
    shared_degrees = np.diff(shared.indptr)
    has_neighbors = exact_degrees > 0
    if not has_neighbors.any():
        return 1.0
    per_node = shared_degrees[has_neighbors] / exact_degrees[has_neighbors]
    return float(per_node.mean())


def edge_weight_agreement(
    graph: SimilarityGraph, oracle: SimilarityGraph
) -> float:
    """Max absolute weight difference over edges present in both graphs.

    Approximate backends score every candidate with the exact
    Algorithm-1 similarity; only float32 summation order differs from
    the oracle's blockwise path, so anything beyond a few float32 ulps
    (~1e-7) means a backend is scoring pairs with something other than
    the oracle's weight function.  Returns 0.0 when no edges are shared.
    """
    _check_comparable(graph, oracle)
    approx = graph.adjacency.tocsr()
    exact = oracle.adjacency.tocsr()
    shared = exact.minimum(approx)
    if shared.nnz == 0:
        return 0.0
    shared_coo = shared.tocoo()
    diff = np.abs(
        np.asarray(approx[shared_coo.row, shared_coo.col]).ravel()
        - np.asarray(exact[shared_coo.row, shared_coo.col]).ravel()
    )
    return float(diff.max())


def compare_graphs(
    graph: SimilarityGraph, oracle: SimilarityGraph
) -> GraphQuality:
    """Structural quality of ``graph`` against the exact ``oracle``."""
    _check_comparable(graph, oracle)
    approx = graph.adjacency
    exact = oracle.adjacency
    shared_nnz = exact.minimum(approx).nnz
    return GraphQuality(
        neighbor_recall=neighbor_recall(graph, oracle),
        edge_recall=float(shared_nnz / exact.nnz) if exact.nnz else 1.0,
        edge_precision=float(shared_nnz / approx.nnz) if approx.nnz else 1.0,
        max_weight_divergence=edge_weight_agreement(graph, oracle),
        n_edges=graph.n_edges(),
        n_oracle_edges=oracle.n_edges(),
    )


def propagation_auprc_delta(
    graph: SimilarityGraph,
    oracle: SimilarityGraph,
    seed_indices: np.ndarray,
    seed_labels: np.ndarray,
    true_labels: np.ndarray,
    propagation: LabelPropagation | None = None,
) -> tuple[float, float, float]:
    """Downstream quality: AUPRC of propagated scores on both graphs.

    Runs the same :class:`LabelPropagation` over ``graph`` and
    ``oracle`` from identical seeds and scores both against
    ``true_labels`` on the non-seed nodes (seeds are clamped, so they
    carry no signal about graph quality).

    Returns ``(auprc_graph, auprc_oracle, delta)`` with
    ``delta = auprc_oracle - auprc_graph`` (positive means the
    approximation cost downstream quality).
    """
    _check_comparable(graph, oracle)
    propagation = propagation or LabelPropagation()
    true_labels = np.asarray(true_labels)
    if len(true_labels) != graph.n_nodes:
        raise GraphError(
            f"true_labels has {len(true_labels)} entries for "
            f"{graph.n_nodes} nodes"
        )
    eval_mask = np.ones(graph.n_nodes, dtype=bool)
    eval_mask[np.asarray(seed_indices, dtype=np.int64)] = False
    if len(np.unique(true_labels[eval_mask])) < 2:
        raise GraphError(
            "AUPRC is undefined on single-class evaluation labels"
        )
    approx_scores = propagation.run(graph, seed_indices, seed_labels).scores
    oracle_scores = propagation.run(oracle, seed_indices, seed_labels).scores
    auprc_graph = auprc(approx_scores[eval_mask], true_labels[eval_mask])
    auprc_oracle = auprc(oracle_scores[eval_mask], true_labels[eval_mask])
    return auprc_graph, auprc_oracle, auprc_oracle - auprc_graph
