"""Zhu–Ghahramani label propagation on a similarity graph.

Seed nodes carry clamped one-hot label distributions; unlabeled nodes
iteratively take the weighted average of their neighbours'
distributions until convergence.  The converged positive-class mass is
the propagation score (a probabilistic label per §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

import repro.obs as obs
from repro.core.exceptions import GraphError
from repro.propagation.graph import SimilarityGraph

__all__ = ["LabelPropagation", "PropagationResult"]


@dataclass
class PropagationResult:
    """Converged propagation state."""

    scores: np.ndarray
    n_iterations: int
    converged: bool
    reached: np.ndarray

    def unreached_fraction(self) -> float:
        return float(1.0 - self.reached.mean())


class LabelPropagation:
    """Iterative clamped label propagation.

    Parameters
    ----------
    max_iter, tol:
        Stop when the max score change falls below ``tol``.
    prior:
        Initial (and fallback) positive mass for unlabeled nodes;
        typically the class balance.  Nodes in components containing no
        seed keep this prior.
    """

    def __init__(
        self, max_iter: int = 50, tol: float = 1e-4, prior: float = 0.5
    ) -> None:
        if not 0.0 <= prior <= 1.0:
            raise GraphError(f"prior must be in [0, 1], got {prior}")
        self.max_iter = max_iter
        self.tol = tol
        self.prior = prior

    def run(
        self,
        graph: SimilarityGraph,
        seed_indices: np.ndarray,
        seed_labels: np.ndarray,
    ) -> PropagationResult:
        """Propagate ``seed_labels`` (0/1) from ``seed_indices``.

        Returns scores in [0, 1] for every node; seeds keep their label.
        """
        n = graph.n_nodes
        seed_indices = np.asarray(seed_indices, dtype=np.int64)
        seed_labels = np.asarray(seed_labels, dtype=np.int64)
        if len(seed_indices) != len(seed_labels):
            raise GraphError("seed_indices and seed_labels must align")
        if len(seed_indices) == 0:
            raise GraphError("label propagation requires at least one seed")
        if seed_indices.max(initial=-1) >= n or seed_indices.min(initial=0) < 0:
            raise GraphError("seed index out of range")
        if not np.isin(seed_labels, (0, 1)).all():
            raise GraphError("seed labels must be 0/1")

        W = graph.adjacency
        degree = np.asarray(W.sum(axis=1)).ravel()
        inv_degree = np.where(degree > 0, 1.0 / np.maximum(degree, 1e-12), 0.0)
        T = sparse.diags(inv_degree) @ W

        is_seed = np.zeros(n, dtype=bool)
        is_seed[seed_indices] = True
        scores = np.full(n, self.prior)
        scores[seed_indices] = seed_labels.astype(float)

        # seed mass can only ever reach a node sharing a component with a
        # seed, so one connected-components pass replaces the per-sweep
        # frontier matvec the loop used to carry
        n_components, component = sparse.csgraph.connected_components(
            W, directed=False
        )
        seed_components = np.zeros(n_components, dtype=bool)
        seed_components[component[seed_indices]] = True
        reached = seed_components[component]
        converged = False
        iteration = 0
        with obs.span(
            "graph.propagate", n_nodes=n, n_seeds=len(seed_indices)
        ) as sp:
            for iteration in range(1, self.max_iter + 1):
                new_scores = T @ scores
                # isolated nodes keep their current score
                new_scores[degree == 0] = scores[degree == 0]
                new_scores[is_seed] = seed_labels.astype(float)
                delta = float(np.abs(new_scores - scores).max())
                scores = new_scores
                if delta < self.tol:
                    converged = True
                    break
            scores = np.clip(scores, 0.0, 1.0)
            scores[~reached] = self.prior
            sp.set_gauge("n_iterations", iteration)
            sp.set_gauge("converged", converged)
            sp.set_gauge("unreached_nodes", int((~reached).sum()))
        return PropagationResult(
            scores=scores,
            n_iterations=iteration,
            converged=converged,
            reached=reached,
        )
