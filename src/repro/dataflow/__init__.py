"""Local MapReduce engine.

The paper implements its feature-engineering and labeling-function
pipelines on Google's MapReduce framework.  This subpackage provides a
small, deterministic, in-process equivalent with the same programming
model (map -> combine -> shuffle -> reduce) so the featurization and LF
application code can be written the way the paper describes, and so the
pipeline scales across local threads when corpora grow.
"""

from repro.dataflow.mapreduce import MapReduceJob, run_map, run_mapreduce
from repro.dataflow.plan import Stage, StagePlan

__all__ = ["MapReduceJob", "Stage", "StagePlan", "run_map", "run_mapreduce"]
