"""A small in-process MapReduce engine.

Semantics match the classic model:

* ``mapper(record) -> iterable[(key, value)]`` runs once per input
  record (optionally across an execution backend, partitioned
  deterministically so output order does not depend on scheduling);
* an optional ``combiner(key, values) -> iterable[value]`` pre-reduces
  each partition's output;
* the shuffle groups values by key (keys must be hashable and sortable);
* ``reducer(key, values) -> output`` runs once per key, in sorted key
  order.

Determinism: values arrive at the reducer in (partition, input-order)
order regardless of scheduling, so jobs are reproducible — and since
every partition is an independent pure task, the job computes the
byte-identical result on the serial, thread, and process backends of
:mod:`repro.exec` (``executor=`` selects one; the legacy ``n_threads``
maps onto the thread backend).

Robustness: ``record_retries`` re-runs a failing mapper call on the
same record (for mappers that call flaky services), and
``skip_bad_records`` drops records that still fail instead of killing
the job — the classic "skip bad records" escape hatch for poisoned
inputs.  Failures surface as :class:`RecordError` carrying the record
and its input index; ``failed_records`` / ``retried_records`` counters
account for every skip and re-run.  Per-partition mapper-side counts
(records mapped, combiner reductions) are aggregated into
``job.counters`` on the coordinating thread — process workers return
their counters as data, so no accounting is lost to workers that carry
no tracer.

Process-backend constraints: the mapper/combiner (and records) must be
picklable — module-level functions, not closures.  With a partition
checkpoint, the coordinator persists each partition's payload as its
result arrives (in partition order), so a killed process-backend run
resumes bit-identically, exactly like the threaded path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, TypeVar

import repro.obs as obs
from repro.core.exceptions import ConfigurationError, RecordError
from repro.exec import Executor, ExecutorConfig, as_executor, iter_chunks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.runs.checkpoint import PartitionCheckpointer

__all__ = ["MapReduceJob", "run_mapreduce", "run_map"]

Record = TypeVar("Record")
Key = Hashable
Mapper = Callable[[Any], Iterable[tuple[Key, Any]]]
Combiner = Callable[[Key, list[Any]], Iterable[Any]]
Reducer = Callable[[Key, list[Any]], Any]


def _call_with_retries(
    fn: Callable[[Any], Any],
    record: Any,
    index: int,
    retries: int,
    skip_bad: bool,
    counts: Counter,
) -> tuple[bool, Any]:
    """(ok, result) for one record; raises :class:`RecordError` when the
    record exhausts its retries and skipping is off."""
    last_exc: Exception | None = None
    for attempt in range(1 + retries):
        try:
            return True, fn(record)
        except Exception as exc:  # noqa: BLE001 - mapper may raise anything
            last_exc = exc
            if attempt < retries:
                counts["retried_records"] += 1
    counts["failed_records"] += 1
    if skip_bad:
        return False, None
    raise RecordError(
        f"record {index} failed after {1 + retries} attempt(s): "
        f"{type(last_exc).__name__}: {last_exc} (record={record!r:.200})",
        record=record,
        index=index,
    ) from last_exc


def _map_partition_core(
    mapper: Mapper,
    combiner: Combiner | None,
    partition: list[tuple[int, Any]],
    record_retries: int,
    skip_bad_records: bool,
) -> tuple[dict[Key, list[Any]], Counter]:
    """Map one partition of (index, record) pairs; pure function of its
    arguments, shared verbatim by every execution backend so their
    outputs cannot diverge."""
    counts: Counter = Counter()
    grouped: dict[Key, list[Any]] = defaultdict(list)
    for index, record in partition:
        ok, pairs = _call_with_retries(
            lambda r: list(mapper(r)),
            record,
            index,
            record_retries,
            skip_bad_records,
            counts,
        )
        if not ok:
            continue
        counts["records_mapped"] += 1
        for key, value in pairs:
            grouped[key].append(value)
            counts["map_output_values"] += 1
    if combiner is not None:
        combined: dict[Key, list[Any]] = {}
        for key, values in grouped.items():
            counts["combiner_values_in"] += len(values)
            combined[key] = list(combiner(key, values))
            counts["combiner_values_out"] += len(combined[key])
        grouped = combined
    return dict(grouped), counts


@dataclass(frozen=True)
class _PartitionTask:
    """Picklable partition-map task shipped to process-pool workers."""

    mapper: Mapper
    combiner: Combiner | None
    record_retries: int
    skip_bad_records: bool

    def __call__(
        self, partition: list[tuple[int, Any]]
    ) -> tuple[dict[Key, list[Any]], Counter]:
        return _map_partition_core(
            self.mapper,
            self.combiner,
            partition,
            self.record_retries,
            self.skip_bad_records,
        )


@dataclass(frozen=True)
class _MapChunkTask:
    """Picklable map-only task over one contiguous chunk of (index,
    record) pairs; returns ``[(value, counts), ...]`` in chunk order."""

    fn: Callable[[Any], Any]
    record_retries: int
    skip_bad_records: bool
    error_value: Any

    def __call__(
        self, chunk: list[tuple[int, Any]]
    ) -> list[tuple[Any, Counter]]:
        out: list[tuple[Any, Counter]] = []
        for index, record in chunk:
            local: Counter = Counter()
            ok, value = _call_with_retries(
                self.fn,
                record,
                index,
                self.record_retries,
                self.skip_bad_records,
                local,
            )
            if not ok:
                out.append((self.error_value, local))
                continue
            local["records_mapped"] += 1
            out.append((value, local))
        return out


@dataclass
class MapReduceJob:
    """A configured MapReduce job; call :meth:`run` with the input."""

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    n_partitions: int = 8
    n_threads: int = 1
    record_retries: int = 0
    skip_bad_records: bool = False
    counters: dict[str, int] = field(default_factory=dict)
    #: optional completed-partition checkpointing: each partition's mapped
    #: output is persisted on completion, and a re-run of the same job
    #: (same checkpoint ``job_key``) loads finished partitions from disk
    checkpoint: PartitionCheckpointer | None = None
    #: execution backend for the map phase: an :class:`Executor`, an
    #: :class:`ExecutorConfig`, a backend name, or ``None`` (legacy
    #: ``n_threads`` behaviour)
    executor: Executor | ExecutorConfig | str | None = None

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ConfigurationError("n_partitions must be >= 1")
        if self.n_threads < 1:
            raise ConfigurationError("n_threads must be >= 1")
        if self.record_retries < 0:
            raise ConfigurationError("record_retries must be >= 0")

    def _partitions(self, records: Sequence[Any]) -> list[list[tuple[int, Any]]]:
        n = min(self.n_partitions, max(len(records), 1))
        parts: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
        for i, record in enumerate(records):
            parts[i % n].append((i, record))
        return parts

    def _map_partition(
        self, partition: list[tuple[int, Any]], partition_index: int = 0
    ) -> tuple[dict[Key, list[Any]], Counter]:
        """Map one partition; returns (grouped output, local counters).

        Local counters are merged by the coordinator after all
        partitions finish, so no counts are lost to thread races.  A
        traced run gets one span per partition (attached to the tracer
        root when mapped on a worker thread) carrying those counters.
        """
        with obs.span(
            "mapreduce.partition",
            partition=partition_index,
            n_records=len(partition),
        ) as sp:
            grouped, counts = _map_partition_core(
                self.mapper,
                self.combiner,
                partition,
                self.record_retries,
                self.skip_bad_records,
            )
            for name, value in counts.items():
                sp.add_counter(name, value)
        return grouped, counts

    def _map_partition_durable(
        self, partition: list[tuple[int, Any]], partition_index: int
    ) -> tuple[dict[Key, list[Any]], Counter]:
        """Checkpoint-aware partition map: load a completed partition's
        payload if the checkpoint has one, else map it and persist the
        result before crossing the crash boundary."""
        if self.checkpoint is None:
            return self._map_partition(partition, partition_index)
        cached = self.checkpoint.load(partition_index)
        if cached is not None:
            return cached
        from repro.runs.crash import crash_boundary

        grouped, counts = self._map_partition(partition, partition_index)
        self.checkpoint.save(partition_index, (grouped, counts))
        crash_boundary(f"partition:{partition_index}")
        return grouped, counts

    def _run_partitions_process(
        self,
        executor: Executor,
        partitions: list[list[tuple[int, Any]]],
    ) -> list[tuple[dict[Key, list[Any]], Counter]]:
        """Map partitions on a process pool.

        Workers run the pure partition task; the coordinator replays
        checkpointed partitions without dispatching them, records one
        ``mapreduce.partition`` span per computed partition (carrying
        the worker's counters, so traced accounting is complete), and
        persists each payload as it arrives — in partition order — so a
        kill mid-job leaves a resumable prefix exactly like the
        threaded path.
        """
        from repro.runs.crash import crash_boundary

        results: dict[int, tuple[dict[Key, list[Any]], Counter]] = {}
        pending: list[int] = []
        for index in range(len(partitions)):
            cached = (
                self.checkpoint.load(index) if self.checkpoint is not None else None
            )
            if cached is not None:
                results[index] = cached
            else:
                pending.append(index)

        if pending:
            task = _PartitionTask(
                mapper=self.mapper,
                combiner=self.combiner,
                record_retries=self.record_retries,
                skip_bad_records=self.skip_bad_records,
            )
            mapped = executor.imap_ordered(
                task, [partitions[i] for i in pending], chunk_size=1
            )
            for index, (grouped, counts) in zip(pending, mapped):
                with obs.span(
                    "mapreduce.partition",
                    partition=index,
                    n_records=len(partitions[index]),
                    backend=executor.backend,
                ) as sp:
                    for name, value in counts.items():
                        sp.add_counter(name, value)
                if self.checkpoint is not None:
                    self.checkpoint.save(index, (grouped, counts))
                    crash_boundary(f"partition:{index}")
                results[index] = (grouped, counts)
        return [results[i] for i in range(len(partitions))]

    def run(self, records: Sequence[Any]) -> dict[Key, Any]:
        """Execute the job; returns {key: reducer output} in key order."""
        partitions = self._partitions(list(records))
        self.counters["input_records"] = len(records)
        executor = as_executor(self.executor, self.n_threads)

        with obs.span(
            "mapreduce.job",
            n_records=len(records),
            n_partitions=len(partitions),
            backend=executor.backend,
            workers=executor.workers,
        ) as job_span:
            if executor.backend == "process":
                results = self._run_partitions_process(executor, partitions)
            elif executor.backend == "serial" or len(partitions) == 1:
                results = [
                    self._map_partition_durable(p, i)
                    for i, p in enumerate(partitions)
                ]
            else:
                results = executor.map_ordered(
                    lambda ip: self._map_partition_durable(ip[1], ip[0]),
                    list(enumerate(partitions)),
                )
            mapped = [grouped for grouped, _ in results]
            output = self._shuffle_and_reduce(results, mapped)
            # per-record counters already live on the partition spans;
            # the job span carries only the job-level ones so totals
            # over the tree don't double-count
            for name in ("input_records", "distinct_keys", "reduced_keys"):
                job_span.add_counter(name, self.counters[name])
        return output

    def _shuffle_and_reduce(
        self,
        results: list[tuple[dict[Key, list[Any]], Counter]],
        mapped: list[dict[Key, list[Any]]],
    ) -> dict[Key, Any]:
        """Counter aggregation, shuffle, and the reduce phase.

        Counter aggregation happens here, on the coordinating thread,
        from the per-partition ``Counter`` objects the workers returned
        as data — worker threads and processes never mutate
        ``self.counters`` directly, so there is no write race and no
        lost increment regardless of backend or scheduling.
        """
        totals: Counter = Counter()
        for _, counts in results:
            totals.update(counts)
        for name in (
            "records_mapped",
            "map_output_values",
            "failed_records",
            "retried_records",
        ):
            self.counters[name] = totals.get(name, 0)
        if self.combiner is not None:
            self.counters["combiner_values_in"] = totals.get("combiner_values_in", 0)
            self.counters["combiner_values_out"] = totals.get("combiner_values_out", 0)

        shuffled: dict[Key, list[Any]] = defaultdict(list)
        for part in mapped:
            for key, values in part.items():
                shuffled[key].extend(values)
        self.counters["distinct_keys"] = len(shuffled)

        output: dict[Key, Any] = {}
        for key in sorted(shuffled, key=repr):
            output[key] = self.reducer(key, shuffled[key])
        self.counters["reduced_keys"] = len(output)
        return output


def run_mapreduce(
    records: Sequence[Any],
    mapper: Mapper,
    reducer: Reducer,
    combiner: Combiner | None = None,
    n_partitions: int = 8,
    n_threads: int = 1,
    record_retries: int = 0,
    skip_bad_records: bool = False,
    checkpoint: PartitionCheckpointer | None = None,
    executor: Executor | ExecutorConfig | str | None = None,
) -> dict[Key, Any]:
    """One-shot convenience wrapper around :class:`MapReduceJob`."""
    job = MapReduceJob(
        mapper=mapper,
        reducer=reducer,
        combiner=combiner,
        n_partitions=n_partitions,
        n_threads=n_threads,
        record_retries=record_retries,
        skip_bad_records=skip_bad_records,
        checkpoint=checkpoint,
        executor=executor,
    )
    return job.run(records)


def run_map(
    records: Sequence[Any],
    fn: Callable[[Any], Any],
    n_threads: int = 1,
    record_retries: int = 0,
    skip_bad_records: bool = False,
    error_value: Any = None,
    counters: dict[str, int] | None = None,
    executor: Executor | ExecutorConfig | str | None = None,
) -> list[Any]:
    """Map-only job preserving input order (a common degenerate case:
    per-record featurization with no aggregation).

    A record whose ``fn`` raises is retried ``record_retries`` times;
    if it still fails, the job raises :class:`RecordError` with the
    record and its index — unless ``skip_bad_records`` is set, in which
    case the output slot holds ``error_value`` so alignment with the
    input is preserved.  Pass a dict as ``counters`` to receive
    ``records_mapped`` / ``failed_records`` / ``retried_records``
    (always merged on the coordinator from per-record/per-chunk local
    counters, never mutated from workers).

    ``executor`` selects the backend; the process backend dispatches
    contiguous chunks (``fn`` must be picklable) and flattens results
    in chunk order, so output and counters are byte-identical to the
    serial run.
    """
    ex = as_executor(executor, n_threads)

    def _one(indexed: tuple[int, Any]) -> tuple[Any, Counter]:
        index, record = indexed
        local: Counter = Counter()
        ok, value = _call_with_retries(
            fn, record, index, record_retries, skip_bad_records, local
        )
        if not ok:
            return error_value, local
        local["records_mapped"] += 1
        return value, local

    indexed = list(enumerate(records))
    with obs.span(
        "mapreduce.map",
        n_records=len(records),
        backend=ex.backend,
        workers=ex.workers,
    ) as sp:
        if ex.backend == "process" and len(indexed) > 1:
            task = _MapChunkTask(
                fn=fn,
                record_retries=record_retries,
                skip_bad_records=skip_bad_records,
                error_value=error_value,
            )
            chunks = iter_chunks(indexed, ex.workers * 4)
            results = [
                pair
                for chunk_result in ex.map_ordered(task, chunks, chunk_size=1)
                for pair in chunk_result
            ]
        elif ex.backend == "serial" or len(indexed) < 2:
            results = [_one(pair) for pair in indexed]
        else:
            results = ex.map_ordered(_one, indexed)
        if counters is not None or obs.enabled():
            totals: Counter = Counter()
            for _, local in results:
                totals.update(local)
            for name in ("records_mapped", "failed_records", "retried_records"):
                sp.add_counter(name, totals.get(name, 0))
                if counters is not None:
                    counters[name] = totals.get(name, 0)
    return [value for value, _ in results]
