"""A small in-process MapReduce engine.

Semantics match the classic model:

* ``mapper(record) -> iterable[(key, value)]`` runs once per input
  record (optionally across a thread pool, partitioned deterministically
  so output order does not depend on scheduling);
* an optional ``combiner(key, values) -> iterable[value]`` pre-reduces
  each partition's output;
* the shuffle groups values by key (keys must be hashable and sortable);
* ``reducer(key, values) -> output`` runs once per key, in sorted key
  order.

Determinism: values arrive at the reducer in (partition, input-order)
order regardless of thread scheduling, so jobs are reproducible.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Hashable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.core.exceptions import ConfigurationError

__all__ = ["MapReduceJob", "run_mapreduce", "run_map"]

Record = TypeVar("Record")
Key = Hashable
Mapper = Callable[[Any], Iterable[tuple[Key, Any]]]
Combiner = Callable[[Key, list[Any]], Iterable[Any]]
Reducer = Callable[[Key, list[Any]], Any]


@dataclass
class MapReduceJob:
    """A configured MapReduce job; call :meth:`run` with the input."""

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    n_partitions: int = 8
    n_threads: int = 1
    counters: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ConfigurationError("n_partitions must be >= 1")
        if self.n_threads < 1:
            raise ConfigurationError("n_threads must be >= 1")

    def _partitions(self, records: Sequence[Any]) -> list[list[Any]]:
        n = min(self.n_partitions, max(len(records), 1))
        parts: list[list[Any]] = [[] for _ in range(n)]
        for i, record in enumerate(records):
            parts[i % n].append(record)
        return parts

    def _map_partition(self, partition: list[Any]) -> dict[Key, list[Any]]:
        grouped: dict[Key, list[Any]] = defaultdict(list)
        for record in partition:
            for key, value in self.mapper(record):
                grouped[key].append(value)
        if self.combiner is not None:
            grouped = {
                key: list(self.combiner(key, values))
                for key, values in grouped.items()
            }
        return grouped

    def run(self, records: Sequence[Any]) -> dict[Key, Any]:
        """Execute the job; returns {key: reducer output} in key order."""
        partitions = self._partitions(list(records))
        self.counters["input_records"] = len(records)

        if self.n_threads == 1 or len(partitions) == 1:
            mapped = [self._map_partition(p) for p in partitions]
        else:
            with ThreadPoolExecutor(max_workers=self.n_threads) as pool:
                mapped = list(pool.map(self._map_partition, partitions))

        shuffled: dict[Key, list[Any]] = defaultdict(list)
        for part in mapped:
            for key, values in part.items():
                shuffled[key].extend(values)
        self.counters["distinct_keys"] = len(shuffled)

        output: dict[Key, Any] = {}
        for key in sorted(shuffled, key=repr):
            output[key] = self.reducer(key, shuffled[key])
        self.counters["reduced_keys"] = len(output)
        return output


def run_mapreduce(
    records: Sequence[Any],
    mapper: Mapper,
    reducer: Reducer,
    combiner: Combiner | None = None,
    n_partitions: int = 8,
    n_threads: int = 1,
) -> dict[Key, Any]:
    """One-shot convenience wrapper around :class:`MapReduceJob`."""
    job = MapReduceJob(
        mapper=mapper,
        reducer=reducer,
        combiner=combiner,
        n_partitions=n_partitions,
        n_threads=n_threads,
    )
    return job.run(records)


def run_map(
    records: Sequence[Any],
    fn: Callable[[Any], Any],
    n_threads: int = 1,
) -> list[Any]:
    """Map-only job preserving input order (a common degenerate case:
    per-record featurization with no aggregation)."""
    if n_threads == 1 or len(records) < 2:
        return [fn(r) for r in records]
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return list(pool.map(fn, records))
