"""Multi-stage dataflow plans.

A :class:`StagePlan` chains named stages, each a callable from the
previous stage's output to the next.  The split architecture's property
that "each individual can enter and exit at different steps" maps to
stages having well-defined, inspectable inputs and outputs: every stage
result is retained on the plan run for inspection, and a plan can be
resumed from any stage with a substituted artifact.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import repro.obs as obs
from repro.core.exceptions import ConfigurationError

__all__ = ["Stage", "StagePlan", "PlanRun"]


@dataclass(frozen=True)
class Stage:
    """One named stage of a plan."""

    name: str
    fn: Callable[[Any], Any]
    description: str = ""


@dataclass
class PlanRun:
    """Artifacts and timings from executing a plan."""

    artifacts: dict[str, Any] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def output(self) -> Any:
        if not self.artifacts:
            return None
        return next(reversed(self.artifacts.values()))


class StagePlan:
    """An ordered list of stages executed sequentially."""

    def __init__(self, stages: list[Stage] | None = None) -> None:
        self.stages: list[Stage] = list(stages or [])

    def add(self, name: str, fn: Callable[[Any], Any], description: str = "") -> "StagePlan":
        if any(s.name == name for s in self.stages):
            raise ConfigurationError(f"duplicate stage name {name!r}")
        self.stages.append(Stage(name=name, fn=fn, description=description))
        return self

    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    def run(self, initial: Any, start_at: str | None = None, injected: Any = None) -> PlanRun:
        """Execute stages in order.

        ``start_at`` skips stages before the named one and feeds
        ``injected`` (a substituted upstream artifact) into it — this is
        how a team member re-enters the pipeline at their step.
        """
        run = PlanRun()
        value = initial
        started = start_at is None
        for stage in self.stages:
            if not started:
                if stage.name == start_at:
                    started = True
                    value = injected
                else:
                    continue
            with obs.timed(f"plan.{stage.name}") as t:
                value = stage.fn(value)
            run.timings[stage.name] = t.duration
            run.artifacts[stage.name] = value
        if not started:
            raise ConfigurationError(f"stage {start_at!r} not found in plan")
        return run
