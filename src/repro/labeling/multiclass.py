"""Multi-class weak supervision (paper §4.1).

"While Snorkel supports both binary and multi-class classification
tasks, in this work, we evaluate our methods on binary classification
tasks, but can easily extend to multi-class."  This module is that
extension: labeling functions vote for one of K classes or abstain, and
a class-conditional generative model (EM, Dirichlet-smoothed — the K-ary
generalization of :class:`~repro.labeling.label_model.GenerativeLabelModel`)
denoises the votes into a probabilistic label distribution per point.

Vote convention: an integer in ``{0, ..., n_classes-1}`` for a class,
or :data:`MC_ABSTAIN` (-1) to abstain.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import LabelingError, NotFittedError
from repro.features.table import FeatureTable

__all__ = [
    "MC_ABSTAIN",
    "MulticlassLF",
    "MulticlassLabelModel",
    "apply_multiclass_lfs",
    "class_value_lf",
]

#: the multi-class abstain vote
MC_ABSTAIN = -1

_EPS = 1e-9


@dataclass(frozen=True)
class MulticlassLF:
    """A labeling function voting for one of K classes or abstaining."""

    name: str
    fn: Callable[[dict[str, object]], int] = field(compare=False)
    n_classes: int = 2
    origin: str = "manual"

    def __call__(self, row: dict[str, object]) -> int:
        vote = self.fn(row)
        if vote != MC_ABSTAIN and not 0 <= vote < self.n_classes:
            raise LabelingError(
                f"multiclass LF {self.name!r} returned {vote!r}; expected "
                f"a class in [0, {self.n_classes}) or MC_ABSTAIN"
            )
        return vote


def class_value_lf(
    name: str,
    feature: str,
    values: frozenset[str],
    target_class: int,
    n_classes: int,
    origin: str = "mined",
) -> MulticlassLF:
    """LF voting ``target_class`` when ``feature`` contains all of
    ``values`` (the multi-class analogue of
    :func:`~repro.labeling.lf.conjunction_lf`)."""
    if not 0 <= target_class < n_classes:
        raise LabelingError(
            f"target_class {target_class} outside [0, {n_classes})"
        )

    def fn(row: dict[str, object]) -> int:
        present = row.get(feature)
        if present is None:
            return MC_ABSTAIN
        return target_class if values <= present else MC_ABSTAIN  # type: ignore[operator]

    return MulticlassLF(name=name, fn=fn, n_classes=n_classes, origin=origin)


def apply_multiclass_lfs(
    lfs: list[MulticlassLF], table: FeatureTable
) -> np.ndarray:
    """Apply ``lfs`` to every row; returns an (n_rows, n_lfs) int array
    of votes (class ids or :data:`MC_ABSTAIN`)."""
    if not lfs:
        raise LabelingError("apply_multiclass_lfs requires at least one LF")
    n_classes = lfs[0].n_classes
    if any(lf.n_classes != n_classes for lf in lfs):
        raise LabelingError("all LFs must share the same n_classes")
    votes = np.full((table.n_rows, len(lfs)), MC_ABSTAIN, dtype=np.int64)
    for i, row in enumerate(table.iter_rows()):
        for j, lf in enumerate(lfs):
            votes[i, j] = lf(row)
    return votes


class MulticlassLabelModel:
    """EM-fit class-conditional model over K-ary votes.

    Model: hidden label y ~ Categorical(π); each LF j emits vote
    v ∈ {0..K-1, abstain} with P(v | y), conditionally independently.
    The E-step computes the posterior over y per point; the M-step
    re-estimates the (K+1)-way conditional tables with Dirichlet
    smoothing.  Symmetry is broken by initializing each LF to favor
    agreement with its own vote (LFs better than random).
    """

    def __init__(
        self,
        n_classes: int,
        class_balance: np.ndarray | None = None,
        max_iter: int = 100,
        tol: float = 1e-5,
        smoothing: float = 1.0,
    ) -> None:
        if n_classes < 2:
            raise LabelingError(f"n_classes must be >= 2, got {n_classes}")
        if class_balance is not None:
            class_balance = np.asarray(class_balance, dtype=float)
            if class_balance.shape != (n_classes,):
                raise LabelingError(
                    f"class_balance must have shape ({n_classes},)"
                )
            if abs(class_balance.sum() - 1.0) > 1e-6 or (class_balance <= 0).any():
                raise LabelingError("class_balance must be a positive distribution")
        if smoothing <= 0:
            raise LabelingError("smoothing must be positive")
        self.n_classes = n_classes
        self.class_balance = class_balance
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.conditionals_: np.ndarray | None = None  # (m, K, K+1)
        self.balance_: np.ndarray | None = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------
    def _onehot(self, votes: np.ndarray) -> np.ndarray:
        """(n, m, K+1) indicator; last slot is abstain."""
        n, m = votes.shape
        onehot = np.zeros((n, m, self.n_classes + 1))
        for v in range(self.n_classes):
            onehot[:, :, v] = votes == v
        onehot[:, :, self.n_classes] = votes == MC_ABSTAIN
        return onehot

    def _posterior(
        self, onehot: np.ndarray, table: np.ndarray, pi: np.ndarray
    ) -> np.ndarray:
        log_table = np.log(table.clip(_EPS))  # (m, K, K+1)
        loglik = np.einsum("imv,myv->iy", onehot, log_table) + np.log(pi)
        loglik -= loglik.max(axis=1, keepdims=True)
        posterior = np.exp(loglik)
        return posterior / posterior.sum(axis=1, keepdims=True)

    def fit(self, votes: np.ndarray) -> "MulticlassLabelModel":
        votes = np.asarray(votes)
        if votes.ndim != 2:
            raise LabelingError("votes must be 2-D (points x LFs)")
        valid = (votes == MC_ABSTAIN) | (
            (votes >= 0) & (votes < self.n_classes)
        )
        if not valid.all():
            raise LabelingError("votes contain values outside the class range")
        if not (votes != MC_ABSTAIN).any():
            raise LabelingError("every point is uncovered; add LFs first")

        n, m = votes.shape
        K = self.n_classes
        onehot = self._onehot(votes)
        pi = (
            self.class_balance
            if self.class_balance is not None
            else np.full(K, 1.0 / K)
        )

        # symmetry-broken init: each LF's vote v is more likely under
        # y == v than under other classes
        freq = onehot.mean(axis=0) + 1e-3  # (m, K+1)
        table = np.empty((m, K, K + 1))
        for y in range(K):
            tilt = np.full(K + 1, 0.6)
            tilt[y] = 1.8
            tilt[K] = 1.0  # abstain untouched
            table[:, y, :] = freq * tilt
        table /= table.sum(axis=2, keepdims=True)

        prior = np.full((m, K, K + 1), self.smoothing)
        for iteration in range(1, self.max_iter + 1):
            q = self._posterior(onehot, table, pi)  # (n, K)
            counts = np.einsum("iy,imv->myv", q, onehot) + prior
            new_table = counts / counts.sum(axis=2, keepdims=True)
            if self.class_balance is None:
                pi = q.mean(axis=0).clip(_EPS)
                pi = pi / pi.sum()
            delta = float(np.abs(new_table - table).max())
            table = new_table
            self.n_iterations_ = iteration
            if delta < self.tol:
                break

        self.conditionals_ = table
        self.balance_ = np.asarray(pi, dtype=float)
        return self

    def predict_proba(self, votes: np.ndarray) -> np.ndarray:
        """(n, K) posterior per point; uncovered points get the class
        balance."""
        if self.conditionals_ is None or self.balance_ is None:
            raise NotFittedError("MulticlassLabelModel.fit has not been called")
        votes = np.asarray(votes)
        if votes.shape[1] != self.conditionals_.shape[0]:
            raise LabelingError(
                f"votes have {votes.shape[1]} LFs; model fit with "
                f"{self.conditionals_.shape[0]}"
            )
        onehot = self._onehot(votes)
        proba = self._posterior(onehot, self.conditionals_, self.balance_)
        uncovered = (votes == MC_ABSTAIN).all(axis=1)
        proba[uncovered] = self.balance_
        return proba

    def predict(self, votes: np.ndarray) -> np.ndarray:
        return self.predict_proba(votes).argmax(axis=1)

    def fit_predict(self, votes: np.ndarray) -> np.ndarray:
        return self.fit(votes).predict(votes)
