"""LF and label-model analysis against a gold-labeled development set.

Produces the canonical weak-supervision metrics the paper reports in
§6.7: per-LF polarity / coverage / empirical accuracy, and
precision / recall / F1 / coverage of the combined probabilistic labels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import LabelingError
from repro.labeling.matrix import LabelMatrix

__all__ = ["LFAnalysis", "WeakLabelQuality", "weak_label_quality"]


@dataclass(frozen=True)
class WeakLabelQuality:
    """Quality of a probabilistic labeling against gold labels.

    ``coverage`` counts points whose probabilistic label is confident
    enough to train on (outside the ``abstain_band`` around the class
    prior); precision / recall / F1 are computed over covered points at
    the 0.5 cut.
    """

    precision: float
    recall: float
    f1: float
    coverage: float
    n_points: int

    def as_dict(self) -> dict[str, float]:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "coverage": self.coverage,
        }


def weak_label_quality(
    proba: np.ndarray,
    gold: np.ndarray,
    prior: float | None = None,
    abstain_band: float = 0.02,
    threshold: float | None = None,
) -> WeakLabelQuality:
    """Score probabilistic labels against gold labels.

    A point is *covered* when its probability differs from the
    uninformative prior by more than ``abstain_band`` (uncovered points
    received no LF evidence and fall back to the prior).  Recall is
    measured over all gold positives — uncovered positives count as
    misses, which is what makes low-coverage, high-precision LF suites
    score poorly (the paper's Challenge 3).

    ``threshold`` is the posterior cut declaring a point positive; when
    ``None`` it is tuned to maximize F1 on the supplied gold labels —
    matching the paper's note that "the cut-off to compute metrics
    including F1 score [is] decided upon viewing live performance".
    """
    proba = np.asarray(proba, dtype=float)
    gold = np.asarray(gold, dtype=int)
    if proba.shape != gold.shape:
        raise LabelingError(
            f"proba and gold have mismatched shapes {proba.shape} vs {gold.shape}"
        )
    if prior is None:
        prior = float(np.median(proba))
    covered = np.abs(proba - prior) > abstain_band

    def score_at(cut: float) -> tuple[float, float, float]:
        predicted_pos = covered & (proba > cut)
        tp = float((predicted_pos & (gold == 1)).sum())
        fp = float((predicted_pos & (gold == 0)).sum())
        fn = float(((gold == 1) & ~predicted_pos).sum())
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return precision, recall, f1

    if threshold is None:
        candidates = np.unique(np.concatenate([[0.5, prior], proba[covered]]))
        best = (0.0, 0.0, 0.0)
        for cut in candidates:
            result = score_at(float(cut))
            if result[2] > best[2]:
                best = result
        precision, recall, f1 = best
    else:
        precision, recall, f1 = score_at(threshold)
    return WeakLabelQuality(
        precision=precision,
        recall=recall,
        f1=f1,
        coverage=float(covered.mean()),
        n_points=len(gold),
    )


class LFAnalysis:
    """Per-LF diagnostics for a label matrix, optionally against gold."""

    def __init__(self, matrix: LabelMatrix, gold: np.ndarray | None = None) -> None:
        self.matrix = matrix
        if gold is not None:
            gold = np.asarray(gold, dtype=int)
            if len(gold) != matrix.n_points:
                raise LabelingError(
                    f"gold has {len(gold)} labels for {matrix.n_points} points"
                )
        self.gold = gold

    def summary(self) -> list[dict[str, object]]:
        """One diagnostics row per LF."""
        votes = self.matrix.votes
        fired = votes != 0
        total_fired = fired.sum(axis=1)
        rows: list[dict[str, object]] = []
        for j, lf in enumerate(self.matrix.lfs):
            col = votes[:, j]
            col_fired = fired[:, j]
            n_fired = int(col_fired.sum())
            overlaps = int((col_fired & (total_fired >= 2)).sum())
            others = np.delete(votes, j, axis=1)
            disagrees = (
                (others != 0) & (others != col[:, None])
            ).any(axis=1)
            conflicts = int((col_fired & disagrees).sum())
            polarity = sorted(set(col[col_fired].tolist()))
            row: dict[str, object] = {
                "lf": lf.name,
                "origin": lf.origin,
                "polarity": polarity,
                "coverage": n_fired / max(self.matrix.n_points, 1),
                "overlap": overlaps / max(self.matrix.n_points, 1),
                "conflict": conflicts / max(self.matrix.n_points, 1),
            }
            if self.gold is not None and n_fired > 0:
                signed_gold = np.where(self.gold == 1, 1, -1)
                correct = int((col[col_fired] == signed_gold[col_fired]).sum())
                row["empirical_accuracy"] = correct / n_fired
                pos_votes = col == 1
                n_pos_votes = int(pos_votes.sum())
                if n_pos_votes:
                    row["precision_pos"] = float(
                        (self.gold[pos_votes] == 1).mean()
                    )
            rows.append(row)
        return rows

    def label_model_quality(
        self, proba: np.ndarray, prior: float | None = None
    ) -> WeakLabelQuality:
        """Quality of probabilistic labels over this matrix's points."""
        if self.gold is None:
            raise LabelingError("label_model_quality requires gold labels")
        return weak_label_quality(proba, self.gold, prior=prior)
