"""Label matrix: the result of applying m LFs to n data points.

Application runs on the MapReduce substrate (mirroring the paper's
implementation) and the matrix offers the summary statistics weak
supervision cares about: coverage, overlap, and conflict.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import LabelingError
from repro.dataflow.mapreduce import run_map
from repro.exec import Executor, ExecutorConfig
from repro.features.table import FeatureTable
from repro.labeling.lf import ABSTAIN, LabelingFunction

__all__ = ["LabelMatrix", "apply_lfs"]


class LabelMatrix:
    """(n_points, n_lfs) int8 matrix of votes in {-1, 0, +1}."""

    def __init__(self, votes: np.ndarray, lfs: list[LabelingFunction]) -> None:
        votes = np.asarray(votes, dtype=np.int8)
        if votes.ndim != 2:
            raise LabelingError("votes must be a 2-D array")
        if votes.shape[1] != len(lfs):
            raise LabelingError(
                f"votes has {votes.shape[1]} columns but {len(lfs)} LFs supplied"
            )
        if not np.isin(votes, (-1, 0, 1)).all():
            raise LabelingError("votes must be in {-1, 0, +1}")
        self.votes = votes
        self.lfs = list(lfs)

    @property
    def n_points(self) -> int:
        return self.votes.shape[0]

    @property
    def n_lfs(self) -> int:
        return self.votes.shape[1]

    @property
    def lf_names(self) -> list[str]:
        return [lf.name for lf in self.lfs]

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def coverage(self) -> float:
        """Fraction of points with at least one non-abstain vote."""
        if self.n_points == 0:
            return 0.0
        return float((self.votes != ABSTAIN).any(axis=1).mean())

    def lf_coverage(self) -> np.ndarray:
        """Per-LF fraction of points voted on."""
        return (self.votes != ABSTAIN).mean(axis=0)

    def overlap(self) -> float:
        """Fraction of points with two or more non-abstain votes."""
        if self.n_points == 0:
            return 0.0
        return float(((self.votes != ABSTAIN).sum(axis=1) >= 2).mean())

    def conflict(self) -> float:
        """Fraction of points receiving both a +1 and a -1 vote."""
        if self.n_points == 0:
            return 0.0
        has_pos = (self.votes == 1).any(axis=1)
        has_neg = (self.votes == -1).any(axis=1)
        return float((has_pos & has_neg).mean())

    def select_lfs(self, indices: list[int]) -> "LabelMatrix":
        return LabelMatrix(
            self.votes[:, indices], [self.lfs[i] for i in indices]
        )

    def hstack(self, other: "LabelMatrix") -> "LabelMatrix":
        """Concatenate LF columns (same points)."""
        if other.n_points != self.n_points:
            raise LabelingError(
                f"cannot hstack matrices with {self.n_points} and "
                f"{other.n_points} points"
            )
        return LabelMatrix(
            np.hstack([self.votes, other.votes]), self.lfs + other.lfs
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelMatrix(n_points={self.n_points}, n_lfs={self.n_lfs}, "
            f"coverage={self.coverage():.3f})"
        )


def apply_lfs(
    lfs: list[LabelingFunction],
    table: FeatureTable,
    n_threads: int = 1,
    executor: Executor | ExecutorConfig | str | None = None,
) -> LabelMatrix:
    """Apply ``lfs`` to every row of ``table``.

    LFs see the raw feature row (including nonservable features — the
    whole point of the offline curation step).

    LF vote functions are closures over mined predicates and do not
    pickle, so ``executor`` must be a serial or thread backend (callers
    on the process backend downgrade to threads for this step).
    """
    if not lfs:
        raise LabelingError("apply_lfs requires at least one LF")

    def vote_row(row: dict[str, object]) -> list[int]:
        return [lf(row) for lf in lfs]

    rows = list(table.iter_rows())
    votes = np.array(
        run_map(rows, vote_row, n_threads=n_threads, executor=executor),
        dtype=np.int8,
    )
    votes = votes.reshape(len(rows), len(lfs))
    return LabelMatrix(votes, lfs)
