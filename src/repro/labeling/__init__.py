"""Weak supervision (paper §4.1): labeling functions, the label matrix,
and a Snorkel-style generative label model.

A labeling function (LF) maps a data point's feature row to a vote in
{POSITIVE, NEGATIVE, ABSTAIN}.  Applying m LFs to n points yields an
(n, m) label matrix; the generative model estimates each LF's accuracy
from agreements/disagreements and combines the votes into probabilistic
labels used to train the end discriminative model with a noise-aware
loss.
"""

from repro.labeling.lf import ABSTAIN, NEGATIVE, POSITIVE, LabelingFunction, labeling_function
from repro.labeling.matrix import LabelMatrix, apply_lfs
from repro.labeling.majority import MajorityVoter
from repro.labeling.label_model import GenerativeLabelModel
from repro.labeling.analysis import LFAnalysis
from repro.labeling.multiclass import (
    MC_ABSTAIN,
    MulticlassLF,
    MulticlassLabelModel,
    apply_multiclass_lfs,
)

__all__ = [
    "ABSTAIN",
    "MC_ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "GenerativeLabelModel",
    "LFAnalysis",
    "LabelMatrix",
    "LabelingFunction",
    "MajorityVoter",
    "MulticlassLF",
    "MulticlassLabelModel",
    "apply_lfs",
    "apply_multiclass_lfs",
    "labeling_function",
]
