"""Generative label model (Snorkel-style), fit with EM.

Model: each point has a hidden label y ∈ {1, 0} with P(y=1) = π.  Each
LF j emits a vote v ∈ {+1, 0, −1} with class-conditional probabilities
P(λ_j = v | y) — votes are conditionally independent given y [Ratner et
al. 2019].  The class-conditional form matters under the paper's heavy
class imbalance: a positive LF with raw precision 0.4 over a 4 % base
rate is a 10× lift and must count as strong positive evidence, which a
symmetric "accuracy" parameterization cannot express.

EM updates are closed-form:

* E-step: posterior q_i = P(y_i = 1 | λ_i) from the per-vote likelihood
  ratios (abstains carry evidence too — a positive LF staying silent is
  mild negative evidence);
* M-step: P(λ_j = v | y) := expected empirical frequencies under q,
  with Dirichlet pseudo-counts; π := mean posterior (or held fixed when
  a class balance is supplied, the production-recommended mode).

The conditional tables can be *anchored* to estimates from a labeled
development set of an existing modality (paper §4.2) — anchors enter as
pseudo-counts, so EM still adapts to the target modality's vote
pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import LabelingError, NotFittedError
from repro.labeling.matrix import LabelMatrix

__all__ = ["GenerativeLabelModel", "LabelModelInfo", "conditional_table"]

_EPS = 1e-9
#: vote values in table order: columns index [+1, 0, -1]
_VOTE_ORDER = (1, 0, -1)


@dataclass
class LabelModelInfo:
    """Diagnostics from fitting the generative model."""

    n_iterations: int = 0
    converged: bool = False
    log_likelihood: list[float] = field(default_factory=list)


def conditional_table(
    votes: np.ndarray,
    labels: np.ndarray,
    smoothing: float = 1.0,
) -> np.ndarray:
    """Empirical P(λ_j = v | y) from gold labels.

    Returns an array of shape (n_lfs, 2, 3): axis 1 is y ∈ {1, 0} (in
    that order), axis 2 is the vote in order (+1, 0, −1).  Laplace
    smoothing keeps all probabilities strictly positive.
    """
    votes = np.asarray(votes)
    labels = np.asarray(labels, dtype=int)
    if votes.shape[0] != len(labels):
        raise LabelingError("votes and labels must have the same length")
    n_lfs = votes.shape[1]
    table = np.empty((n_lfs, 2, 3))
    for y_index, y_value in enumerate((1, 0)):
        mask = labels == y_value
        denom = mask.sum() + 3.0 * smoothing
        for v_index, v_value in enumerate(_VOTE_ORDER):
            count = (votes[mask] == v_value).sum(axis=0)
            table[:, y_index, v_index] = (count + smoothing) / denom
    return table


class GenerativeLabelModel:
    """EM-fit class-conditional LF model producing probabilistic labels.

    Parameters
    ----------
    class_balance:
        P(y=1).  When given, π is held fixed (stable under heavy
        imbalance); when ``None``, π is learned by EM.
    max_iter, tol:
        EM stopping controls (max conditional-probability change).
    smoothing:
        Dirichlet pseudo-count per (LF, class, vote) cell.
    polarity_consistent:
        When True (default), an LF's vote is never allowed to become
        evidence *against* its own polarity — P(λ=+1|y=1) is kept at
        least P(λ=+1|y=0), and symmetrically for −1 votes.  This mirrors
        the paper's requirement that LFs "each perform better than
        random" and prevents the EM collapse mode where rare positive
        votes get reinterpreted as negative evidence.
    """

    def __init__(
        self,
        class_balance: float | None = None,
        max_iter: int = 100,
        tol: float = 1e-5,
        smoothing: float = 1.0,
        polarity_consistent: bool = True,
    ) -> None:
        if class_balance is not None and not 0.0 < class_balance < 1.0:
            raise LabelingError(
                f"class_balance must be in (0, 1), got {class_balance}"
            )
        if smoothing <= 0:
            raise LabelingError(f"smoothing must be positive, got {smoothing}")
        self.class_balance = class_balance
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.polarity_consistent = polarity_consistent
        self.conditionals_: np.ndarray | None = None
        self.balance_: float | None = None
        self.info_: LabelModelInfo | None = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        matrix: LabelMatrix,
        accuracy_anchors: np.ndarray | None = None,
        anchor_strength: float = 50.0,
    ) -> "GenerativeLabelModel":
        """Fit by EM.

        ``accuracy_anchors`` optionally supplies per-LF conditional
        tables of shape (n_lfs, 2, 3) — e.g. from
        :func:`conditional_table` on a labeled development set of an
        existing modality.  Anchors act as Dirichlet pseudo-counts of
        total strength ``anchor_strength`` per (LF, class) row.
        """
        if matrix.n_lfs == 0:
            raise LabelingError("cannot fit a label model with zero LFs")
        votes = matrix.votes
        if not (votes != 0).any():
            raise LabelingError("every point is uncovered; add LFs first")
        n, m = votes.shape
        onehot = self._onehot(votes)  # (n, m, 3)

        if accuracy_anchors is not None:
            anchors = np.asarray(accuracy_anchors, dtype=float)
            if anchors.shape != (m, 2, 3):
                raise LabelingError(
                    f"anchors must have shape ({m}, 2, 3), got {anchors.shape}"
                )
            prior = anchors * anchor_strength
            table = self._normalize(prior + self.smoothing)
        else:
            prior = np.full((m, 2, 3), self.smoothing)
            # Break the symmetric EM fixpoint (uniform conditionals give
            # posterior == prior forever): initialize each LF's table
            # from its empirical vote frequencies, tilted so votes agree
            # with their own polarity — the paper's "better than random"
            # assumption on LFs.
            freq = onehot.mean(axis=0) + 1e-3  # (m, 3) in order (+1,0,-1)
            tilt_pos = freq * np.array([1.6, 1.0, 0.4])
            tilt_neg = freq * np.array([0.4, 1.0, 1.6])
            table = self._normalize(np.stack([tilt_pos, tilt_neg], axis=1))

        pi = self.class_balance if self.class_balance is not None else 0.5

        info = LabelModelInfo()
        for iteration in range(1, self.max_iter + 1):
            q = self._posterior(onehot, table, pi)
            # M-step: expected vote counts per class
            counts_pos = np.einsum("i,ijv->jv", q, onehot)
            counts_neg = np.einsum("i,ijv->jv", 1.0 - q, onehot)
            new_table = np.stack([counts_pos, counts_neg], axis=1) + prior
            new_table = self._normalize(new_table)
            if self.polarity_consistent:
                new_table = self._enforce_polarity(new_table)
            if self.class_balance is None:
                pi = float(np.clip(q.mean(), _EPS, 1.0 - _EPS))
            info.log_likelihood.append(
                self._log_likelihood(onehot, new_table, pi)
            )
            delta = float(np.abs(new_table - table).max())
            table = new_table
            info.n_iterations = iteration
            if delta < self.tol:
                info.converged = True
                break

        self.conditionals_ = table
        self.balance_ = float(pi)
        self.info_ = info
        return self

    @staticmethod
    def _onehot(votes: np.ndarray) -> np.ndarray:
        onehot = np.zeros((*votes.shape, 3))
        for v_index, v_value in enumerate(_VOTE_ORDER):
            onehot[:, :, v_index] = votes == v_value
        return onehot

    @staticmethod
    def _normalize(table: np.ndarray) -> np.ndarray:
        return table / table.sum(axis=2, keepdims=True).clip(_EPS)

    @staticmethod
    def _enforce_polarity(table: np.ndarray) -> np.ndarray:
        """Keep each vote's likelihood ratio on its own side of 1."""
        fixed = table.copy()
        # +1 votes: P(+1|y=1) >= P(+1|y=0)
        lo = np.minimum(fixed[:, 0, 0], fixed[:, 1, 0])
        hi = np.maximum(fixed[:, 0, 0], fixed[:, 1, 0])
        fixed[:, 0, 0], fixed[:, 1, 0] = hi, lo
        # -1 votes: P(-1|y=0) >= P(-1|y=1)
        lo = np.minimum(fixed[:, 0, 2], fixed[:, 1, 2])
        hi = np.maximum(fixed[:, 0, 2], fixed[:, 1, 2])
        fixed[:, 0, 2], fixed[:, 1, 2] = lo, hi
        # re-normalize the abstain cell to keep rows summing to 1
        fixed[:, :, 1] = 1.0 - fixed[:, :, 0] - fixed[:, :, 2]
        fixed[:, :, 1] = fixed[:, :, 1].clip(_EPS)
        return GenerativeLabelModel._normalize(fixed)

    @staticmethod
    def _class_loglik(onehot: np.ndarray, table: np.ndarray) -> np.ndarray:
        """(n, 2) log p(λ_i | y) for y in {1, 0}."""
        log_table = np.log(table.clip(_EPS))  # (m, 2, 3)
        return np.einsum("ijv,jyv->iy", onehot, log_table)

    def _posterior(
        self, onehot: np.ndarray, table: np.ndarray, pi: float
    ) -> np.ndarray:
        loglik = self._class_loglik(onehot, table)
        z = loglik[:, 0] - loglik[:, 1] + np.log(pi) - np.log(1.0 - pi)
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))

    def _log_likelihood(
        self, onehot: np.ndarray, table: np.ndarray, pi: float
    ) -> float:
        loglik = self._class_loglik(onehot, table)
        stacked = loglik + np.log([pi, 1.0 - pi])
        m = stacked.max(axis=1)
        return float((m + np.log(np.exp(stacked - m[:, None]).sum(axis=1))).mean())

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, matrix: LabelMatrix) -> np.ndarray:
        """P(y=1 | votes) per point; all-abstain points get the class
        balance (their abstain evidence is deliberately ignored so that
        uncovered points stay at the prior, as in Snorkel)."""
        if self.conditionals_ is None or self.balance_ is None:
            raise NotFittedError("GenerativeLabelModel.fit has not been called")
        if matrix.n_lfs != self.conditionals_.shape[0]:
            raise LabelingError(
                f"matrix has {matrix.n_lfs} LFs; model was fit with "
                f"{self.conditionals_.shape[0]}"
            )
        onehot = self._onehot(matrix.votes)
        proba = self._posterior(onehot, self.conditionals_, self.balance_)
        uncovered = (matrix.votes != 0).sum(axis=1) == 0
        proba[uncovered] = self.balance_
        return proba

    def predict(self, matrix: LabelMatrix, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(matrix) > threshold).astype(np.int64)

    def fit_predict_proba(self, matrix: LabelMatrix) -> np.ndarray:
        return self.fit(matrix).predict_proba(matrix)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def learned_accuracies(self) -> np.ndarray:
        """Per-LF P(λ = y | λ ≠ 0) implied by the conditional tables and
        the class balance (a scalar summary for reporting)."""
        if self.conditionals_ is None or self.balance_ is None:
            raise NotFittedError("GenerativeLabelModel.fit has not been called")
        t = self.conditionals_
        pi = self.balance_
        agree = pi * t[:, 0, 0] + (1.0 - pi) * t[:, 1, 2]
        fire = pi * (t[:, 0, 0] + t[:, 0, 2]) + (1.0 - pi) * (
            t[:, 1, 0] + t[:, 1, 2]
        )
        return agree / fire.clip(_EPS)

    def lf_summary(self, matrix: LabelMatrix) -> list[dict[str, object]]:
        """Per-LF learned parameters next to empirical coverage."""
        if self.conditionals_ is None:
            raise NotFittedError("GenerativeLabelModel.fit has not been called")
        accuracies = self.learned_accuracies()
        cov = matrix.lf_coverage()
        t = self.conditionals_
        return [
            {
                "lf": lf.name,
                "origin": lf.origin,
                "learned_accuracy": round(float(a), 4),
                "p_fire_pos": round(float(t[j, 0, 0] + t[j, 0, 2]), 4),
                "p_fire_neg": round(float(t[j, 1, 0] + t[j, 1, 2]), 4),
                "coverage": round(float(c), 4),
            }
            for j, (lf, a, c) in enumerate(zip(matrix.lfs, accuracies, cov))
        ]
