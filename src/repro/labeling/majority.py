"""Majority-vote baseline label aggregator.

The simplest way to combine LF votes; the generative model should beat
it whenever LF accuracies differ (an ablation bench checks this).
"""

from __future__ import annotations

import numpy as np

from repro.labeling.matrix import LabelMatrix

__all__ = ["MajorityVoter"]


class MajorityVoter:
    """Combine votes by (optionally class-prior-broken) majority."""

    def __init__(self, prior: float = 0.5) -> None:
        if not 0.0 < prior < 1.0:
            raise ValueError(f"prior must be in (0, 1), got {prior}")
        self.prior = prior

    def predict_proba(self, matrix: LabelMatrix) -> np.ndarray:
        """P(y=1) per point: fraction of positive votes among
        non-abstains, falling back to the prior for all-abstain rows."""
        votes = matrix.votes
        n_pos = (votes == 1).sum(axis=1).astype(float)
        n_neg = (votes == -1).sum(axis=1).astype(float)
        total = n_pos + n_neg
        proba = np.full(matrix.n_points, self.prior)
        voted = total > 0
        proba[voted] = n_pos[voted] / total[voted]
        return proba

    def predict(self, matrix: LabelMatrix, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(matrix) > threshold).astype(np.int64)
