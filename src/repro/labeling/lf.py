"""Labeling functions.

An LF takes a feature row (feature-name -> value mapping, with missing
features as ``None``) and returns POSITIVE (+1), NEGATIVE (-1), or
ABSTAIN (0).  LFs carry provenance metadata ("origin") so experiments
can distinguish mined, expert, rule, and propagation LFs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.exceptions import LabelingError

__all__ = [
    "ABSTAIN",
    "NEGATIVE",
    "POSITIVE",
    "LabelingFunction",
    "labeling_function",
    "conjunction_lf",
    "numeric_threshold_lf",
]

POSITIVE = 1
NEGATIVE = -1
ABSTAIN = 0

_VALID_VOTES = frozenset({POSITIVE, NEGATIVE, ABSTAIN})

FeatureRow = dict[str, object]


@dataclass(frozen=True)
class LabelingFunction:
    """A named, metadata-carrying labeling function."""

    name: str
    fn: Callable[[FeatureRow], int] = field(compare=False)
    origin: str = "manual"
    #: features the LF reads (for nonservable bookkeeping / analysis)
    depends_on: tuple[str, ...] = ()
    description: str = ""
    #: declarative reconstruction recipe for LFs built by the parametric
    #: factories below (``("conjunction", feature, values, vote)`` or
    #: ``("numeric_threshold", feature, threshold, vote, direction)``).
    #: ``None`` for hand-written closures, which cannot be persisted —
    #: run checkpointing rebuilds factory LFs from this recipe.
    recipe: tuple | None = field(compare=False, default=None)

    def __call__(self, row: FeatureRow) -> int:
        vote = self.fn(row)
        if vote not in _VALID_VOTES:
            raise LabelingError(
                f"LF {self.name!r} returned {vote!r}; "
                "expected POSITIVE (1), NEGATIVE (-1), or ABSTAIN (0)"
            )
        return vote


def labeling_function(
    name: str,
    origin: str = "manual",
    depends_on: tuple[str, ...] = (),
    description: str = "",
) -> Callable[[Callable[[FeatureRow], int]], LabelingFunction]:
    """Decorator turning a plain function into a :class:`LabelingFunction`.

    >>> @labeling_function("lf_profanity", depends_on=("keywords",))
    ... def lf_profanity(row):
    ...     kws = row.get("keywords") or frozenset()
    ...     return POSITIVE if "kw3" in kws else ABSTAIN
    """

    def decorate(fn: Callable[[FeatureRow], int]) -> LabelingFunction:
        return LabelingFunction(
            name=name,
            fn=fn,
            origin=origin,
            depends_on=depends_on,
            description=description or (fn.__doc__ or ""),
        )

    return decorate


def conjunction_lf(
    name: str,
    feature: str,
    values: frozenset[str],
    vote: int,
    origin: str = "mined",
) -> LabelingFunction:
    """LF voting ``vote`` when the categorical ``feature`` contains
    *all* of ``values`` (a conjunction of feature values over a single
    feature — the shape the paper's mining procedure emits, §4.3)."""
    if vote not in (POSITIVE, NEGATIVE):
        raise LabelingError("conjunction LF vote must be POSITIVE or NEGATIVE")
    if not values:
        raise LabelingError("conjunction LF requires at least one value")

    def fn(row: FeatureRow) -> int:
        present = row.get(feature)
        if present is None:
            return ABSTAIN
        return vote if values <= present else ABSTAIN  # type: ignore[operator]

    return LabelingFunction(
        name=name,
        fn=fn,
        origin=origin,
        depends_on=(feature,),
        description=f"{feature} ⊇ {sorted(values)} -> {vote:+d}",
        recipe=("conjunction", feature, tuple(sorted(values)), vote),
    )


def numeric_threshold_lf(
    name: str,
    feature: str,
    threshold: float,
    vote: int,
    direction: str = "above",
    origin: str = "manual",
) -> LabelingFunction:
    """LF voting ``vote`` when a numeric feature is above/below a
    threshold (used for aggregate statistics and propagation scores)."""
    if direction not in ("above", "below"):
        raise LabelingError("direction must be 'above' or 'below'")
    if vote not in (POSITIVE, NEGATIVE):
        raise LabelingError("threshold LF vote must be POSITIVE or NEGATIVE")

    def fn(row: FeatureRow) -> int:
        value = row.get(feature)
        if value is None:
            return ABSTAIN
        v = float(value)  # type: ignore[arg-type]
        hit = v >= threshold if direction == "above" else v <= threshold
        return vote if hit else ABSTAIN

    return LabelingFunction(
        name=name,
        fn=fn,
        origin=origin,
        depends_on=(feature,),
        description=f"{feature} {'≥' if direction == 'above' else '≤'} {threshold:.4g} -> {vote:+d}",
        recipe=("numeric_threshold", feature, float(threshold), vote, direction),
    )
