"""repro — reproduction of "Leveraging Organizational Resources to Adapt
Models to New Data Modalities" (Suri et al., VLDB 2020).

The package implements the paper's three-step *split architecture* for
cross-modal adaptation, together with every substrate it depends on:

* :mod:`repro.datagen` — a synthetic organizational world that stands in
  for Google's proprietary corpora (see DESIGN.md for the substitution
  argument).
* :mod:`repro.resources` — simulated organizational resources
  (model-based services, aggregate statistics, rule-based services).
* :mod:`repro.features` — the common structured feature space induced by
  applying resources across modalities.
* :mod:`repro.dataflow` — a local MapReduce engine used by the feature
  and labeling-function pipelines.
* :mod:`repro.labeling` — weak supervision: labeling functions, label
  matrix, and a Snorkel-style generative label model.
* :mod:`repro.mining` — automatic labeling-function generation via
  frequent-itemset mining, plus a simulated domain expert.
* :mod:`repro.propagation` — graph-based label propagation for finding
  borderline examples.
* :mod:`repro.models` — NumPy discriminative models and the three
  multi-modal fusion strategies (early, intermediate, DeViSE).
* :mod:`repro.core` — the :class:`~repro.core.pipeline.CrossModalPipeline`
  that ties the steps together.
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure in the paper's evaluation.
"""

from repro.core.config import PipelineConfig
from repro.core.pipeline import CrossModalPipeline, PipelineResult
from repro.datagen.tasks import TaskConfig, classification_task, list_tasks

__version__ = "1.0.0"

__all__ = [
    "CrossModalPipeline",
    "PipelineConfig",
    "PipelineResult",
    "TaskConfig",
    "classification_task",
    "list_tasks",
    "__version__",
]
