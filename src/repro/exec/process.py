"""Process-pool executor: true multi-core execution for Python-bound work.

Built on :class:`concurrent.futures.ProcessPoolExecutor` with two
constraints the in-process backends don't have:

* **Pickling.**  The task callable and every item cross a process
  boundary.  Dataflow call sites therefore ship *module-level task
  objects* whose state is plain data (records, resources, derived
  seeds) — never closures.  Unpicklable tasks fail fast on the
  coordinator with :class:`~repro.core.exceptions.ExecutorError`
  before any worker is spawned.
* **Chunked dispatch.**  Items are dispatched in contiguous chunks
  (``chunk_size`` items per IPC round-trip) so per-task overhead is
  amortized.  Chunks are contiguous and results are consumed in
  submission order, so chunking never perturbs output order.

Workers carry no tracer (spans/counters are no-ops there); tasks return
their local counters as data and the coordinator folds them into the
active trace, so process runs lose no accounting.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any

import repro.obs as obs
from repro.core.exceptions import ExecutorError
from repro.exec.base import Executor

__all__ = ["ProcessExecutor", "ensure_picklable"]


def ensure_picklable(obj: Any, what: str) -> None:
    """Raise :class:`ExecutorError` if ``obj`` cannot cross a process
    boundary, naming the offending payload."""
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # noqa: BLE001 - pickling can raise anything
        raise ExecutorError(
            f"{what} is not picklable and cannot run on the process "
            f"backend: {type(exc).__name__}: {exc}. Use a module-level "
            f"function or task object (no closures/lambdas, no locks), "
            f"or select the thread/serial backend."
        ) from exc


def _preferred_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (cheap start, inherits loaded modules);
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ProcessExecutor(Executor):
    """Run tasks on a pool of worker processes.

    The pool is created per map call and sized
    ``min(workers, len(items))``.  ``chunk_size=None`` derives a chunk
    size that gives each worker a few chunks (straggler rebalancing
    without per-item IPC).
    """

    backend = "process"

    def __init__(self, workers: int = 2, chunk_size: int | None = None) -> None:
        self.workers = max(int(workers), 1)
        self.chunk_size = chunk_size
        self._mp_context = _preferred_context()

    def _chunk_size(self, n_items: int, override: int | None) -> int:
        if override is not None:
            return max(1, override)
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, math.ceil(n_items / (self.workers * 4)))

    def imap_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return iter(())
        ensure_picklable(fn, "the task callable (and its captured state)")
        chunk = self._chunk_size(len(items), chunk_size)
        obs.add_counter("exec.process.tasks", len(items))
        obs.add_counter("exec.process.dispatches", math.ceil(len(items) / chunk))
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)),
            mp_context=self._mp_context,
        )

        def results() -> Iterator[Any]:
            try:
                yield from pool.map(fn, items, chunksize=chunk)
            except BrokenProcessPool as exc:
                raise ExecutorError(
                    "a worker process died mid-map (killed, out of memory, "
                    "or crashed unpicklably); the job cannot be trusted — "
                    "re-run, or select the thread/serial backend"
                ) from exc
            finally:
                pool.shutdown(wait=True)

        return results()
