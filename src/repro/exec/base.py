"""Executor abstraction: *where* dataflow partitions run.

The dataflow layer (MapReduce, featurization, graph build) describes
*what* to compute over ordered partitions; an :class:`Executor` decides
*how* those partition tasks are scheduled — inline on the calling
thread, on a thread pool, or on a pool of worker processes.  The
contract every backend must honour:

* **Order.** ``map_ordered(fn, items)`` returns results in input order,
  and ``imap_ordered`` yields them in input order, regardless of which
  worker finished first.  Callers merge in (partition, input-order)
  order, so results are byte-identical across backends.
* **Errors.** The exception of the earliest-ordered failing item
  propagates to the caller (parallel backends may have computed later
  items already; their results are discarded).
* **Purity.** ``fn`` must not rely on shared mutable state: the process
  backend runs it in another interpreter.  All determinism comes from
  the arguments (derived RNG seeds travel *in* the task).

:class:`ExecutorConfig` is the serializable selection of a backend —
what :class:`~repro.core.config.PipelineConfig` and the experiments CLI
(``--backend serial|thread|process --workers N``) carry around.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, ClassVar

from repro.core.exceptions import ConfigurationError

__all__ = ["BACKENDS", "Executor", "ExecutorConfig", "as_executor"]

#: recognised backend names, in cost order
BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutorConfig:
    """Serializable executor selection.

    ``backend`` — one of :data:`BACKENDS`.  ``workers`` — pool size for
    the parallel backends (ignored by ``serial``).  ``chunk_size`` —
    items per dispatch for the process backend (``None`` = derived from
    the item count so each worker gets a few chunks); thread and serial
    backends ignore it.
    """

    backend: str = "serial"
    workers: int = 1
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1 (or None)")

    def create(self) -> "Executor":
        """Instantiate the configured executor."""
        from repro.exec.local import SerialExecutor, ThreadExecutor
        from repro.exec.process import ProcessExecutor

        if self.backend == "serial":
            return SerialExecutor()
        if self.backend == "thread":
            return ThreadExecutor(workers=self.workers)
        return ProcessExecutor(workers=self.workers, chunk_size=self.chunk_size)


class Executor(abc.ABC):
    """Ordered map over independent tasks; see the module docstring for
    the determinism contract all backends share."""

    #: backend name, matching :data:`BACKENDS`
    backend: ClassVar[str]
    #: worker-pool size (1 for the serial backend)
    workers: int = 1

    @abc.abstractmethod
    def imap_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[Any]:
        """Yield ``fn(item)`` for each item, **in input order**.

        Lazy where the backend allows it: callers that persist results
        (partition checkpoints) can make each result durable as it
        arrives instead of after the whole map.
        """

    def map_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> list[Any]:
        """``[fn(item) for item in items]`` under this backend."""
        return list(self.imap_ordered(fn, items, chunk_size=chunk_size))

    def close(self) -> None:
        """Release pooled resources (no-op for poolless backends)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(workers={self.workers})"


def as_executor(
    spec: "Executor | ExecutorConfig | str | None",
    n_threads: int = 1,
) -> "Executor":
    """Coerce any executor spec to a live :class:`Executor`.

    ``None`` preserves the legacy ``n_threads`` behaviour: a thread
    executor when ``n_threads > 1``, else serial.  Strings name a
    backend with default workers (``n_threads`` for thread/process).
    """
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, ExecutorConfig):
        return spec.create()
    if isinstance(spec, str):
        workers = max(n_threads, 1)
        return ExecutorConfig(backend=spec, workers=workers).create()
    if spec is None:
        if n_threads > 1:
            return ExecutorConfig(backend="thread", workers=n_threads).create()
        return ExecutorConfig().create()
    raise ConfigurationError(
        f"cannot interpret {spec!r} as an executor; pass an Executor, "
        f"ExecutorConfig, backend name, or None"
    )


def iter_chunks(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous chunks.

    Contiguity is what keeps chunked dispatch order-deterministic:
    flattening chunk results in chunk order reproduces input order
    exactly, and the earliest failing record stays the earliest across
    any chunking.
    """
    items = list(items)
    if not items:
        return []
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[Any]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks
