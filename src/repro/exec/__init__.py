"""Pluggable parallel execution backends.

One abstraction — :class:`Executor` — with three interchangeable
implementations:

* :class:`SerialExecutor` — inline on the calling thread (reference);
* :class:`ThreadExecutor` — a thread pool (GIL-releasing workloads);
* :class:`ProcessExecutor` — a process pool (Python-bound workloads).

The dataflow layer merges results in (partition, input-order) order and
derives every RNG stream from recorded seeds, so **all three backends
produce byte-identical artifacts** — the differential suite in
``tests/test_exec_equivalence.py`` holds them to that via RunStore
content hashes.  See DESIGN.md §11 for the determinism contract and
pickling constraints.
"""

from repro.exec.base import (
    BACKENDS,
    Executor,
    ExecutorConfig,
    as_executor,
    iter_chunks,
)
from repro.exec.local import SerialExecutor, ThreadExecutor
from repro.exec.process import ProcessExecutor, ensure_picklable

__all__ = [
    "BACKENDS",
    "Executor",
    "ExecutorConfig",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "as_executor",
    "ensure_picklable",
    "iter_chunks",
]
