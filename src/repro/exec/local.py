"""In-process executors: serial and thread-pool.

:class:`SerialExecutor` is the reference implementation every other
backend must match byte-for-byte.  :class:`ThreadExecutor` helps when
tasks release the GIL (numpy/scipy kernels, simulated I/O waits); for
pure-Python work the process backend is the one that scales.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Any

import repro.obs as obs
from repro.exec.base import Executor

__all__ = ["SerialExecutor", "ThreadExecutor"]


class SerialExecutor(Executor):
    """Run every task inline on the calling thread (the baseline)."""

    backend = "serial"
    workers = 1

    def imap_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[Any]:
        obs.add_counter("exec.serial.tasks", len(items))
        return (fn(item) for item in items)


class ThreadExecutor(Executor):
    """Run tasks on a :class:`ThreadPoolExecutor`.

    The pool is created per map call (its lifetime is the map), sized
    ``min(workers, len(items))``.  ``pool.map`` already yields results
    in submission order and re-raises the earliest-ordered task
    exception, which is exactly the executor contract.
    """

    backend = "thread"

    def __init__(self, workers: int = 2) -> None:
        self.workers = max(int(workers), 1)

    def imap_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[Any]:
        items = list(items)
        if not items:
            return iter(())
        obs.add_counter("exec.thread.tasks", len(items))
        if self.workers == 1 or len(items) == 1:
            return (fn(item) for item in items)
        pool = ThreadPoolExecutor(max_workers=min(self.workers, len(items)))

        def results() -> Iterator[Any]:
            try:
                yield from pool.map(fn, items)
            finally:
                pool.shutdown(wait=True)

        return results()
