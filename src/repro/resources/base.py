"""Resource base classes and noisy observation channels.

An :class:`OrganizationalResource` emits exactly one feature (per the
paper: "a set of k resources will return k features").  Categorical
services observe a latent attribute family through a
:class:`ChannelNoise` that differs by modality — text services are
usually the most faithful, image services drop more, and video services
observe frame-wise — which creates the cross-modal feature-distribution
shift the paper reports (§6.6).
"""

from __future__ import annotations

import abc
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ModalityError, ResourceError
from repro.datagen.entities import DataPoint, LatentState, Modality
from repro.features.schema import FeatureKind, FeatureSpec

__all__ = ["ChannelNoise", "OrganizationalResource", "LatentCategoricalService"]


@dataclass(frozen=True)
class ChannelNoise:
    """How faithfully a service observes a latent attribute set.

    ``drop`` — probability each true value is missed;
    ``spurious`` — expected number of spurious values added (Poisson);
    ``swap`` — probability a surviving value is replaced by a random one;
    ``availability`` — probability the service returns anything at all
    for a point of this modality (a missing feature, e.g. no linked
    page resolved for an image post — a major source of cross-modal
    distribution shift).
    """

    drop: float = 0.0
    spurious: float = 0.0
    swap: float = 0.0
    availability: float = 1.0

    def observe(
        self,
        values: tuple[int, ...],
        universe: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        """Pass ``values`` (attribute ids) through the channel."""
        observed: list[int] = []
        for value in values:
            if rng.random() < self.drop:
                continue
            if self.swap > 0 and rng.random() < self.swap:
                value = int(rng.integers(universe))
            observed.append(value)
        n_spurious = int(rng.poisson(self.spurious)) if self.spurious > 0 else 0
        for _ in range(n_spurious):
            observed.append(int(rng.integers(universe)))
        return tuple(sorted(set(observed)))


class OrganizationalResource(abc.ABC):
    """A service mapping a data point to one feature value.

    Subclasses implement :meth:`_compute`; :meth:`apply` adds modality
    validation.  Resources must be deterministic given the caller's
    ``rng`` (the featurization pipeline derives one rng per point so
    featurization is reproducible and order-independent).
    """

    def __init__(self, spec: FeatureSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> FeatureSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._spec.name

    def supports(self, modality: Modality) -> bool:
        return self._spec.available_for(modality)

    def apply(self, point: DataPoint, rng: np.random.Generator) -> object:
        """Compute this resource's feature value for ``point``.

        A return of ``None`` means the service produced no output for
        this point (stored as a missing value in the feature table).
        """
        if not self.supports(point.modality):
            raise ModalityError(
                f"resource {self.name!r} does not support modality "
                f"{point.modality.value!r}"
            )
        value = self._compute(point, rng)
        if value is None:
            return None
        self._spec_check(value)
        return value

    def _spec_check(self, value: object) -> None:
        kind = self._spec.kind
        if kind is FeatureKind.CATEGORICAL and not isinstance(value, frozenset):
            raise ResourceError(
                f"categorical resource {self.name!r} must return frozenset, "
                f"got {type(value).__name__}"
            )
        if kind is FeatureKind.NUMERIC and not isinstance(value, float):
            raise ResourceError(
                f"numeric resource {self.name!r} must return float, "
                f"got {type(value).__name__}"
            )
        if kind is FeatureKind.EMBEDDING and not isinstance(value, np.ndarray):
            raise ResourceError(
                f"embedding resource {self.name!r} must return ndarray, "
                f"got {type(value).__name__}"
            )

    @abc.abstractmethod
    def _compute(self, point: DataPoint, rng: np.random.Generator) -> object:
        """Subclass hook: compute the raw feature value."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class LatentCategoricalService(OrganizationalResource):
    """A model-based service observing one latent attribute family.

    Parameters
    ----------
    spec:
        Feature spec (must be categorical).
    extractor:
        Reads the true attribute ids from the latent state (e.g.
        ``lambda latent: latent.topics``).
    universe:
        Size of the attribute family's id space.
    prefix:
        String prefix for rendered values (``"t"`` -> ``"t12"``).
    noise:
        Per-modality observation channel.  Modalities missing from the
        mapping reuse :class:`ChannelNoise` defaults (noise-free).
    """

    def __init__(
        self,
        spec: FeatureSpec,
        extractor: Callable[[LatentState], tuple[int, ...]],
        universe: int,
        prefix: str,
        noise: dict[Modality, ChannelNoise] | None = None,
    ) -> None:
        if spec.kind is not FeatureKind.CATEGORICAL:
            raise ResourceError(
                f"LatentCategoricalService requires a categorical spec; "
                f"{spec.name!r} is {spec.kind.value}"
            )
        super().__init__(spec)
        self._extractor = extractor
        self._universe = universe
        self._prefix = prefix
        self._noise = dict(noise or {})

    def channel(self, modality: Modality) -> ChannelNoise:
        return self._noise.get(modality, ChannelNoise())

    def _observe_ids(
        self, point: DataPoint, rng: np.random.Generator
    ) -> tuple[int, ...]:
        true_values = self._extractor(point.latent)
        channel = self.channel(point.modality)
        if point.modality is Modality.VIDEO:
            # Video is observed frame-wise: the video-splitting tool
            # extracts frames and the image service runs on each; the
            # union of per-frame observations is the video-level output.
            n_frames = getattr(point.payload, "n_frames", 3)
            per_frame = [
                channel.observe(true_values, self._universe, rng)
                for _ in range(min(n_frames, 4))
            ]
            merged: set[int] = set()
            for frame_values in per_frame:
                merged.update(frame_values)
            return tuple(sorted(merged))
        return channel.observe(true_values, self._universe, rng)

    def _compute(
        self, point: DataPoint, rng: np.random.Generator
    ) -> frozenset[str] | None:
        if rng.random() >= self.channel(point.modality).availability:
            return None
        ids = self._observe_ids(point, rng)
        return frozenset(f"{self._prefix}{i}" for i in ids)
