"""Simulated organizational resources (paper §3).

Organizational resources are tools and services that take data points of
various modalities as input and return categorical or quantitative
outputs: model-based services (topic models, object detectors, named-
entity extractors, page-content models), aggregate statistics keyed by
metadata (user / URL / keyword), and rule-based services (team
heuristics).

Each simulated service reads the data point's hidden latent state — or,
where natural, its rendered payload — through a *modality-dependent
noisy channel*.  That is the crux of the substitution argument: a real
topic model is an imperfect, modality-dependent observer of the true
content, and so are these.
"""

from repro.resources.base import (
    ChannelNoise,
    LatentCategoricalService,
    OrganizationalResource,
)
from repro.resources.aggregates import AggregateStore
from repro.resources.catalog import ResourceCatalog
from repro.resources.service_sets import SERVICE_SETS, build_resource_suite
from repro.resources.featurize import featurize_corpus

__all__ = [
    "AggregateStore",
    "ChannelNoise",
    "LatentCategoricalService",
    "OrganizationalResource",
    "ResourceCatalog",
    "SERVICE_SETS",
    "build_resource_suite",
    "featurize_corpus",
]
