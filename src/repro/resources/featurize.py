"""Featurization pipeline: corpus x resources -> FeatureTable.

This is the paper's feature-generation step (§3) run on the MapReduce
substrate ("We implement the feature engineering and LF pipeline using
our MapReduce framework").  Each point gets its own derived RNG, so the
output is deterministic and independent of partitioning or thread
scheduling, and featurizing the same corpus with a *subset* of resources
yields values identical to selecting columns from the full run.

When a :class:`~repro.resilience.policy.ResiliencePolicy` is supplied,
every (point, resource) call is guarded: transient service faults are
retried with backoff, exhausted calls degrade through the policy's
fallback chain to :data:`MISSING` instead of aborting the run, and the
returned table carries a :class:`DegradationReport`.  The value RNG is
re-derived per attempt, so a retried call that eventually succeeds
yields exactly the value a fault-free run would have produced — a
resilient run with the same seed is bit-identical across thread counts.
"""

from __future__ import annotations

import time
from collections.abc import Iterable

import repro.obs as obs
from repro.core.rng import spawn
from repro.dataflow.mapreduce import run_map
from repro.exec import Executor, ExecutorConfig
from repro.datagen.corpus import Corpus
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureSchema
from repro.features.table import MISSING, FeatureTable
from repro.resilience.policy import (
    DegradationEvent,
    DegradationReport,
    ResiliencePolicy,
)
from repro.resources.base import OrganizationalResource

__all__ = ["featurize_corpus", "featurize_point"]


def featurize_point(
    point: DataPoint,
    resources: Iterable[OrganizationalResource],
    seed: int = 0,
    policy: ResiliencePolicy | None = None,
    events: list[DegradationEvent] | None = None,
    latencies: list[tuple[str, float]] | None = None,
) -> dict[str, object]:
    """Apply every supporting resource to one point.

    Each (point, resource) pair draws from its own derived RNG stream,
    so values do not depend on which other resources run.  With a
    ``policy``, service faults degrade to :data:`MISSING` under the
    policy's retry/fallback rules and per-cell
    :class:`DegradationEvent`\\ s are appended to ``events`` (when
    provided).  ``latencies`` (only passed by traced runs) collects one
    ``(service, seconds)`` sample per applied resource.
    """
    row: dict[str, object] = {}
    for resource in resources:
        if not resource.supports(point.modality):
            row[resource.name] = MISSING
            continue
        tag = f"feat/{point.point_id}/{resource.name}"
        if latencies is None:
            if policy is None:
                row[resource.name] = resource.apply(point, spawn(seed, tag))
                continue
            value, event = policy.call(
                resource, point, rng_factory=lambda: spawn(seed, tag), seed=seed
            )
        else:
            t0 = time.perf_counter()
            if policy is None:
                value, event = resource.apply(point, spawn(seed, tag)), None
            else:
                value, event = policy.call(
                    resource, point, rng_factory=lambda: spawn(seed, tag), seed=seed
                )
            latencies.append((resource.name, time.perf_counter() - t0))
        row[resource.name] = value
        if event is not None and events is not None:
            events.append(event)
    return row


class _PlainFeaturizeTask:
    """Picklable per-point featurization task (no policy, untraced).

    A module-level task object — not a closure — so the process backend
    can ship it to workers; its state is the resource list and the
    featurization seed, which is all the determinism contract needs.
    """

    __slots__ = ("resources", "seed")

    def __init__(
        self, resources: list[OrganizationalResource], seed: int
    ) -> None:
        self.resources = resources
        self.seed = seed

    def __call__(self, point: DataPoint) -> dict[str, object]:
        return featurize_point(point, self.resources, seed=self.seed)


class _RichFeaturizeTask:
    """Picklable per-point task collecting degradation events and
    (optionally) per-service latencies alongside the feature row.

    Events and latencies return *as data* and are folded into the
    report / trace on the coordinator, so process workers — which carry
    neither the tracer nor the shared policy object — lose no
    accounting.  Per-worker policy state (breakers, health) is a copy;
    feature values stay bit-identical because every attempt re-derives
    its value RNG from the recorded seeds.
    """

    __slots__ = ("resources", "seed", "policy", "collect_latencies")

    def __init__(
        self,
        resources: list[OrganizationalResource],
        seed: int,
        policy: ResiliencePolicy | None,
        collect_latencies: bool,
    ) -> None:
        self.resources = resources
        self.seed = seed
        self.policy = policy
        self.collect_latencies = collect_latencies

    def __call__(
        self, point: DataPoint
    ) -> tuple[dict[str, object], list, list]:
        local_events: list[DegradationEvent] = []
        local_latencies: list[tuple[str, float]] = []
        row = featurize_point(
            point,
            self.resources,
            seed=self.seed,
            policy=self.policy,
            events=local_events,
            latencies=local_latencies if self.collect_latencies else None,
        )
        return row, local_events, local_latencies


def featurize_corpus(
    corpus: Corpus,
    resources: list[OrganizationalResource],
    seed: int = 0,
    include_labels: bool = False,
    n_threads: int = 1,
    policy: ResiliencePolicy | None = None,
    executor: Executor | ExecutorConfig | str | None = None,
) -> FeatureTable:
    """Featurize a corpus into a row-aligned :class:`FeatureTable`.

    ``include_labels=True`` attaches the corpus's ground-truth labels —
    only do this for corpora the pipeline is allowed to see labels for
    (old-modality training data, dev sets, test sets).

    With a ``policy``, the run survives service faults: failed cells
    degrade per the policy and ``table.degradation`` reports every
    retried or degraded (point, resource) pair in row order.

    ``executor`` selects the execution backend (serial, thread, or
    process); every point's value derives from its own
    ``(seed, point, resource)`` RNG stream and rows merge in input
    order, so all backends produce the byte-identical table.
    """
    schema = FeatureSchema(r.spec for r in resources)
    traced = obs.enabled()

    with obs.span(
        "featurize_corpus",
        corpus=corpus.name,
        n_points=len(corpus.points),
        n_resources=len(resources),
        n_threads=n_threads,
    ) as sp:
        if policy is None and not traced:
            rows = run_map(
                corpus.points,
                _PlainFeaturizeTask(resources, seed),
                n_threads=n_threads,
                executor=executor,
            )
            report = None
        else:
            mapped = run_map(
                corpus.points,
                _RichFeaturizeTask(resources, seed, policy, collect_latencies=traced),
                n_threads=n_threads,
                executor=executor,
            )
            rows = [row for row, _, _ in mapped]
            if policy is None:
                report = None
            else:
                events = [e for _, local, _ in mapped for e in local]
                # control-plane totals sampled at table-build time
                # (policy-lifetime: a policy reused across corpora
                # reports cumulative counts in each later table)
                health = policy.health_report()
                report = DegradationReport(
                    events=events,
                    n_cells=len(corpus.points) * len(resources),
                    counters={
                        "breaker_trips": health.total_trips,
                        "short_circuits": health.total_short_circuits,
                        "deadline_exceeded": health.total_deadline_exceeded,
                    },
                )
            if traced:
                # per-service call counters + latency histograms,
                # aggregated on the coordinating thread
                for _, _, local_latencies in mapped:
                    for service, seconds in local_latencies:
                        sp.add_counter(f"calls/{service}")
                        sp.observe(f"latency_s/{service}", seconds)

        if traced and report is not None:
            # degradation accounting fed from the resilience layer
            sp.add_counter("cells_degraded", report.n_degraded)
            sp.add_counter("cells_recovered", report.n_recovered)
            sp.add_counter("service_retries", report.total_retries)
            for service, count in sorted(report.by_service().items()):
                sp.add_counter(f"degraded/{service}", count)
            if policy is not None:
                health = policy.health_report()
                sp.set_gauge("service_failure_rates", {
                    name: round(h.failure_rate, 4)
                    for name, h in sorted(health.services.items())
                    if h.attempts
                })

        columns: dict[str, list[object]] = {name: [] for name in schema.names}
        for row in rows:
            for name in schema.names:
                columns[name].append(row[name])
        sp.add_counter("cells", len(corpus.points) * len(resources))
    return FeatureTable(
        schema=schema,
        columns=columns,
        point_ids=corpus.point_ids,
        modalities=[p.modality for p in corpus.points],
        labels=corpus.labels if include_labels else None,
        degradation=report,
    )
