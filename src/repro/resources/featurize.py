"""Featurization pipeline: corpus x resources -> FeatureTable.

This is the paper's feature-generation step (§3) run on the MapReduce
substrate ("We implement the feature engineering and LF pipeline using
our MapReduce framework").  Each point gets its own derived RNG, so the
output is deterministic and independent of partitioning or thread
scheduling, and featurizing the same corpus with a *subset* of resources
yields values identical to selecting columns from the full run.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rng import spawn
from repro.dataflow.mapreduce import run_map
from repro.datagen.corpus import Corpus
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureSchema
from repro.features.table import MISSING, FeatureTable
from repro.resources.base import OrganizationalResource

__all__ = ["featurize_corpus", "featurize_point"]


def featurize_point(
    point: DataPoint,
    resources: Iterable[OrganizationalResource],
    seed: int = 0,
) -> dict[str, object]:
    """Apply every supporting resource to one point.

    Each (point, resource) pair draws from its own derived RNG stream,
    so values do not depend on which other resources run.
    """
    row: dict[str, object] = {}
    for resource in resources:
        if not resource.supports(point.modality):
            row[resource.name] = MISSING
            continue
        rng = spawn(seed, f"feat/{point.point_id}/{resource.name}")
        row[resource.name] = resource.apply(point, rng)
    return row


def featurize_corpus(
    corpus: Corpus,
    resources: list[OrganizationalResource],
    seed: int = 0,
    include_labels: bool = False,
    n_threads: int = 1,
) -> FeatureTable:
    """Featurize a corpus into a row-aligned :class:`FeatureTable`.

    ``include_labels=True`` attaches the corpus's ground-truth labels —
    only do this for corpora the pipeline is allowed to see labels for
    (old-modality training data, dev sets, test sets).
    """
    schema = FeatureSchema(r.spec for r in resources)
    rows = run_map(
        corpus.points,
        lambda point: featurize_point(point, resources, seed=seed),
        n_threads=n_threads,
    )
    columns: dict[str, list[object]] = {name: [] for name in schema.names}
    for row in rows:
        for name in schema.names:
            columns[name].append(row[name])
    return FeatureTable(
        schema=schema,
        columns=columns,
        point_ids=corpus.point_ids,
        modalities=[p.modality for p in corpus.points],
        labels=corpus.labels if include_labels else None,
    )
