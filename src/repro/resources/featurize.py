"""Featurization pipeline: corpus x resources -> FeatureTable.

This is the paper's feature-generation step (§3) run on the MapReduce
substrate ("We implement the feature engineering and LF pipeline using
our MapReduce framework").  Each point gets its own derived RNG, so the
output is deterministic and independent of partitioning or thread
scheduling, and featurizing the same corpus with a *subset* of resources
yields values identical to selecting columns from the full run.

When a :class:`~repro.resilience.policy.ResiliencePolicy` is supplied,
every (point, resource) call is guarded: transient service faults are
retried with backoff, exhausted calls degrade through the policy's
fallback chain to :data:`MISSING` instead of aborting the run, and the
returned table carries a :class:`DegradationReport`.  The value RNG is
re-derived per attempt, so a retried call that eventually succeeds
yields exactly the value a fault-free run would have produced — a
resilient run with the same seed is bit-identical across thread counts.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rng import spawn
from repro.dataflow.mapreduce import run_map
from repro.datagen.corpus import Corpus
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureSchema
from repro.features.table import MISSING, FeatureTable
from repro.resilience.policy import (
    DegradationEvent,
    DegradationReport,
    ResiliencePolicy,
)
from repro.resources.base import OrganizationalResource

__all__ = ["featurize_corpus", "featurize_point"]


def featurize_point(
    point: DataPoint,
    resources: Iterable[OrganizationalResource],
    seed: int = 0,
    policy: ResiliencePolicy | None = None,
    events: list[DegradationEvent] | None = None,
) -> dict[str, object]:
    """Apply every supporting resource to one point.

    Each (point, resource) pair draws from its own derived RNG stream,
    so values do not depend on which other resources run.  With a
    ``policy``, service faults degrade to :data:`MISSING` under the
    policy's retry/fallback rules and per-cell
    :class:`DegradationEvent`\\ s are appended to ``events`` (when
    provided).
    """
    row: dict[str, object] = {}
    for resource in resources:
        if not resource.supports(point.modality):
            row[resource.name] = MISSING
            continue
        tag = f"feat/{point.point_id}/{resource.name}"
        if policy is None:
            row[resource.name] = resource.apply(point, spawn(seed, tag))
            continue
        value, event = policy.call(
            resource, point, rng_factory=lambda: spawn(seed, tag), seed=seed
        )
        row[resource.name] = value
        if event is not None and events is not None:
            events.append(event)
    return row


def featurize_corpus(
    corpus: Corpus,
    resources: list[OrganizationalResource],
    seed: int = 0,
    include_labels: bool = False,
    n_threads: int = 1,
    policy: ResiliencePolicy | None = None,
) -> FeatureTable:
    """Featurize a corpus into a row-aligned :class:`FeatureTable`.

    ``include_labels=True`` attaches the corpus's ground-truth labels —
    only do this for corpora the pipeline is allowed to see labels for
    (old-modality training data, dev sets, test sets).

    With a ``policy``, the run survives service faults: failed cells
    degrade per the policy and ``table.degradation`` reports every
    retried or degraded (point, resource) pair in row order.
    """
    schema = FeatureSchema(r.spec for r in resources)

    if policy is None:
        rows = run_map(
            corpus.points,
            lambda point: featurize_point(point, resources, seed=seed),
            n_threads=n_threads,
        )
        report = None
    else:

        def _one(point: DataPoint) -> tuple[dict[str, object], list[DegradationEvent]]:
            local: list[DegradationEvent] = []
            row = featurize_point(
                point, resources, seed=seed, policy=policy, events=local
            )
            return row, local

        mapped = run_map(corpus.points, _one, n_threads=n_threads)
        rows = [row for row, _ in mapped]
        events = [event for _, local in mapped for event in local]
        report = DegradationReport(
            events=events, n_cells=len(corpus.points) * len(resources)
        )

    columns: dict[str, list[object]] = {name: [] for name in schema.names}
    for row in rows:
        for name in schema.names:
            columns[name].append(row[name])
    return FeatureTable(
        schema=schema,
        columns=columns,
        point_ids=corpus.point_ids,
        modalities=[p.modality for p in corpus.points],
        labels=corpus.labels if include_labels else None,
        degradation=report,
    )
