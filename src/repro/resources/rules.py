"""Rule-based services: team heuristics exposed as binary features.

The paper: "Teams develop heuristics and rules to make manually
collecting, analyzing and labeling data more efficient ... and can use
them as binary features."  A rule here is a predicate over a point's
observable surface (tokens, keywords, user metadata), rendered as a
categorical feature with values ``{"hit"}`` or the empty set.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.datagen.entities import DataPoint, Modality, TextPayload
from repro.features.schema import FeatureKind, FeatureSpec
from repro.resources.base import OrganizationalResource

__all__ = ["RuleBasedService", "keyword_watchlist_rule", "heavy_poster_rule"]


class RuleBasedService(OrganizationalResource):
    """Wraps a boolean predicate as a categorical resource."""

    def __init__(
        self,
        spec: FeatureSpec,
        predicate: Callable[[DataPoint, np.random.Generator], bool],
    ) -> None:
        super().__init__(spec)
        self._predicate = predicate

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> frozenset[str]:
        return frozenset({"hit"}) if self._predicate(point, rng) else frozenset()


def keyword_watchlist_rule(
    name: str,
    watchlist: frozenset[int],
    service_set: str | None = None,
) -> RuleBasedService:
    """Rule: the post mentions a watch-listed keyword.

    For text posts the rule string-matches the rendered tokens (as a
    production regex rule would); for other modalities it fires on the
    latent keywords with a miss probability, modelling a weaker signal
    path through captions.
    """
    watch_tokens = {f"kw{k}" for k in watchlist}

    def predicate(point: DataPoint, rng: np.random.Generator) -> bool:
        if point.modality is Modality.TEXT:
            payload = point.payload
            assert isinstance(payload, TextPayload)
            return any(t in watch_tokens for t in payload.tokens)
        hits = [k for k in point.latent.keywords if k in watchlist]
        return bool(hits) and rng.random() > 0.4

    spec = FeatureSpec(
        name=name,
        kind=FeatureKind.CATEGORICAL,
        service_set=service_set,
        description="team heuristic: keyword watchlist match",
    )
    return RuleBasedService(spec, predicate)


def heavy_poster_rule(
    name: str,
    report_counts: np.ndarray,
    threshold: float = 10.0,
    service_set: str | None = None,
) -> RuleBasedService:
    """Rule: the posting user has an elevated report count."""

    def predicate(point: DataPoint, rng: np.random.Generator) -> bool:
        return float(report_counts[point.user_id]) >= threshold

    spec = FeatureSpec(
        name=name,
        kind=FeatureKind.CATEGORICAL,
        service_set=service_set,
        description="team heuristic: frequently reported user",
    )
    return RuleBasedService(spec, predicate)
