"""The standard resource suite and its A/B/C/D service-set grouping.

Mirrors the paper's §6.2 inventory: "We use 15 services to generate 15
features: 14 are categorical and multivalent ... and two are
nonservable.  In addition, images possess 3 pre-trained embedding and
image-specific features.  We evaluate four types of services used to
generate feature sets: URL-based, keyword-based, topic-model-based,
page-content-based, labeled as sets A, B, C, and D, which provide us
with 3, 2, 5, and 5 features, respectively."

Our instantiation (nonservable features marked *):

* **A — URL-based (3):** url_category, url_risk_score,
  user_report_count.
* **B — keyword-based (2):** keywords, keyword_risk_score.
* **C — topic-model-based (5):** topics, content_category,
  named_entities, objects, topic_sensitivity*.
* **D — page-content-based (5):** page_categories, page_topics,
  page_entities, page_risk_score*, landing_quality.
* **IMG — image-specific (3):** org_embedding, generic_embedding,
  image_quality.
* **META:** language (outside the evaluated sets; used for the §6.7.1
  English-only slice and as a deliberately signal-free feature).
"""

from __future__ import annotations

from repro.datagen.entities import Modality
from repro.datagen.world import TaskRuntime, World
from repro.features.schema import FeatureKind, FeatureSpec
from repro.resources.aggregates import (
    AggregateStore,
    KeywordRiskService,
    PageRiskService,
    TopicSensitivityService,
    UrlRiskService,
    UserReportCountService,
)
from repro.resources.base import OrganizationalResource
from repro.resources.catalog import ResourceCatalog
from repro.resources.model_services import (
    ContentCategoryService,
    GenericEmbeddingService,
    ImageQualityService,
    KeywordExtractionService,
    LandingQualityService,
    LanguageDetectionService,
    NamedEntityService,
    ObjectDetectionService,
    OrgEmbeddingService,
    PageCategoryService,
    PageEntityService,
    PageTopicService,
    TopicModelService,
    UrlCategoryService,
)

__all__ = ["SERVICE_SETS", "IMAGE_SET", "build_resource_suite"]

#: the paper's four evaluated service sets, in cumulative order
SERVICE_SETS: tuple[str, ...] = ("A", "B", "C", "D")

#: tag for image-specific features (always included for image models)
IMAGE_SET = "IMG"

_VISUAL = frozenset({Modality.IMAGE, Modality.VIDEO})


def _cat(name: str, service_set: str, servable: bool = True, description: str = "") -> FeatureSpec:
    return FeatureSpec(
        name=name,
        kind=FeatureKind.CATEGORICAL,
        servable=servable,
        service_set=service_set,
        description=description,
    )


def _num(
    name: str,
    service_set: str,
    servable: bool = True,
    modalities: frozenset[Modality] | None = None,
    description: str = "",
) -> FeatureSpec:
    return FeatureSpec(
        name=name,
        kind=FeatureKind.NUMERIC,
        servable=servable,
        service_set=service_set,
        modalities=modalities,
        description=description,
    )


def build_resource_suite(
    world: World,
    task: TaskRuntime,
    store: AggregateStore | None = None,
    n_history: int = 30_000,
    seed: int = 0,
) -> ResourceCatalog:
    """Build the standard 15 + 3 resource suite as a catalog.

    The aggregate services need a historical statistics store for the
    task; pass one in to share it across suites, or let this function
    simulate it.
    """
    cfg = world.config
    if store is None:
        store = AggregateStore(world, task, n_history=n_history, seed=seed)

    resources: list[OrganizationalResource] = [
        # --- set A: URL-based metadata ---------------------------------
        UrlCategoryService(
            _cat("url_category", "A", description="URL categorization (metadata)"),
            cfg.n_url_categories,
        ),
        UrlRiskService(
            _num("url_risk_score", "A", description="historical positive rate by URL category"),
            store,
        ),
        UserReportCountService(
            _num("user_report_count", "A", description="times the posting user was reported"),
            store,
        ),
        # --- set B: keyword-based ---------------------------------------
        KeywordExtractionService(
            _cat("keywords", "B", description="extracted keywords (captions for visual posts)"),
            cfg.n_keywords,
        ),
        KeywordRiskService(
            _num("keyword_risk_score", "B", description="max historical positive rate over keywords"),
            store,
        ),
        # --- set C: topic-model-based ------------------------------------
        TopicModelService(
            _cat("topics", "C", description="org-wide topic model"), cfg.n_topics
        ),
        ContentCategoryService(
            _cat("content_category", "C", description="coarse content taxonomy"),
            cfg.n_topics,
        ),
        NamedEntityService(
            _cat("named_entities", "C", description="knowledge-graph entities"),
            cfg.n_entities,
        ),
        ObjectDetectionService(
            _cat("objects", "C", description="object detector over content"),
            cfg.n_objects,
        ),
        TopicSensitivityService(
            _num(
                "topic_sensitivity",
                "C",
                servable=False,
                description="historical positive rate by topic (nonservable)",
            ),
            store,
        ),
        # --- set D: page-content-based ------------------------------------
        PageCategoryService(
            _cat("page_categories", "D", description="linked-page categories"),
            cfg.n_page_categories,
        ),
        PageTopicService(
            _cat("page_topics", "D", description="topic model over the linked page"),
            cfg.n_topics,
        ),
        PageEntityService(
            _cat("page_entities", "D", description="entities on the linked page"),
            cfg.n_entities,
        ),
        PageRiskService(
            _num(
                "page_risk_score",
                "D",
                servable=False,
                description="historical positive rate by page category (nonservable)",
            ),
            store,
        ),
        LandingQualityService(
            _num("landing_quality", "D", description="landing-page quality score"),
            risky_pages=task.definition.positive_page_categories,
        ),
        # --- image-specific -----------------------------------------------
        OrgEmbeddingService(
            FeatureSpec(
                name="org_embedding",
                kind=FeatureKind.EMBEDDING,
                service_set=IMAGE_SET,
                modalities=_VISUAL,
                description="organization-wide pretrained image embedding",
            )
        ),
        GenericEmbeddingService(
            FeatureSpec(
                name="generic_embedding",
                kind=FeatureKind.EMBEDDING,
                service_set=IMAGE_SET,
                modalities=_VISUAL,
                description="generic materialized CNN embedding",
            )
        ),
        ImageQualityService(
            _num(
                "image_quality",
                IMAGE_SET,
                modalities=_VISUAL,
                description="image quality score",
            )
        ),
        # --- outside the evaluated sets ------------------------------------
        LanguageDetectionService(
            _cat("language", "META", description="language id (no task signal)")
        ),
    ]
    catalog = ResourceCatalog()
    for resource in resources:
        catalog.register(resource)
    return catalog
