"""Model-based services: topic models, detectors, extractors, embeddings.

These simulate the classification/processing services the paper's team
queries: "topic models that categorize content; ... knowledge graph
querying tools to extract entities"; page-content models that "apply to
web pages and auxiliary information regarding the data points"; and the
pretrained image embeddings (organization-wide and generic CNN).
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ResourceError
from repro.datagen.entities import (
    DataPoint,
    ImagePayload,
    LatentState,
    Modality,
    TextPayload,
    VideoPayload,
)
from repro.features.schema import FeatureKind, FeatureSpec
from repro.resources.base import ChannelNoise, LatentCategoricalService, OrganizationalResource

__all__ = [
    "TopicModelService",
    "ContentCategoryService",
    "NamedEntityService",
    "ObjectDetectionService",
    "KeywordExtractionService",
    "UrlCategoryService",
    "PageCategoryService",
    "PageTopicService",
    "PageEntityService",
    "LanguageDetectionService",
    "LandingQualityService",
    "OrgEmbeddingService",
    "GenericEmbeddingService",
    "ImageQualityService",
]


# Latent extractors are module-level callables (not lambdas) so every
# service — and therefore the featurization tasks that carry them — can
# pickle onto the process execution backend.
def _latent_topics(latent: LatentState) -> tuple[int, ...]:
    return latent.topics


def _latent_entities(latent: LatentState) -> tuple[int, ...]:
    return latent.entities


def _latent_objects(latent: LatentState) -> tuple[int, ...]:
    return latent.objects


def _latent_url_category(latent: LatentState) -> tuple[int, ...]:
    return (latent.url_category,)


def _latent_page_categories(latent: LatentState) -> tuple[int, ...]:
    return latent.page_categories


class _TaxonomyExtractor:
    """Maps topic ids onto a coarse org taxonomy (picklable callable)."""

    __slots__ = ("n_categories",)

    def __init__(self, n_categories: int) -> None:
        self.n_categories = n_categories

    def __call__(self, latent: LatentState) -> tuple[int, ...]:
        return tuple(sorted({t % self.n_categories for t in latent.topics}))


class TopicModelService(LatentCategoricalService):
    """Org-wide topic model applied directly to the data point."""

    def __init__(self, spec: FeatureSpec, n_topics: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_topics,
            universe=n_topics,
            prefix="t",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.06, spurious=0.12),
                Modality.IMAGE: ChannelNoise(drop=0.30, spurious=0.50, swap=0.12),
                Modality.VIDEO: ChannelNoise(drop=0.35, spurious=0.40, swap=0.14),
            },
        )


class ContentCategoryService(LatentCategoricalService):
    """Coarse content category: topics mapped through an org taxonomy."""

    def __init__(self, spec: FeatureSpec, n_topics: int, n_categories: int = 12) -> None:
        super().__init__(
            spec,
            extractor=_TaxonomyExtractor(n_categories),
            universe=n_categories,
            prefix="cat",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.05, spurious=0.05),
                Modality.IMAGE: ChannelNoise(drop=0.20, spurious=0.15, swap=0.08),
                Modality.VIDEO: ChannelNoise(drop=0.25, spurious=0.15, swap=0.10),
            },
        )


class NamedEntityService(LatentCategoricalService):
    """Knowledge-graph entity extraction (more reliable on text)."""

    def __init__(self, spec: FeatureSpec, n_entities: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_entities,
            universe=n_entities,
            prefix="e",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.10, spurious=0.10),
                Modality.IMAGE: ChannelNoise(drop=0.55, spurious=0.35, swap=0.12),
                Modality.VIDEO: ChannelNoise(drop=0.60, spurious=0.30, swap=0.12),
            },
        )


class ObjectDetectionService(LatentCategoricalService):
    """Object detector: reads rendered pixels for image/video, and the
    latent mentions (very noisily) for text."""

    def __init__(self, spec: FeatureSpec, n_objects: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_objects,
            universe=n_objects,
            prefix="o",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.45, spurious=0.10),
                Modality.IMAGE: ChannelNoise(drop=0.08, spurious=0.25),
                Modality.VIDEO: ChannelNoise(drop=0.20, spurious=0.20),
            },
        )

    def _observe_ids(self, point: DataPoint, rng: np.random.Generator):
        # For rendered visual modalities, detect over what is actually
        # visible in the payload rather than the latent ground truth.
        if point.modality is Modality.IMAGE:
            payload = point.payload
            assert isinstance(payload, ImagePayload)
            channel = self.channel(Modality.IMAGE)
            return channel.observe(payload.visible_objects, self._universe, rng)
        if point.modality is Modality.VIDEO:
            payload = point.payload
            assert isinstance(payload, VideoPayload)
            channel = self.channel(Modality.VIDEO)
            merged: set[int] = set()
            for frame in payload.frames[:4]:
                merged.update(
                    channel.observe(frame.visible_objects, self._universe, rng)
                )
            return tuple(sorted(merged))
        return super()._observe_ids(point, rng)


class KeywordExtractionService(OrganizationalResource):
    """Keyword extraction.

    Text: parsed from the rendered token stream (a real extraction, not
    a latent read).  Image/video: produced by a captioning model, which
    misses many keywords and hallucinates a few.
    """

    def __init__(self, spec: FeatureSpec, n_keywords: int) -> None:
        if spec.kind is not FeatureKind.CATEGORICAL:
            raise ResourceError("keyword service must be categorical")
        super().__init__(spec)
        self._n_keywords = n_keywords
        self._caption_channel = ChannelNoise(drop=0.45, spurious=0.60)
        self._video_channel = ChannelNoise(drop=0.40, spurious=0.45)

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> frozenset[str]:
        if point.modality is Modality.TEXT:
            payload = point.payload
            assert isinstance(payload, TextPayload)
            return frozenset(t for t in payload.tokens if t.startswith("kw"))
        channel = (
            self._video_channel
            if point.modality is Modality.VIDEO
            else self._caption_channel
        )
        observed = channel.observe(point.latent.keywords, self._n_keywords, rng)
        return frozenset(f"kw{i}" for i in observed)


class UrlCategoryService(LatentCategoricalService):
    """URL categorization from post metadata (exact for all modalities;
    a URL is a URL regardless of the post's content type)."""

    def __init__(self, spec: FeatureSpec, n_url_categories: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_url_category,
            universe=n_url_categories,
            prefix="u",
            noise={},
        )


class PageCategoryService(LatentCategoricalService):
    """Categories of the web page the post links to."""

    def __init__(self, spec: FeatureSpec, n_page_categories: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_page_categories,
            universe=n_page_categories,
            prefix="p",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.10, spurious=0.10, availability=0.95),
                Modality.IMAGE: ChannelNoise(drop=0.15, spurious=0.12, availability=0.60),
                Modality.VIDEO: ChannelNoise(drop=0.18, spurious=0.12, availability=0.55),
            },
        )


class PageTopicService(LatentCategoricalService):
    """Topic model applied to the linked page (an auxiliary view of the
    same topics, through an independent channel)."""

    def __init__(self, spec: FeatureSpec, n_topics: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_topics,
            universe=n_topics,
            prefix="t",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.20, spurious=0.20, availability=0.95),
                Modality.IMAGE: ChannelNoise(drop=0.25, spurious=0.22, availability=0.60),
                Modality.VIDEO: ChannelNoise(drop=0.28, spurious=0.22, availability=0.55),
            },
        )


class PageEntityService(LatentCategoricalService):
    """Entities extracted from the linked page."""

    def __init__(self, spec: FeatureSpec, n_entities: int) -> None:
        super().__init__(
            spec,
            extractor=_latent_entities,
            universe=n_entities,
            prefix="e",
            noise={
                Modality.TEXT: ChannelNoise(drop=0.25, spurious=0.15, availability=0.95),
                Modality.IMAGE: ChannelNoise(drop=0.30, spurious=0.15, availability=0.60),
                Modality.VIDEO: ChannelNoise(drop=0.32, spurious=0.15, availability=0.55),
            },
        )


class LanguageDetectionService(OrganizationalResource):
    """Language id.  Carries essentially no task signal — it exists to
    reproduce the paper's "no gain" feature observation (§6.5) and the
    English-restriction slice in §6.7.1."""

    _LANGS = ("en", "es", "pt", "de", "fr")
    _WEIGHTS = (0.72, 0.10, 0.08, 0.05, 0.05)

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> frozenset[str]:
        lang = rng.choice(self._LANGS, p=self._WEIGHTS)
        return frozenset({str(lang)})


class LandingQualityService(OrganizationalResource):
    """Quality score of the linked landing page (weak signal: mildly
    anti-correlated with risky page categories)."""

    def __init__(self, spec: FeatureSpec, risky_pages: frozenset[int]) -> None:
        super().__init__(spec)
        self._risky_pages = risky_pages

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float | None:
        from repro.resources.aggregates import PAGE_AVAILABILITY

        if rng.random() >= PAGE_AVAILABILITY.get(point.modality, 1.0):
            return None
        overlap = sum(
            1 for p in point.latent.page_categories if p in self._risky_pages
        )
        base = 0.75 - 0.12 * min(overlap, 3)
        return float(np.clip(rng.normal(base, 0.18), 0.0, 1.0))


class OrgEmbeddingService(OrganizationalResource):
    """The proprietary organization-wide pretrained image embedding."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> np.ndarray:
        payload = point.payload
        if isinstance(payload, ImagePayload):
            return np.asarray(payload.org_embedding, dtype=float)
        if isinstance(payload, VideoPayload):
            return np.mean([f.org_embedding for f in payload.frames], axis=0)
        raise ResourceError(
            f"org embedding requires an image-like payload, got {type(payload).__name__}"
        )


class GenericEmbeddingService(OrganizationalResource):
    """Generic materialized CNN features (inception-v3-like); slightly
    weaker than the org embedding, per §6.6."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> np.ndarray:
        payload = point.payload
        if isinstance(payload, ImagePayload):
            return np.asarray(payload.generic_embedding, dtype=float)
        if isinstance(payload, VideoPayload):
            return np.mean([f.generic_embedding for f in payload.frames], axis=0)
        raise ResourceError(
            f"generic embedding requires an image-like payload, got {type(payload).__name__}"
        )


class ImageQualityService(OrganizationalResource):
    """Image-specific quality score (no task signal by construction)."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float:
        payload = point.payload
        if isinstance(payload, ImagePayload):
            return float(payload.quality)
        if isinstance(payload, VideoPayload):
            return float(np.mean([f.quality for f in payload.frames]))
        raise ResourceError(
            f"image quality requires an image-like payload, got {type(payload).__name__}"
        )
