"""Aggregate statistics and metadata services (paper §3.1.1).

Teams "have been deploying classification models while collecting
metadata for several years" and can therefore "compute aggregate
statistics from the outputs of these models across users, customers,
URLs, topics and categories".  :class:`AggregateStore` simulates that
history: it samples historical posts from the world, labels them with
the (already deployed) task concept, and accumulates beta-smoothed
positive rates keyed by user / URL category / keyword / topic / page
category.  Aggregate services then join a new data point to the store
via its metadata (exact user-id and URL joins; noisy keyword joins).

The store is built from *historical* traffic independent of every
evaluation corpus, so using its outputs as features is legitimate
organizational signal, not leakage.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.rng import spawn
from repro.datagen.entities import DataPoint, Modality
from repro.datagen.world import TaskRuntime, World
from repro.features.schema import FeatureKind, FeatureSpec
from repro.resources.base import OrganizationalResource

__all__ = [
    "AggregateStore",
    "UserReportCountService",
    "UrlRiskService",
    "KeywordRiskService",
    "TopicSensitivityService",
    "PageRiskService",
]


class AggregateStore:
    """Historical per-key positive-rate statistics for one task."""

    def __init__(
        self,
        world: World,
        task: TaskRuntime,
        n_history: int = 30_000,
        smoothing: float = 60.0,
        seed: int = 0,
    ) -> None:
        self.world = world
        self.task = task
        self.n_history = n_history
        self.smoothing = smoothing
        self._base_rate = task.definition.target_positive_rate
        rng = spawn(seed, f"aggregate-history-{task.name}")

        user_pos: dict[int, int] = defaultdict(int)
        key_counts: dict[str, dict[int, list[int]]] = {
            family: defaultdict(lambda: [0, 0])
            for family in ("url", "keyword", "topic", "page")
        }
        for i in range(n_history):
            point = world.generate_point(task, Modality.TEXT, point_id=-1 - i, rng=rng)
            label = point.label
            if label:
                user_pos[point.user_id] += 1
            latent = point.latent
            self._bump(key_counts["url"], (latent.url_category,), label)
            self._bump(key_counts["keyword"], latent.keywords, label)
            self._bump(key_counts["topic"], latent.topics, label)
            self._bump(key_counts["page"], latent.page_categories, label)

        self._user_report_count = {
            user: count + int(world.users.report_count[user])
            for user, count in user_pos.items()
        }
        self._counts = {
            family: {key: (pos, total) for key, (pos, total) in counts.items()}
            for family, counts in key_counts.items()
        }

    @staticmethod
    def _bump(
        counts: dict[int, list[int]], keys: tuple[int, ...], label: int
    ) -> None:
        for key in keys:
            entry = counts[key]
            entry[0] += label
            entry[1] += 1

    def _smooth(self, positives: int, total: int, smoothing: float) -> float:
        """Beta-smoothed positive rate, pulled toward the base rate."""
        return (positives + smoothing * self._base_rate) / (total + smoothing)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def user_report_count(self, user_id: int) -> float:
        base = float(self.world.users.report_count[user_id])
        return float(self._user_report_count.get(user_id, base))

    def rate(self, family: str, key: int, smoothing: float | None = None) -> float:
        """Smoothed historical positive rate for one key.

        ``smoothing`` overrides the store default — expensive-to-serve
        (nonservable) statistics are computed at lower smoothing,
        i.e. higher fidelity, than what the online serving path can
        afford.
        """
        s = self.smoothing if smoothing is None else smoothing
        pos, total = self._counts[family].get(key, (0, 0))
        return self._smooth(pos, total, s)

    def mean_rate(
        self, family: str, keys: tuple[int, ...], smoothing: float | None = None
    ) -> float:
        if not keys:
            return self._base_rate
        return float(np.mean([self.rate(family, k, smoothing) for k in keys]))

    def max_rate(
        self, family: str, keys: tuple[int, ...], smoothing: float | None = None
    ) -> float:
        if not keys:
            return self._base_rate
        return float(max(self.rate(family, k, smoothing) for k in keys))


class _AggregateService(OrganizationalResource):
    """Base for numeric services backed by an :class:`AggregateStore`."""

    def __init__(self, spec: FeatureSpec, store: AggregateStore) -> None:
        if spec.kind is not FeatureKind.NUMERIC:
            raise ValueError(f"aggregate service {spec.name!r} must be numeric")
        super().__init__(spec)
        self._store = store


class UserReportCountService(_AggregateService):
    """Times the posting user has been reported (exact user-id join)."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float:
        # The join is exact (user id is metadata); add small counting
        # noise to model reporting lag.
        count = self._store.user_report_count(point.user_id)
        return float(max(count + rng.normal(0.0, 0.5), 0.0))


class UrlRiskService(_AggregateService):
    """Historical positive rate of the post's URL category (exact join)."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float:
        return float(self._store.rate("url", point.latent.url_category))


class KeywordRiskService(_AggregateService):
    """Max historical positive rate over the post's keywords.

    The keyword join is noisy for non-text modalities (keywords must be
    extracted by a captioning model first), so a fraction of keywords is
    missed there.
    """

    def __init__(
        self,
        spec: FeatureSpec,
        store: AggregateStore,
        miss_prob: dict[Modality, float] | None = None,
    ) -> None:
        super().__init__(spec, store)
        self._miss_prob = miss_prob or {
            Modality.TEXT: 0.05,
            Modality.IMAGE: 0.35,
            Modality.VIDEO: 0.30,
        }

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float:
        miss = self._miss_prob.get(point.modality, 0.0)
        observed = tuple(
            k for k in point.latent.keywords if rng.random() >= miss
        )
        return self._store.max_rate("keyword", observed)


#: smoothing used by the nonservable, curation-only statistics — the
#: offline pipeline can afford the full-fidelity (lightly smoothed)
#: join that the serving path cannot (paper §4.1 / Figure 5 bottom)
NONSERVABLE_SMOOTHING = 2.0


class TopicSensitivityService(_AggregateService):
    """Mean historical positive rate over the post's topics.

    Marked nonservable in the standard suite: the topic-rate join is too
    expensive to serve online, so it is available only for training-data
    curation (paper §4.1).
    """

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float:
        return self._store.mean_rate(
            "topic", point.latent.topics, smoothing=NONSERVABLE_SMOOTHING
        )


#: probability that page context resolves per modality (image/video
#: posts frequently lack a crawlable linked page)
PAGE_AVAILABILITY = {
    Modality.TEXT: 0.95,
    Modality.IMAGE: 0.60,
    Modality.VIDEO: 0.55,
}


class PageRiskService(_AggregateService):
    """Mean historical positive rate over linked-page categories
    (nonservable in the standard suite, like `TopicSensitivityService`)."""

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> float | None:
        if rng.random() >= PAGE_AVAILABILITY.get(point.modality, 1.0):
            return None
        return self._store.mean_rate(
            "page", point.latent.page_categories, smoothing=NONSERVABLE_SMOOTHING
        )
