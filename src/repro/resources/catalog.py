"""Resource catalog: discovery, selection, and quality validation.

The paper's §7.1 notes that as the number of available resources grows
it becomes hard to discover which are useful, and that "a low quality
feature/organizational resource might negatively impact performance if
it were selected via automated processes without validation".  The
catalog therefore offers (a) structured lookup by service set, modality,
and servability, and (b) a quality-validation pass that scores each
resource's single-feature discriminative power against a labeled
development corpus.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.exceptions import ResourceError
from repro.datagen.entities import Modality
from repro.features.schema import FeatureKind, FeatureSchema
from repro.features.table import MISSING, FeatureTable
from repro.resources.base import OrganizationalResource

__all__ = ["ResourceCatalog", "ResourceQualityReport"]


class ResourceQualityReport:
    """Per-resource discriminative-power scores against a dev set."""

    def __init__(self, scores: dict[str, float], base_rate: float) -> None:
        self.scores = dict(scores)
        self.base_rate = base_rate

    def ranked(self) -> list[tuple[str, float]]:
        """Resources sorted by score, best first."""
        return sorted(self.scores.items(), key=lambda kv: -kv[1])

    def weak(self, threshold: float = 0.02) -> list[str]:
        """Resources whose score is below ``threshold`` (candidates to
        exclude before automated selection)."""
        return [name for name, score in self.scores.items() if score < threshold]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        top = ", ".join(f"{n}={s:.3f}" for n, s in self.ranked()[:3])
        return f"ResourceQualityReport(top: {top})"


class ResourceCatalog:
    """An ordered registry of organizational resources."""

    def __init__(self, resources: Iterable[OrganizationalResource] = ()) -> None:
        self._resources: dict[str, OrganizationalResource] = {}
        for resource in resources:
            self.register(resource)

    def register(self, resource: OrganizationalResource) -> None:
        if resource.name in self._resources:
            raise ResourceError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource

    def unregister(self, name: str) -> None:
        if name not in self._resources:
            raise ResourceError(f"unknown resource {name!r}")
        del self._resources[name]

    def __len__(self) -> int:
        return len(self._resources)

    def __iter__(self) -> Iterator[OrganizationalResource]:
        return iter(self._resources.values())

    def __contains__(self, name: str) -> bool:
        return name in self._resources

    def get(self, name: str) -> OrganizationalResource:
        try:
            return self._resources[name]
        except KeyError:
            raise ResourceError(f"unknown resource {name!r}") from None

    @property
    def names(self) -> list[str]:
        return list(self._resources)

    def schema(self) -> FeatureSchema:
        """Feature schema induced by the registered resources."""
        return FeatureSchema(r.spec for r in self)

    def select(
        self,
        service_sets: Iterable[str] | None = None,
        modality: Modality | None = None,
        servable_only: bool = False,
    ) -> list[OrganizationalResource]:
        """Resources filtered by service set / modality / servability."""
        keep_sets = None if service_sets is None else set(service_sets)
        out = []
        for resource in self:
            spec = resource.spec
            if keep_sets is not None and spec.service_set not in keep_sets:
                continue
            if modality is not None and not resource.supports(modality):
                continue
            if servable_only and not spec.servable:
                continue
            out.append(resource)
        return out

    def service_sets(self) -> list[str]:
        return sorted({r.spec.service_set for r in self if r.spec.service_set})

    # ------------------------------------------------------------------
    # quality validation
    # ------------------------------------------------------------------
    def validate_quality(self, table: FeatureTable) -> ResourceQualityReport:
        """Score each resource's feature against the table's labels.

        The score is the best lift-over-base-rate achievable by a
        single-value predicate on the feature (categorical) or by the
        better-ordered direction of the feature (numeric, via a rank
        statistic).  It is deliberately the same signal itemset mining
        exploits, so a low score predicts the resource will not yield
        useful LFs either.
        """
        if table.labels is None:
            raise ResourceError("quality validation requires a labeled table")
        labels = table.labels
        base_rate = float(labels.mean())
        scores: dict[str, float] = {}
        for resource in self:
            name = resource.name
            if name not in table.schema:
                continue
            spec = resource.spec
            if spec.kind is FeatureKind.CATEGORICAL:
                scores[name] = self._categorical_score(
                    table.column(name), labels, base_rate
                )
            elif spec.kind is FeatureKind.NUMERIC:
                scores[name] = self._numeric_score(table.column(name), labels)
            else:
                scores[name] = self._embedding_score(table.column(name), labels)
        return ResourceQualityReport(scores, base_rate)

    @staticmethod
    def _categorical_score(
        column: list[object], labels: np.ndarray, base_rate: float
    ) -> float:
        from collections import defaultdict

        counts: dict[str, list[int]] = defaultdict(lambda: [0, 0])
        for value, label in zip(column, labels):
            if value is MISSING:
                continue
            for token in value:  # type: ignore[union-attr]
                counts[token][0] += int(label)
                counts[token][1] += 1
        best = 0.0
        for pos, total in counts.values():
            if total < 20:
                continue
            precision = pos / total
            best = max(best, precision - base_rate)
        return best

    @staticmethod
    def _numeric_score(column: list[object], labels: np.ndarray) -> float:
        values = np.array(
            [float(v) if v is not MISSING else np.nan for v in column]  # type: ignore[arg-type]
        )
        mask = ~np.isnan(values)
        if mask.sum() < 20 or labels[mask].sum() == 0:
            return 0.0
        pos = values[mask][labels[mask] == 1]
        neg = values[mask][labels[mask] == 0]
        if len(pos) == 0 or len(neg) == 0:
            return 0.0
        # rank-sum AUC, folded so either direction counts
        from scipy.stats import mannwhitneyu

        stat, _ = mannwhitneyu(pos, neg, alternative="two-sided")
        auc = stat / (len(pos) * len(neg))
        return abs(float(auc) - 0.5) * 2.0 * 0.25  # scale into lift-like units

    @staticmethod
    def _embedding_score(column: list[object], labels: np.ndarray) -> float:
        rows = [
            (np.asarray(v, dtype=float), y)
            for v, y in zip(column, labels)
            if v is not MISSING
        ]
        if len(rows) < 20:
            return 0.0
        X = np.stack([r[0] for r in rows])
        y = np.array([r[1] for r in rows])
        if y.sum() == 0 or y.sum() == len(y):
            return 0.0
        mu_pos = X[y == 1].mean(axis=0)
        mu_neg = X[y == 0].mean(axis=0)
        spread = X.std(axis=0).mean() + 1e-9
        return float(np.linalg.norm(mu_pos - mu_neg) / (spread * np.sqrt(X.shape[1]))) * 0.25
