"""The five classification tasks (CT 1–5) from the paper's Table 1.

Each task is a binary topic/object classification problem with the
positive rate reported in Table 1.  The remaining task parameters
(signal strength, noise, imbalance of the latent attribute sets) are
chosen so each task lands in the *regime* the paper reports for it:

* **CT 1** — the microbenchmark task: moderate signal, all feature sets
  contribute, cross-over at a mid-sized labeling budget.
* **CT 2** — "easy positives": concentrated, high-precision positive
  attributes; mined LFs alone capture recall, so label propagation adds
  ≈ nothing (Table 3 shows 1.00×).
* **CT 3** — hard task: weak, noisy features; small cross-over point and
  text-only transfer below the embedding baseline.
* **CT 4** — extreme class imbalance (0.9 %); mined LFs are precise but
  recall-starved, so label propagation yields the largest recall lift.
* **CT 5** — strong features with diffuse positive modes; cross-modal is
  very strong (largest cross-over) and propagation boosts recall a lot.

Corpus sizes are the paper's Table-1 counts scaled to laptop size
(≈ 1/1000 for the training corpora); ``scale`` rescales them further.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import spawn
from repro.datagen.corpus import Corpus, CorpusSplits
from repro.datagen.entities import Modality
from repro.datagen.world import TaskDefinition, TaskRuntime, World, WorldConfig

__all__ = [
    "TaskConfig",
    "classification_task",
    "list_tasks",
    "build_definition",
    "generate_task_corpora",
    "TASK_REGISTRY",
]


@dataclass(frozen=True)
class TaskConfig:
    """Declarative description of one cross-modal classification task."""

    name: str
    description: str
    target_positive_rate: float
    #: number of task-positive values per latent attribute family
    n_positive_topics: int
    n_positive_objects: int
    n_positive_keywords: int
    n_positive_entities: int
    n_positive_url_categories: int
    n_positive_page_categories: int
    #: latent score weights / noise (see TaskDefinition)
    weight_topics: float = 1.0
    weight_objects: float = 0.8
    weight_keywords: float = 0.9
    weight_entities: float = 0.5
    weight_url: float = 0.6
    weight_page: float = 0.7
    weight_user: float = 0.7
    score_noise: float = 0.35
    user_attribute_coupling: float = 1.6
    #: base corpus sizes at scale=1.0 (paper counts / ~1000)
    n_text_labeled: int = 18_000
    n_image_unlabeled: int = 7_200
    n_image_test: int = 2_000
    n_image_labeled_pool: int = 8_000
    world: WorldConfig = field(default_factory=WorldConfig)

    def scaled(self, scale: float) -> "TaskConfig":
        """Return a copy with corpus sizes multiplied by ``scale``.

        Sizes are floored so every split keeps enough positives to be
        measurable even at small scales.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")

        def size(base: int, floor: int) -> int:
            return max(int(round(base * scale)), floor)

        return replace(
            self,
            n_text_labeled=size(self.n_text_labeled, 400),
            n_image_unlabeled=size(self.n_image_unlabeled, 300),
            n_image_test=size(self.n_image_test, 300),
            n_image_labeled_pool=size(self.n_image_labeled_pool, 300),
        )


def _task_ct1() -> TaskConfig:
    return TaskConfig(
        name="CT1",
        description="Topic classification; moderate signal in every service set",
        target_positive_rate=0.041,
        n_positive_topics=5,
        n_positive_objects=12,
        n_positive_keywords=16,
        n_positive_entities=8,
        n_positive_url_categories=4,
        n_positive_page_categories=5,
        score_noise=0.50,
        n_text_labeled=18_000,
        n_image_unlabeled=7_200,
        n_image_test=2_000,
    )


def _task_ct2() -> TaskConfig:
    return TaskConfig(
        name="CT2",
        description="Object classification; concentrated, easy positive modes",
        target_positive_rate=0.093,
        n_positive_topics=3,
        n_positive_objects=6,
        n_positive_keywords=8,
        n_positive_entities=4,
        n_positive_url_categories=2,
        n_positive_page_categories=3,
        weight_topics=1.2,
        weight_keywords=1.2,
        score_noise=0.22,
        n_text_labeled=26_000,
        n_image_unlabeled=7_400,
        n_image_test=2_000,
    )


def _task_ct3() -> TaskConfig:
    return TaskConfig(
        name="CT3",
        description="Hard topic classification; weak and noisy feature signal",
        # services carry little signal for this task, but the pretrained
        # embedding is comparatively strong — which is what makes CT3's
        # relative numbers hover near 1 and its cross-over point tiny in
        # the paper (5k, the smallest)
        world=WorldConfig(embedding_risk_signal=6.5),
        target_positive_rate=0.032,
        n_positive_topics=10,
        n_positive_objects=25,
        n_positive_keywords=30,
        n_positive_entities=15,
        n_positive_url_categories=8,
        n_positive_page_categories=10,
        weight_topics=0.55,
        weight_objects=0.45,
        weight_keywords=0.5,
        weight_entities=0.3,
        weight_url=0.3,
        weight_page=0.4,
        weight_user=0.45,
        score_noise=0.62,
        n_text_labeled=19_000,
        n_image_unlabeled=7_400,
        n_image_test=2_000,
    )


def _task_ct4() -> TaskConfig:
    return TaskConfig(
        name="CT4",
        description="Rare-event object classification; extreme class imbalance",
        target_positive_rate=0.009,
        n_positive_topics=4,
        n_positive_objects=8,
        n_positive_keywords=10,
        n_positive_entities=5,
        n_positive_url_categories=3,
        n_positive_page_categories=4,
        weight_topics=1.1,
        weight_objects=1.0,
        score_noise=0.30,
        user_attribute_coupling=1.3,
        n_text_labeled=25_000,
        n_image_unlabeled=7_300,
        n_image_test=4_000,
        n_image_labeled_pool=10_000,
    )


def _task_ct5() -> TaskConfig:
    return TaskConfig(
        name="CT5",
        description="Topic classification; strong features with diffuse positive modes",
        target_positive_rate=0.069,
        n_positive_topics=8,
        n_positive_objects=18,
        n_positive_keywords=22,
        n_positive_entities=10,
        n_positive_url_categories=6,
        n_positive_page_categories=8,
        weight_topics=1.1,
        weight_page=0.9,
        score_noise=0.28,
        n_text_labeled=25_000,
        n_image_unlabeled=7_400,
        n_image_test=2_000,
    )


TASK_REGISTRY: dict[str, TaskConfig] = {
    cfg.name: cfg
    for cfg in (_task_ct1(), _task_ct2(), _task_ct3(), _task_ct4(), _task_ct5())
}


def list_tasks() -> list[str]:
    """Names of the registered classification tasks, CT1..CT5."""
    return sorted(TASK_REGISTRY)


def classification_task(name: str) -> TaskConfig:
    """Look up one of the five registered tasks by name (e.g. ``"CT1"``)."""
    try:
        return TASK_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown task {name!r}; available: {', '.join(list_tasks())}"
        ) from None


def _sample_positive_set(
    rng: np.random.Generator,
    universe: int,
    n: int,
    popularity: np.ndarray | None = None,
    tail_fraction: float = 0.7,
) -> frozenset[int]:
    """Sample a task's positive attribute values.

    When a popularity prior is given, positives are drawn from the
    least-popular ``tail_fraction`` of values: sensitive/violating
    content revolves around attribute values that are *rare* in normal
    traffic, which is what makes single-value predicates over them
    usable as high-precision labeling functions (paper §4.3).
    """
    if n > universe:
        raise ConfigurationError(
            f"cannot pick {n} positive values from a universe of {universe}"
        )
    if popularity is None:
        candidates = np.arange(universe)
    else:
        order = np.argsort(popularity)  # ascending popularity
        n_tail = max(int(tail_fraction * universe), n)
        candidates = order[:n_tail]
    return frozenset(int(v) for v in rng.choice(candidates, size=n, replace=False))


def build_definition(
    config: TaskConfig, seed: int, world: World | None = None
) -> TaskDefinition:
    """Instantiate the latent :class:`TaskDefinition` for ``config``.

    The positive attribute sets are sampled deterministically from
    ``seed`` and the task name, so the same (task, seed) pair always
    denotes the same underlying concept.  When ``world`` is given, the
    positive sets prefer unpopular attribute values (see
    :func:`_sample_positive_set`).
    """
    rng = spawn(seed, f"task-def-{config.name}")
    wc = config.world

    def pop(family: str) -> np.ndarray | None:
        return world.popularity(family) if world is not None else None

    return TaskDefinition(
        name=config.name,
        positive_topics=_sample_positive_set(
            rng, wc.n_topics, config.n_positive_topics, pop("topics")
        ),
        positive_objects=_sample_positive_set(
            rng, wc.n_objects, config.n_positive_objects, pop("objects")
        ),
        positive_keywords=_sample_positive_set(
            rng, wc.n_keywords, config.n_positive_keywords, pop("keywords")
        ),
        positive_entities=_sample_positive_set(
            rng, wc.n_entities, config.n_positive_entities, pop("entities")
        ),
        positive_url_categories=_sample_positive_set(
            rng, wc.n_url_categories, config.n_positive_url_categories, pop("url")
        ),
        positive_page_categories=_sample_positive_set(
            rng, wc.n_page_categories, config.n_positive_page_categories, pop("page")
        ),
        target_positive_rate=config.target_positive_rate,
        weight_topics=config.weight_topics,
        weight_objects=config.weight_objects,
        weight_keywords=config.weight_keywords,
        weight_entities=config.weight_entities,
        weight_url=config.weight_url,
        weight_page=config.weight_page,
        weight_user=config.weight_user,
        score_noise=config.score_noise,
        user_attribute_coupling=config.user_attribute_coupling,
    )


def _generate_corpus(
    world: World,
    task: TaskRuntime,
    modality: Modality,
    n: int,
    name: str,
    rng: np.random.Generator,
    id_offset: int,
) -> Corpus:
    points = [
        world.generate_point(task, modality, point_id=id_offset + i, rng=rng)
        for i in range(n)
    ]
    return Corpus(points=points, name=name)


def generate_task_corpora(
    config: TaskConfig,
    scale: float = 1.0,
    seed: int = 0,
    new_modality: Modality = Modality.IMAGE,
    n_calibration: int = 20_000,
) -> tuple[World, TaskRuntime, CorpusSplits]:
    """Generate the world, calibrated task, and all corpora for a task.

    Parameters
    ----------
    config:
        One of the registered :class:`TaskConfig` objects (or a custom
        one).
    scale:
        Multiplier on the base corpus sizes; experiments use < 1 for
        speed.
    seed:
        Master seed; everything downstream is derived from it.
    new_modality:
        The "new" modality to adapt to.  The paper's case study treats
        image as new; video is also supported (featurized frame-wise).
    """
    sized = config.scaled(scale)
    world = World(config=sized.world, seed=seed)
    definition = build_definition(sized, seed, world=world)
    task = world.calibrate(definition, n_calibration=n_calibration)

    rng = spawn(seed, f"corpora-{config.name}")
    text_labeled = _generate_corpus(
        world, task, Modality.TEXT, sized.n_text_labeled,
        f"{config.name}/text-labeled", rng, id_offset=0,
    )
    offset = len(text_labeled)
    image_unlabeled = _generate_corpus(
        world, task, new_modality, sized.n_image_unlabeled,
        f"{config.name}/{new_modality.value}-unlabeled", rng, id_offset=offset,
    )
    offset += len(image_unlabeled)
    image_test = _generate_corpus(
        world, task, new_modality, sized.n_image_test,
        f"{config.name}/{new_modality.value}-test", rng, id_offset=offset,
    )
    offset += len(image_test)
    image_labeled_pool = _generate_corpus(
        world, task, new_modality, sized.n_image_labeled_pool,
        f"{config.name}/{new_modality.value}-labeled-pool", rng, id_offset=offset,
    )
    splits = CorpusSplits(
        text_labeled=text_labeled,
        image_unlabeled=image_unlabeled,
        image_test=image_test,
        image_labeled_pool=image_labeled_pool,
    )
    return world, task, splits
