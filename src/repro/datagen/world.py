"""The synthetic organizational world.

The :class:`World` owns a latent universe — topics, objects, keywords,
named entities, URL and page categories, and a user population — from
which data points are sampled and then *rendered* into a modality.  A
binary classification task is defined over the latent attributes (a
weighted overlap with task-positive attribute sets plus user behaviour
plus noise), and the decision threshold is calibrated so each task hits
its Table-1 positive rate.

Three properties of the paper's production setting are reproduced here:

* **Cross-modal correlation** — every modality is rendered from the same
  latent family of attributes, so organizational resources recover
  *related* features from text and image posts.
* **Modality gap** — modalities have perturbed attribute popularity
  priors, and renderers expose attributes with modality-specific
  fidelity, so the induced feature distributions differ across
  modalities (the paper's §6.6 observation).
* **Class imbalance** — positive rates of 0.9–9.3 % per Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import spawn
from repro.datagen.entities import (
    DataPoint,
    ImagePayload,
    LatentState,
    Modality,
    TextPayload,
    VideoPayload,
)

__all__ = ["WorldConfig", "TaskDefinition", "TaskRuntime", "UserTable", "World"]


@dataclass(frozen=True)
class WorldConfig:
    """Sizes and noise levels of the latent universe."""

    n_topics: int = 60
    n_objects: int = 150
    n_keywords: int = 250
    n_entities: int = 120
    n_url_categories: int = 40
    n_page_categories: int = 50
    n_users: int = 1500
    latent_dim: int = 16
    tokens_per_topic: int = 30
    #: mean number of topics / objects / keywords / entities per point
    mean_topics: float = 2.0
    mean_objects: float = 3.0
    mean_keywords: float = 2.5
    mean_entities: float = 1.5
    mean_page_categories: float = 2.0
    #: concentration of the per-modality perturbation of attribute
    #: popularity (smaller => larger modality gap)
    modality_shift_concentration: float = 10.0
    #: standard deviation of latent-embedding noise
    embedding_noise: float = 0.45
    #: how strongly content riskiness is visible in the latent embedding
    #: (controls the paper's embedding-only baseline strength)
    embedding_risk_signal: float = 4.0
    #: dimensionality of pretrained image embeddings
    image_embedding_dim: int = 24
    #: noise of the organization-wide vs generic pretrained embedding
    org_embedding_noise: float = 0.18
    generic_embedding_noise: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "n_topics",
            "n_objects",
            "n_keywords",
            "n_entities",
            "n_url_categories",
            "n_page_categories",
            "n_users",
            "latent_dim",
            "image_embedding_dim",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"WorldConfig.{name} must be positive")


@dataclass(frozen=True)
class TaskDefinition:
    """Latent definition of a binary classification task.

    The positive sets are the attribute values correlated with the
    positive class; ``weights`` control how strongly each attribute
    family drives the latent score.
    """

    name: str
    positive_topics: frozenset[int]
    positive_objects: frozenset[int]
    positive_keywords: frozenset[int]
    positive_entities: frozenset[int]
    positive_url_categories: frozenset[int]
    positive_page_categories: frozenset[int]
    target_positive_rate: float
    weight_topics: float = 1.0
    weight_objects: float = 0.8
    weight_keywords: float = 0.9
    weight_entities: float = 0.5
    weight_url: float = 0.6
    weight_page: float = 0.7
    weight_user: float = 0.7
    score_noise: float = 0.35
    #: how strongly a user's latent toxicity biases attribute selection
    #: toward the positive sets (drives the user-statistics signal)
    user_attribute_coupling: float = 1.6

    def __post_init__(self) -> None:
        if not 0.0 < self.target_positive_rate < 0.5:
            raise ConfigurationError(
                "target_positive_rate must be in (0, 0.5); got "
                f"{self.target_positive_rate}"
            )


@dataclass
class TaskRuntime:
    """A task definition bound to a world, with a calibrated threshold."""

    definition: TaskDefinition
    threshold: float

    @property
    def name(self) -> str:
        return self.definition.name


@dataclass(frozen=True)
class UserTable:
    """The user population: per-user latent behaviour and visible metadata.

    ``toxicity`` is hidden; ``report_count`` / ``share_count`` /
    ``account_age_days`` / ``verified`` are what aggregate-statistics
    services can serve (report counts are noisy functions of toxicity, so
    user statistics genuinely carry task signal — the paper's "number of
    times the user posting the content has been reported" feature).
    """

    toxicity: np.ndarray
    report_count: np.ndarray
    share_count: np.ndarray
    account_age_days: np.ndarray
    verified: np.ndarray

    def __len__(self) -> int:
        return len(self.toxicity)


def _sample_count(rng: np.random.Generator, mean: float, low: int = 1) -> int:
    """Sample an attribute-set size: ``low`` plus a Poisson tail."""
    return low + int(rng.poisson(max(mean - low, 0.0)))


#: per-modality probability that each attribute family is an active
#: mode of a risky post (see `_sample_latent`)
_MODE_PRIORS: dict[Modality, dict[str, float]] = {
    Modality.TEXT: {
        "topics": 0.55, "objects": 0.20, "keywords": 0.55,
        "entities": 0.45, "url": 0.45, "page": 0.45,
    },
    Modality.IMAGE: {
        "topics": 0.45, "objects": 0.60, "keywords": 0.30,
        "entities": 0.30, "url": 0.45, "page": 0.45,
    },
    Modality.VIDEO: {
        "topics": 0.45, "objects": 0.60, "keywords": 0.30,
        "entities": 0.30, "url": 0.45, "page": 0.45,
    },
}


class World:
    """A seeded latent universe from which corpora are generated."""

    def __init__(self, config: WorldConfig | None = None, seed: int = 0) -> None:
        self.config = config or WorldConfig()
        self.seed = seed
        cfg = self.config
        rng = spawn(seed, "world-init")

        # Latent geometry: unit vectors per topic / object.
        self.topic_vectors = self._unit_rows(rng, cfg.n_topics, cfg.latent_dim)
        self.object_vectors = self._unit_rows(rng, cfg.n_objects, cfg.latent_dim)

        # Global attribute popularity (Zipf-ish) and per-modality
        # perturbations of it (the modality gap).
        self._popularity = {
            "topics": self._zipf_popularity(rng, cfg.n_topics),
            "objects": self._zipf_popularity(rng, cfg.n_objects),
            "keywords": self._zipf_popularity(rng, cfg.n_keywords),
            "entities": self._zipf_popularity(rng, cfg.n_entities),
            "url": self._zipf_popularity(rng, cfg.n_url_categories),
            "page": self._zipf_popularity(rng, cfg.n_page_categories),
        }
        self._modality_popularity = {
            modality: {
                family: self._perturb(rng, pop, cfg.modality_shift_concentration)
                for family, pop in self._popularity.items()
            }
            for modality in Modality
        }
        # cumulative distributions for fast inverse-CDF sampling
        self._modality_cdf = {
            modality: {
                family: np.cumsum(pop)
                for family, pop in families.items()
            }
            for modality, families in self._modality_popularity.items()
        }

        # Token model: each topic owns a contiguous token range; text is
        # rendered by sampling tokens from the per-topic ranges.
        self._topic_tokens = [
            np.arange(t * cfg.tokens_per_topic, (t + 1) * cfg.tokens_per_topic)
            for t in range(cfg.n_topics)
        ]

        # User population.
        self.users = self._make_users(spawn(seed, "world-users"))

        # Projections latent -> pretrained image embeddings.
        proj_rng = spawn(seed, "world-projections")
        self._org_projection = proj_rng.normal(
            size=(cfg.latent_dim, cfg.image_embedding_dim)
        ) / np.sqrt(cfg.latent_dim)
        self._generic_projection = proj_rng.normal(
            size=(cfg.latent_dim, cfg.image_embedding_dim)
        ) / np.sqrt(cfg.latent_dim)
        # Direction along which content riskiness is visible in the
        # latent embedding (sensitive content tends to *look* sensitive,
        # so pretrained embeddings carry some task signal — this is what
        # makes the paper's embedding-only baseline respectable).
        risk_direction = proj_rng.normal(size=cfg.latent_dim)
        self._risk_direction = risk_direction / np.linalg.norm(risk_direction)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def popularity(self, family: str) -> np.ndarray:
        """Global popularity prior of an attribute family
        (``"topics"``, ``"objects"``, ``"keywords"``, ``"entities"``,
        ``"url"``, ``"page"``)."""
        return self._popularity[family].copy()

    @staticmethod
    def _unit_rows(rng: np.random.Generator, n: int, dim: int) -> np.ndarray:
        rows = rng.normal(size=(n, dim))
        return rows / np.linalg.norm(rows, axis=1, keepdims=True)

    @staticmethod
    def _zipf_popularity(rng: np.random.Generator, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=float)
        weights = 1.0 / ranks**0.8
        rng.shuffle(weights)
        return weights / weights.sum()

    @staticmethod
    def _perturb(
        rng: np.random.Generator, popularity: np.ndarray, concentration: float
    ) -> np.ndarray:
        perturbed = rng.dirichlet(popularity * concentration * len(popularity))
        mixed = 0.5 * popularity + 0.5 * perturbed
        return mixed / mixed.sum()

    def _make_users(self, rng: np.random.Generator) -> UserTable:
        n = self.config.n_users
        toxicity = rng.beta(0.7, 6.0, size=n)
        report_count = rng.poisson(toxicity * 24.0 + 0.25)
        share_count = rng.poisson(rng.gamma(2.0, 3.0, size=n))
        account_age_days = rng.integers(1, 3650, size=n)
        verified = rng.random(n) < 0.08
        return UserTable(
            toxicity=toxicity,
            report_count=report_count.astype(float),
            share_count=share_count.astype(float),
            account_age_days=account_age_days.astype(float),
            verified=verified,
        )

    # ------------------------------------------------------------------
    # task calibration
    # ------------------------------------------------------------------
    def calibrate(
        self, definition: TaskDefinition, n_calibration: int = 20_000
    ) -> TaskRuntime:
        """Bind a task to this world, choosing the score threshold that
        realises the task's target positive rate on a calibration sample.

        A single calibration sample (mixing modalities) is used so the
        same threshold applies to every generated corpus, as a real task
        definition would.
        """
        rng = spawn(self.seed, f"calibrate-{definition.name}")
        scores = np.empty(n_calibration)
        modalities = [Modality.TEXT, Modality.IMAGE]
        for i in range(n_calibration):
            modality = modalities[i % len(modalities)]
            user_id = int(rng.integers(len(self.users)))
            latent = self._sample_latent(definition, modality, user_id, rng)
            scores[i] = latent.score
        threshold = float(np.quantile(scores, 1.0 - definition.target_positive_rate))
        return TaskRuntime(definition=definition, threshold=threshold)

    # ------------------------------------------------------------------
    # latent sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_family(
        rng: np.random.Generator,
        cdf: np.ndarray,
        positive_set: frozenset[int],
        n_items: int,
        positive_bias: float,
    ) -> tuple[int, ...]:
        """Sample ``n_items`` distinct attribute values.

        Each draw comes from the positive set with probability
        ``positive_bias`` and from the (modality-specific) popularity
        prior otherwise (inverse-CDF sampling for speed).
        """
        chosen: set[int] = set()
        positive_list = sorted(positive_set)
        for _ in range(n_items):
            if positive_list and rng.random() < positive_bias:
                value = int(positive_list[rng.integers(len(positive_list))])
            else:
                value = int(np.searchsorted(cdf, rng.random(), side="right"))
            chosen.add(value)
        return tuple(sorted(chosen))

    def _sample_latent(
        self,
        definition: TaskDefinition,
        modality: Modality,
        user_id: int,
        rng: np.random.Generator,
    ) -> LatentState:
        cfg = self.config
        pops = self._modality_cdf[modality]
        toxicity = float(self.users.toxicity[user_id])

        # Riskiness couples user behaviour with content.  The
        # distribution is heavy-tailed: most posts are benign (tiny
        # risk), but a toxicity-dependent fraction *spike* into strongly
        # task-positive content.  Spiked posts carry several positive
        # attribute values, which is what makes single-feature-value
        # predicates mineable (the paper's LFs capture well-defined
        # positive "behavioural modes"); moderate-risk posts form the
        # borderline region that label propagation must find.
        spike_prob = 0.015 + definition.user_attribute_coupling * toxicity * 0.18
        if rng.random() < spike_prob:
            risk = float(rng.uniform(0.45, 0.95))
        else:
            base_risk = 0.015 + 0.06 * toxicity
            risk = float(np.clip(rng.normal(base_risk, 0.03), 0.0, 0.25))

        # Positive content manifests in *modes*: a violating post shows
        # its positive attributes in only a subset of families (e.g. a
        # keyword-mode violation vs an object-mode one).  Mode priors
        # are modality-dependent — text violations are predominantly
        # keyword/topic-mode while image/video violations are
        # object/visual-mode — which is the paper's central premise
        # that "direct translations of policy violations are unclear"
        # when moving across modalities.  Metadata-derived families
        # (url, page) stay modality-neutral, so *some* signal always
        # transfers.
        mode_prior = _MODE_PRIORS[modality]
        families = ("topics", "objects", "keywords", "entities", "url", "page")
        active = [name for name in families if rng.random() < mode_prior[name]]
        if risk > 0.3 and not active:
            active = [families[int(rng.integers(len(families)))]]

        def bias(name: str, factor: float = 1.0) -> float:
            return risk * factor if name in active else 0.0

        topics = self._sample_family(
            rng, pops["topics"], definition.positive_topics,
            _sample_count(rng, cfg.mean_topics), bias("topics"),
        )
        objects = self._sample_family(
            rng, pops["objects"], definition.positive_objects,
            _sample_count(rng, cfg.mean_objects), bias("objects"),
        )
        keywords = self._sample_family(
            rng, pops["keywords"], definition.positive_keywords,
            _sample_count(rng, cfg.mean_keywords), bias("keywords"),
        )
        entities = self._sample_family(
            rng, pops["entities"], definition.positive_entities,
            _sample_count(rng, cfg.mean_entities), bias("entities", 0.8),
        )
        url_category = self._sample_family(
            rng, pops["url"], definition.positive_url_categories, 1,
            bias("url", 0.8),
        )[0]
        page_categories = self._sample_family(
            rng, pops["page"], definition.positive_page_categories,
            _sample_count(rng, cfg.mean_page_categories), bias("page"),
        )

        attr_term = self._attribute_term(
            definition, topics, objects, keywords, entities,
            url_category, page_categories,
        )
        score = float(
            attr_term
            + definition.weight_user * toxicity
            + rng.normal(0.0, definition.score_noise)
        )
        # What pretrained embeddings can "see": the content's severity
        # (its task-positive attribute load) plus a trace of the user's
        # style — but not the reviewer noise in the final label.
        total_attr_weight = (
            definition.weight_topics + definition.weight_objects
            + definition.weight_keywords + definition.weight_entities
            + definition.weight_url + definition.weight_page
        )
        visual_severity = attr_term / max(total_attr_weight, 1e-9) + 0.3 * toxicity
        embedding = self._embed(topics, objects, visual_severity, rng)
        return LatentState(
            topics=topics,
            objects=objects,
            keywords=keywords,
            entities=entities,
            url_category=url_category,
            page_categories=page_categories,
            embedding=embedding,
            score=score,
        )

    @staticmethod
    def _overlap(values: tuple[int, ...], positive: frozenset[int]) -> float:
        if not values:
            return 0.0
        return sum(1 for v in values if v in positive) / len(values)

    def _attribute_term(
        self,
        d: TaskDefinition,
        topics: tuple[int, ...],
        objects: tuple[int, ...],
        keywords: tuple[int, ...],
        entities: tuple[int, ...],
        url_category: int,
        page_categories: tuple[int, ...],
    ) -> float:
        """Weighted task-positive attribute load of a post."""
        return float(
            d.weight_topics * self._overlap(topics, d.positive_topics)
            + d.weight_objects * self._overlap(objects, d.positive_objects)
            + d.weight_keywords * self._overlap(keywords, d.positive_keywords)
            + d.weight_entities * self._overlap(entities, d.positive_entities)
            + d.weight_url * float(url_category in d.positive_url_categories)
            + d.weight_page * self._overlap(page_categories, d.positive_page_categories)
        )

    def _embed(
        self,
        topics: tuple[int, ...],
        objects: tuple[int, ...],
        visual_severity: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        cfg = self.config
        vec = np.zeros(cfg.latent_dim)
        if topics:
            vec += self.topic_vectors[list(topics)].mean(axis=0)
        if objects:
            vec += 0.5 * self.object_vectors[list(objects)].mean(axis=0)
        vec += cfg.embedding_risk_signal * visual_severity * self._risk_direction
        vec += rng.normal(0.0, cfg.embedding_noise, size=cfg.latent_dim)
        return vec

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def _render_text(
        self, latent: LatentState, rng: np.random.Generator
    ) -> TextPayload:
        tokens: list[str] = []
        for topic in latent.topics:
            pool = self._topic_tokens[topic]
            n_tokens = 3 + int(rng.poisson(4))
            for token_id in rng.choice(pool, size=n_tokens):
                tokens.append(f"tok{int(token_id)}")
        for keyword in latent.keywords:
            if rng.random() < 0.85:
                tokens.append(f"kw{keyword}")
        rng.shuffle(tokens)
        return TextPayload(tokens=tuple(tokens), has_emoji=bool(rng.random() < 0.35))

    def _render_image_like(
        self, latent: LatentState, rng: np.random.Generator, extra_noise: float = 0.0
    ) -> ImagePayload:
        cfg = self.config
        z = latent.embedding
        org = z @ self._org_projection + rng.normal(
            0.0, cfg.org_embedding_noise + extra_noise, size=cfg.image_embedding_dim
        )
        generic = z @ self._generic_projection + rng.normal(
            0.0, cfg.generic_embedding_noise + extra_noise, size=cfg.image_embedding_dim
        )
        visible = tuple(o for o in latent.objects if rng.random() < 0.85)
        return ImagePayload(
            org_embedding=org,
            generic_embedding=generic,
            visible_objects=visible,
            quality=float(rng.beta(5.0, 2.0)),
        )

    def _render_video(
        self, latent: LatentState, rng: np.random.Generator
    ) -> VideoPayload:
        n_frames = 3 + int(rng.integers(0, 6))
        frames = tuple(
            self._render_image_like(latent, rng, extra_noise=0.15)
            for _ in range(n_frames)
        )
        return VideoPayload(
            frames=frames, duration_seconds=float(rng.gamma(3.0, 8.0))
        )

    # ------------------------------------------------------------------
    # public generation API
    # ------------------------------------------------------------------
    def generate_point(
        self,
        task: TaskRuntime,
        modality: Modality,
        point_id: int,
        rng: np.random.Generator,
    ) -> DataPoint:
        """Generate a single data point for ``task`` in ``modality``."""
        user_id = int(rng.integers(len(self.users)))
        latent = self._sample_latent(task.definition, modality, user_id, rng)
        if modality is Modality.TEXT:
            payload: TextPayload | ImagePayload | VideoPayload = self._render_text(
                latent, rng
            )
        elif modality is Modality.IMAGE:
            payload = self._render_image_like(latent, rng)
        elif modality is Modality.VIDEO:
            payload = self._render_video(latent, rng)
        else:  # pragma: no cover - exhaustive over enum
            raise ConfigurationError(f"unknown modality {modality!r}")
        label = int(latent.score > task.threshold)
        return DataPoint(
            point_id=point_id,
            user_id=user_id,
            modality=modality,
            payload=payload,
            latent=latent,
            label=label,
        )
