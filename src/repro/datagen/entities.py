"""Core data-point entities shared across the package.

A :class:`DataPoint` is what flows through the pipeline: an id, a user,
a modality, a modality-specific payload, and (internally) the latent
attributes it was rendered from.  Downstream code other than the
simulated organizational resources must never read ``latent`` — it plays
the role of the unobservable real world.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Modality",
    "LatentState",
    "TextPayload",
    "ImagePayload",
    "VideoPayload",
    "DataPoint",
]


class Modality(enum.Enum):
    """The data modality of a post."""

    TEXT = "text"
    IMAGE = "image"
    VIDEO = "video"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LatentState:
    """Unobservable ground-truth attributes behind a data point.

    Only the data generator and the simulated organizational resources
    may inspect this; it models the real-world content that production
    services at Google would analyse.
    """

    topics: tuple[int, ...]
    objects: tuple[int, ...]
    keywords: tuple[int, ...]
    entities: tuple[int, ...]
    url_category: int
    page_categories: tuple[int, ...]
    embedding: np.ndarray
    score: float


@dataclass(frozen=True)
class TextPayload:
    """Rendered text post: a token sequence plus surface statistics."""

    tokens: tuple[str, ...]
    has_emoji: bool

    @property
    def n_words(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class ImagePayload:
    """Rendered image post.

    ``org_embedding`` simulates the organization-wide pretrained image
    embedding the paper mentions; ``generic_embedding`` simulates a
    generic materialized CNN (inception-v3-like) feature, which the paper
    finds slightly weaker (§6.6).  ``visible_objects`` are the objects an
    off-the-shelf detector could plausibly see.
    """

    org_embedding: np.ndarray
    generic_embedding: np.ndarray
    visible_objects: tuple[int, ...]
    quality: float


@dataclass(frozen=True)
class VideoPayload:
    """Rendered video post: an ordered tuple of image frames.

    The paper's motivating example featurizes video by splitting it into
    representative frames with an organizational video-splitting tool and
    then running image services on the frames.
    """

    frames: tuple[ImagePayload, ...]
    duration_seconds: float

    @property
    def n_frames(self) -> int:
        return len(self.frames)


@dataclass(frozen=True)
class DataPoint:
    """A single post in some modality.

    Attributes
    ----------
    point_id:
        Globally unique id within a generated corpus.
    user_id:
        The posting user; joins the point to aggregate statistics.
    modality:
        Which modality the payload is.
    payload:
        One of :class:`TextPayload`, :class:`ImagePayload`,
        :class:`VideoPayload`.
    latent:
        Hidden ground truth; see :class:`LatentState`.
    label:
        Ground-truth binary task label (1 positive / 0 negative).  Test
        sets expose it; "unlabeled" corpora carry it only for evaluation
        and the pipeline never reads it during curation.
    """

    point_id: int
    user_id: int
    modality: Modality
    payload: TextPayload | ImagePayload | VideoPayload
    latent: LatentState = field(repr=False)
    label: int

    def __post_init__(self) -> None:
        if self.label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {self.label!r}")
