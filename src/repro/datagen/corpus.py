"""Corpus containers: ordered collections of data points with helpers.

A :class:`Corpus` is row-aligned with everything downstream — feature
tables, label matrices, and propagation scores all index rows the same
way.  :class:`CorpusSplits` bundles the corpora a cross-modal task needs
(Table 1 of the paper): labeled old-modality data, unlabeled
new-modality data, a labeled new-modality test set, and a labeled
new-modality pool for fully-supervised comparisons.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import make_rng
from repro.datagen.entities import DataPoint, Modality

__all__ = ["Corpus", "CorpusSplits"]


@dataclass
class Corpus:
    """An ordered, immutable-by-convention list of data points."""

    points: list[DataPoint]
    name: str = "corpus"

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[DataPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> DataPoint:
        return self.points[index]

    @property
    def labels(self) -> np.ndarray:
        """Ground-truth labels as an int array (evaluation only)."""
        return np.array([p.label for p in self.points], dtype=np.int64)

    @property
    def point_ids(self) -> np.ndarray:
        return np.array([p.point_id for p in self.points], dtype=np.int64)

    @property
    def user_ids(self) -> np.ndarray:
        return np.array([p.user_id for p in self.points], dtype=np.int64)

    @property
    def positive_rate(self) -> float:
        if not self.points:
            return 0.0
        return float(self.labels.mean())

    def modalities(self) -> set[Modality]:
        return {p.modality for p in self.points}

    def filter(self, predicate: Callable[[DataPoint], bool], name: str | None = None) -> "Corpus":
        """Return a new corpus with the points matching ``predicate``."""
        return Corpus(
            points=[p for p in self.points if predicate(p)],
            name=name or f"{self.name}/filtered",
        )

    def sample(
        self, n: int, seed: int | np.random.Generator = 0, name: str | None = None
    ) -> "Corpus":
        """Uniform random subsample of ``n`` points (without replacement)."""
        if n > len(self.points):
            raise ConfigurationError(
                f"cannot sample {n} points from corpus of size {len(self.points)}"
            )
        rng = make_rng(seed)
        idx = rng.choice(len(self.points), size=n, replace=False)
        idx.sort()
        return Corpus(
            points=[self.points[i] for i in idx],
            name=name or f"{self.name}/sample{n}",
        )

    def take(self, n: int, name: str | None = None) -> "Corpus":
        """First ``n`` points (corpora are generated in random order, so
        a prefix is itself a uniform sample — used by labeling-budget
        sweeps so larger budgets are supersets of smaller ones)."""
        if n > len(self.points):
            raise ConfigurationError(
                f"cannot take {n} points from corpus of size {len(self.points)}"
            )
        return Corpus(points=self.points[:n], name=name or f"{self.name}/take{n}")

    def split(
        self, fraction: float, seed: int | np.random.Generator = 0
    ) -> tuple["Corpus", "Corpus"]:
        """Random split into (first, second) with ``fraction`` in first."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        rng = make_rng(seed)
        idx = rng.permutation(len(self.points))
        cut = int(round(fraction * len(self.points)))
        first = Corpus(
            points=[self.points[i] for i in sorted(idx[:cut])],
            name=f"{self.name}/split-a",
        )
        second = Corpus(
            points=[self.points[i] for i in sorted(idx[cut:])],
            name=f"{self.name}/split-b",
        )
        return first, second

    def concat(self, other: "Corpus", name: str | None = None) -> "Corpus":
        """Concatenate two corpora (rows of ``self`` first)."""
        return Corpus(
            points=self.points + other.points,
            name=name or f"{self.name}+{other.name}",
        )

    def summary(self) -> dict[str, object]:
        """Dataset-card style summary (drives the Table-1 bench)."""
        modality_names = sorted(m.value for m in self.modalities())
        return {
            "name": self.name,
            "n_points": len(self.points),
            "modalities": modality_names,
            "positive_rate": round(self.positive_rate, 4),
            "n_users": int(len(np.unique(self.user_ids))) if self.points else 0,
        }


@dataclass
class CorpusSplits:
    """The corpora for one cross-modal task (mirrors Table 1).

    Attributes
    ----------
    text_labeled:
        Old-modality (text) corpus with human labels — the paper's
        ``n_lbd,text`` (18–26 M there, thousands here).
    image_unlabeled:
        New-modality corpus whose labels the pipeline must NOT read; it
        is what weak supervision labels (``n_unlbld,image``).
    image_test:
        Held-out labeled new-modality test set (``n_lbd,image``).
    image_labeled_pool:
        Labeled new-modality pool used only by the fully-supervised
        comparison sweeps (Figure 5 / Table 2 cross-over points).
    """

    text_labeled: Corpus
    image_unlabeled: Corpus
    image_test: Corpus
    image_labeled_pool: Corpus
    extras: dict[str, Corpus] = field(default_factory=dict)

    def table1_row(self) -> dict[str, object]:
        """One row of the paper's Table 1 for this task's splits."""
        return {
            "n_lbd_text": len(self.text_labeled),
            "n_unlbld_image": len(self.image_unlabeled),
            "n_lbd_image": len(self.image_test),
            "pct_pos": round(100.0 * self.image_test.positive_rate, 1),
        }

    def all_corpora(self) -> Sequence[Corpus]:
        return [
            self.text_labeled,
            self.image_unlabeled,
            self.image_test,
            self.image_labeled_pool,
            *self.extras.values(),
        ]
