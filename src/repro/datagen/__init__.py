"""Synthetic organizational world.

This subpackage stands in for the proprietary Google corpora used in the
paper.  It generates data points from a shared *latent* representation
(topics, objects, keywords, URLs, and a continuous embedding) and renders
each point into a concrete modality (text, image, or video).  Because all
modalities are views of the same latent state, organizational resources
(:mod:`repro.resources`) can recover *correlated but differently
distributed* features from each modality — exactly the structure the
paper's experiments depend on (a bridgeable modality gap).
"""

from repro.datagen.entities import DataPoint, ImagePayload, Modality, TextPayload, VideoPayload
from repro.datagen.corpus import Corpus, CorpusSplits
from repro.datagen.world import World, WorldConfig
from repro.datagen.tasks import TaskConfig, classification_task, generate_task_corpora, list_tasks

__all__ = [
    "Corpus",
    "CorpusSplits",
    "DataPoint",
    "ImagePayload",
    "Modality",
    "TaskConfig",
    "TextPayload",
    "VideoPayload",
    "World",
    "WorldConfig",
    "classification_task",
    "generate_task_corpora",
    "list_tasks",
]
