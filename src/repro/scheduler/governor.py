"""Shared service governor: rate limits, shared breakers, deadlines.

One :class:`ServiceGovernor` fronts the shared resource catalog for
*every* tenant in a multi-tenant run.  Per service it maintains:

* a :class:`~repro.scheduler.ratelimit.TokenBucket` — cross-tenant QPS
  cap; callers block until a token is available;
* a process-shared :class:`~repro.resilience.circuit.CircuitBreaker` —
  failures reported by *any* tenant trip it for all of them.  While
  open, the governor converts would-be short-circuits into *pacing
  waits* (each wait advances the breaker's logical clock toward
  half-open) instead of failing the call;
* a per-call :class:`~repro.resilience.deadline.Deadline` budget,
  handed to each tenant's :class:`ResiliencePolicy` so retry backoff
  never sleeps past it.

The invariant the whole scheduler is built around: **the governor only
ever delays calls, it never fails or reroutes them.**  Cross-tenant
state (bucket levels, breaker trips) therefore cannot leak into any
tenant's values, which is what keeps a governed, contended run
bit-identical to the same tenant run solo.  All the governor's own
accounting (trips, waits) is observability, not value state.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

import repro.obs as obs
from repro.core.exceptions import ConfigurationError
from repro.resilience.circuit import CircuitBreaker, CircuitConfig
from repro.scheduler.ratelimit import TokenBucket

__all__ = ["GovernorConfig", "ServiceGovernor", "ServiceGovernorStats"]


@dataclass(frozen=True)
class GovernorConfig:
    """Shared-service protection knobs.

    ``rate_limit`` — tokens/second per service (0 disables limiting);
    ``burst`` — bucket capacity (None: ~1s of burst);
    ``rate_overrides`` — per-service rate overrides by name;
    ``circuit`` — breaker config shared across tenants (None: no
    breaker);
    ``call_deadline`` — simulated-seconds budget per guarded call,
    picked up by tenant policies (None: no deadline);
    ``breaker_pause_s`` — wall seconds to pause per open-breaker wait
    tick (pacing, not failure);
    ``max_breaker_waits`` — safety valve: after this many consecutive
    pacing waits on one call the dial proceeds anyway (guarantees
    progress even if probes stall).
    """

    rate_limit: float = 0.0
    burst: float | None = None
    rate_overrides: dict[str, float] = field(default_factory=dict)
    circuit: CircuitConfig | None = None
    call_deadline: float | None = None
    breaker_pause_s: float = 0.0005
    max_breaker_waits: int = 10_000

    def __post_init__(self) -> None:
        if self.call_deadline is not None and self.call_deadline <= 0:
            raise ConfigurationError("call_deadline must be positive (or None)")
        if self.breaker_pause_s < 0:
            raise ConfigurationError("breaker_pause_s must be >= 0")
        if self.max_breaker_waits < 1:
            raise ConfigurationError("max_breaker_waits must be >= 1")


@dataclass
class ServiceGovernorStats:
    """Per-service counters the governor accumulates."""

    service: str
    calls: int = 0
    successes: int = 0
    failures: int = 0
    throttle_waits: int = 0
    throttle_wait_s: float = 0.0
    breaker_waits: int = 0
    breaker_trips: int = 0
    forced_through: int = 0


class ServiceGovernor:
    """Process-shared pacing layer over a catalog of service names.

    Thread-safe; one instance is shared by every tenant policy in a
    multi-tenant run.  Unknown services are admitted lazily (a bucket
    and breaker are created on first acquire), so the governor does not
    need the full catalog up front.
    """

    def __init__(
        self,
        config: GovernorConfig | None = None,
        services: Iterable[str] = (),
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or GovernorConfig()
        self._clock = clock
        self._sleep = sleep
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._stats: dict[str, ServiceGovernorStats] = {}
        self._lock = threading.Lock()
        for name in services:
            self._admit(name)

    def __getstate__(self) -> dict:
        # a pickled copy (process-pool worker) gets its own locks; its
        # pacing is then per-process — documented, and irrelevant to
        # values since the governor never touches the value path
        with self._lock:
            return {k: v for k, v in self.__dict__.items() if k != "_lock"}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def _admit(self, service: str) -> None:
        """Create bucket/breaker/stats for ``service`` (lock held or
        single-threaded init)."""
        if service in self._stats:
            return
        rate = self.config.rate_overrides.get(service, self.config.rate_limit)
        self._buckets[service] = TokenBucket(
            rate, capacity=self.config.burst,
            clock=self._clock, sleep=self._sleep,
        )
        if self.config.circuit is not None:
            self._breakers[service] = CircuitBreaker(
                self.config.circuit, name=service
            )
        self._stats[service] = ServiceGovernorStats(service=service)

    def _entry(
        self, service: str
    ) -> tuple[TokenBucket, CircuitBreaker | None, ServiceGovernorStats]:
        with self._lock:
            self._admit(service)
            return (
                self._buckets[service],
                self._breakers.get(service),
                self._stats[service],
            )

    def breaker(self, service: str) -> CircuitBreaker | None:
        """The shared breaker for ``service`` (None when disabled)."""
        return self._entry(service)[1]

    @property
    def call_deadline(self) -> float | None:
        return self.config.call_deadline

    # ------------------------------------------------------------------
    # the pacing gate (ResiliencePolicy governor protocol)
    # ------------------------------------------------------------------
    def acquire(self, service: str) -> float:
        """Admit one dial to ``service``; returns wall seconds waited.

        Order: breaker gate first (an open breaker pauses the caller,
        each pause advancing the breaker's logical clock toward its
        half-open probe window), then the token bucket.  Neither gate
        can fail the call.
        """
        bucket, breaker, stats = self._entry(service)
        waited = 0.0
        if breaker is not None:
            spins = 0
            while not breaker.allow():
                spins += 1
                if spins >= self.config.max_breaker_waits:
                    with self._lock:
                        stats.forced_through += 1
                    break
                with self._lock:
                    stats.breaker_waits += 1
                self._sleep(self.config.breaker_pause_s)
                waited += self.config.breaker_pause_s
        throttle = bucket.acquire()
        waited += throttle
        with self._lock:
            stats.calls += 1
            if throttle:
                stats.throttle_waits += 1
                stats.throttle_wait_s += throttle
        if waited:
            obs.observe(f"governor.wait_s/{service}", waited)
        return waited

    def on_success(self, service: str) -> None:
        _, breaker, stats = self._entry(service)
        if breaker is not None:
            breaker.record_success()
        with self._lock:
            stats.successes += 1

    def on_failure(self, service: str) -> None:
        _, breaker, stats = self._entry(service)
        # record_failure() reports whether THIS failure tripped the
        # breaker; reading breaker.trips before/after here would span
        # two lock acquisitions and double-count trips when several
        # tenants report failures concurrently
        tripped = 1 if breaker is not None and breaker.record_failure() else 0
        with self._lock:
            stats.failures += 1
            stats.breaker_trips += tripped
        if tripped:
            obs.add_counter(f"governor.breaker_trips/{service}", tripped)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, ServiceGovernorStats]:
        """Snapshot of per-service stats (copies)."""
        with self._lock:
            return {
                name: ServiceGovernorStats(**vars(s))
                for name, s in self._stats.items()
            }

    def totals(self) -> dict[str, float]:
        """Aggregate counters across services (for BENCH artifacts)."""
        report = self.report()
        return {
            "calls": sum(s.calls for s in report.values()),
            "failures": sum(s.failures for s in report.values()),
            "breaker_trips": sum(s.breaker_trips for s in report.values()),
            "breaker_waits": sum(s.breaker_waits for s in report.values()),
            "throttle_waits": sum(s.throttle_waits for s in report.values()),
            "throttle_wait_s": round(
                sum(s.throttle_wait_s for s in report.values()), 4
            ),
            "forced_through": sum(s.forced_through for s in report.values()),
        }
