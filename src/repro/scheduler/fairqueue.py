"""Weighted fair queuing of stage work across tenants.

:class:`FairScheduler` owns a small pool of worker threads and one
bounded queue per registered tenant.  Workers always take the next item
from the backlogged tenant with the smallest *virtual time* (classic
WFQ: a tenant's virtual time advances by ``1/weight`` per dispatched
item), so a tenant flooding its queue cannot starve the others — it
just advances its own virtual time faster and yields the floor.

Each tenant sees the scheduler through a :class:`TenantExecutor`, a
normal :class:`repro.exec.Executor`, so the whole pipeline stack
(featurize, LF application, graph build) runs its parallel stages
through the shared fair queue without knowing it.

Backpressure and shedding: a full tenant queue either blocks the
submitter (``shed_overflow=False``) or *sheds* the item — runs it
inline on the submitting tenant's thread (``shed_overflow=True``, the
default).  Inline execution produces the identical value (tasks are
pure functions of their arguments), so item-level shedding is
output-neutral load control: it costs the tenant its own cycles instead
of a queue slot, and is counted per tenant.

Determinism: the scheduler decides *when and where* an item runs, never
*what it computes*; results are reassembled in input order by
:meth:`TenantExecutor.imap_ordered`, exactly like every other backend.
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, ClassVar

import repro.obs as obs
from repro.core.exceptions import ConfigurationError, ExecutorError
from repro.exec.base import Executor

__all__ = ["FairQueueConfig", "FairScheduler", "TenantExecutor"]


@dataclass(frozen=True)
class FairQueueConfig:
    """Scheduler sizing.

    ``workers`` — shared worker threads executing stage work;
    ``max_queue`` — per-tenant bounded queue length;
    ``shed_overflow`` — on a full queue, run the item inline on the
    submitter (True) or block until a slot frees (False).
    """

    workers: int = 2
    max_queue: int = 512
    shed_overflow: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")


class _WorkItem:
    __slots__ = ("fn", "arg", "done", "result", "error", "shed")

    def __init__(self, fn: Callable[[Any], Any], arg: Any) -> None:
        self.fn = fn
        self.arg = arg
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.shed = False

    def run(self) -> None:
        try:
            self.result = self.fn(self.arg)
        except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
            self.error = exc
        finally:
            self.done.set()


class _TenantQueue:
    __slots__ = ("name", "weight", "items", "vtime",
                 "submitted", "dispatched", "shed_items")

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.items: deque[_WorkItem] = deque()
        self.vtime = 0.0
        self.submitted = 0
        self.dispatched = 0
        self.shed_items = 0


class FairScheduler:
    """Shared WFQ worker pool; one bounded lane per tenant."""

    def __init__(self, config: FairQueueConfig | None = None) -> None:
        self.config = config or FairQueueConfig()
        self._tenants: dict[str, _TenantQueue] = {}
        self._cond = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._closed = False
        self._started = False
        self._vclock = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "FairScheduler":
        with self._cond:
            if self._started:
                return self
            self._started = True
            for i in range(self.config.workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    name=f"fairq-worker-{i}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
        return self

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            # fail queued-but-undispatched items loudly instead of
            # leaving their consumers waiting forever
            for lane in self._tenants.values():
                while lane.items:
                    item = lane.items.popleft()
                    item.error = ExecutorError(
                        "fair scheduler closed before the item ran"
                    )
                    item.done.set()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "FairScheduler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # registration / submission
    # ------------------------------------------------------------------
    def register(self, tenant: str, weight: float = 1.0) -> "TenantExecutor":
        """Create ``tenant``'s lane and hand back its executor facade."""
        if weight <= 0:
            raise ConfigurationError("tenant weight must be positive")
        with self._cond:
            if tenant in self._tenants:
                raise ConfigurationError(f"tenant {tenant!r} already registered")
            self._tenants[tenant] = _TenantQueue(tenant, weight)
        return TenantExecutor(self, tenant)

    def submit(self, tenant: str, fn: Callable[[Any], Any], arg: Any) -> _WorkItem:
        """Enqueue one work item on ``tenant``'s lane.

        A full lane either sheds (runs the item inline, on the calling
        thread, before returning) or blocks until a slot frees.
        """
        item = _WorkItem(fn, arg)
        with self._cond:
            lane = self._lane(tenant)
            while (
                not self.config.shed_overflow
                and len(lane.items) >= self.config.max_queue
                and not self._closed
            ):
                self._cond.wait(timeout=0.1)
            if self._closed:
                raise ExecutorError("fair scheduler is closed")
            if len(lane.items) >= self.config.max_queue:
                lane.shed_items += 1
                lane.submitted += 1
                item.shed = True
            else:
                if not lane.items:
                    # a lane idle long enough to drain must not bank its
                    # lag as future priority: rejoin at the global clock
                    lane.vtime = max(lane.vtime, self._vclock)
                lane.submitted += 1
                lane.items.append(item)
                self._cond.notify()
        if item.shed:
            obs.add_counter(f"fairq.shed/{tenant}")
            item.run()
        return item

    def _lane(self, tenant: str) -> _TenantQueue:
        lane = self._tenants.get(tenant)
        if lane is None:
            raise ConfigurationError(f"tenant {tenant!r} is not registered")
        return lane

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _next_item(self) -> _WorkItem | None:
        """Pop from the backlogged lane with the least virtual time.
        Returns None when the scheduler closes.  Lock held by caller."""
        while True:
            if self._closed:
                return None
            best: _TenantQueue | None = None
            for lane in self._tenants.values():
                if not lane.items:
                    continue
                if (
                    best is None
                    or lane.vtime < best.vtime
                    or (lane.vtime == best.vtime and lane.name < best.name)
                ):
                    best = lane
            if best is not None:
                best.vtime += 1.0 / best.weight
                self._vclock = best.vtime
                best.dispatched += 1
                item = best.items.popleft()
                self._cond.notify_all()  # wake blocked submitters
                return item
            self._cond.wait()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                item = self._next_item()
            if item is None:
                return
            item.run()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, dict[str, float]]:
        """Per-tenant {submitted, dispatched, shed_items, vtime}."""
        with self._cond:
            return {
                lane.name: {
                    "submitted": lane.submitted,
                    "dispatched": lane.dispatched,
                    "shed_items": lane.shed_items,
                    "weight": lane.weight,
                    "vtime": round(lane.vtime, 4),
                }
                for lane in self._tenants.values()
            }


class TenantExecutor(Executor):
    """One tenant's :class:`Executor` view of a shared fair scheduler.

    Honours the executor contract (input-order results, earliest-ordered
    failure propagates, pure tasks); ``close()`` is a no-op because the
    scheduler owns the worker pool.
    """

    backend: ClassVar[str] = "fair"

    def __init__(self, scheduler: FairScheduler, tenant: str) -> None:
        self.scheduler = scheduler
        self.tenant = tenant
        self.workers = scheduler.config.workers

    def imap_ordered(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        chunk_size: int | None = None,
    ) -> Iterator[Any]:
        # submit eagerly (work starts regardless of consumption pace),
        # yield lazily in input order
        pending = [self.scheduler.submit(self.tenant, fn, item) for item in items]

        def _results() -> Iterator[Any]:
            for work in pending:
                work.done.wait()
                if work.error is not None:
                    raise work.error
                yield work.result

        return _results()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TenantExecutor(tenant={self.tenant!r}, workers={self.workers})"
