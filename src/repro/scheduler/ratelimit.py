"""Thread-safe token-bucket rate limiter (wall-clock pacing).

The bucket refills continuously at ``rate`` tokens per second up to
``capacity``; :meth:`acquire` blocks the calling thread until a token is
available.  This is deliberately the *only* place in the scheduler that
touches wall-clock time for control decisions: a rate limit slows
callers down but never fails a call, so governed pipeline results stay
bit-identical to ungoverned ones (determinism lives in the value path,
pacing lives here).

``clock`` and ``sleep`` are injectable for tests (drive a manual clock
instead of real time).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from repro.core.exceptions import ConfigurationError

__all__ = ["TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket.

    ``rate <= 0`` disables limiting (every acquire succeeds instantly).
    ``capacity`` defaults to ``max(rate, 1)`` — roughly one second of
    burst.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("capacity must be positive (or None)")
        self.rate = float(rate)
        self.capacity = (
            float(capacity) if capacity is not None else max(self.rate, 1.0)
        )
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.capacity
        self._updated = clock()
        self._lock = threading.Lock()
        #: total seconds callers spent blocked in acquire()
        self.waited_s = 0.0
        #: acquires that had to wait at least once
        self.waits = 0

    def __getstate__(self) -> dict:
        # locks don't pickle; a copy in a process-pool worker paces
        # independently, which is fine — pacing never touches values
        with self._lock:
            return {k: v for k, v in self.__dict__.items() if k != "_lock"}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def unlimited(self) -> bool:
        return self.rate <= 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._updated, 0.0)
        self._updated = now
        self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available right now; never blocks."""
        if self.unlimited:
            return True
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def acquire(self, n: float = 1.0) -> float:
        """Block until ``n`` tokens are available; returns seconds waited."""
        if self.unlimited:
            return 0.0
        waited = 0.0
        first_wait = True
        while True:
            with self._lock:
                now = self._clock()
                self._refill(now)
                if self._tokens >= n:
                    self._tokens -= n
                    if waited:
                        self.waited_s += waited
                    return waited
                shortfall = (n - self._tokens) / self.rate
                if first_wait:
                    self.waits += 1
                    first_wait = False
            # sleep outside the lock so other threads can refill/acquire
            self._sleep(shortfall)
            waited += shortfall

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TokenBucket(rate={self.rate}, capacity={self.capacity}, "
            f"waits={self.waits})"
        )
