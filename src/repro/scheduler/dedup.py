"""Cross-tenant single-flight deduplication of stage work.

Two tenants with identical stage fingerprints (same context, config,
derived seeds, and input artifact hashes — see
:func:`repro.runs.manifest.stage_fingerprint`) would compute byte-
identical artifacts.  :class:`StageDeduper` makes sure only one of them
does: the first arrival computes, encodes, and persists into the shared
content-hashed :class:`~repro.runs.store.RunStore`; concurrent and
later arrivals wait for the flight and reuse its *artifact references*.
A hit then decodes from the store exactly like a checkpoint replay —
never a live Python object — so each tenant gets its own fresh copy and
the hit path exercises the same integrity-checked read as a resume
(including auto-repair, when the hitting run's
:class:`~repro.runs.checkpoint.RunCheckpointer` opted in: a damaged
shared artifact is recomputed by the hitter and hash-verified against
the flight's recorded refs before the hit decodes).

This is safe precisely because the fingerprint is a content hash over
everything that determines the output: a dedup hit returns bytes the
hitting tenant would have produced itself, bit for bit.  Tenants with
different seeds or fault configs have different fingerprints and never
collide.

Failures do not poison the registry: a compute error propagates to
every waiter of that flight and the key is released, so a later attempt
recomputes.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import repro.obs as obs

__all__ = ["DedupOutcome", "StageDeduper"]


@dataclass
class DedupOutcome:
    """What one :meth:`StageDeduper.run` call resolved to.

    ``value`` is the live computed object for the flight owner and
    ``None`` for a dedup hit (the hitter decodes from the store via
    ``refs``).  ``refs`` maps artifact name to a durable
    :class:`~repro.runs.store.ArtifactRef` in the shared store.
    """

    hit: bool
    value: Any
    refs: dict[str, Any]


class _Flight:
    __slots__ = ("done", "refs", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.refs: dict[str, Any] | None = None
        self.error: BaseException | None = None


@dataclass
class StageDeduper:
    """Single-flight registry keyed by stage fingerprint."""

    hits: int = 0
    misses: int = 0
    _flights: dict[str, _Flight] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def run(
        self,
        key: str,
        compute: Callable[[], tuple[Any, dict[str, Any]]],
    ) -> DedupOutcome:
        """Run ``compute`` once per ``key`` across all callers.

        ``compute`` must return ``(value, refs)`` with every ref already
        persisted in the shared store — the owner stores *before*
        followers are released, so a hit never references bytes that
        aren't on disk.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                owner = True
                self.misses += 1
            else:
                owner = False
                self.hits += 1
        if owner:
            try:
                value, refs = compute()
            except BaseException as exc:
                with self._lock:
                    flight.error = exc
                    # release the key: the failure belongs to this
                    # flight only, a retry may succeed
                    self._flights.pop(key, None)
                flight.done.set()
                raise
            flight.refs = refs
            flight.done.set()
            return DedupOutcome(hit=False, value=value, refs=refs)
        flight.done.wait()
        if flight.error is not None:
            # un-count the hit: this flight never produced a result
            with self._lock:
                self.hits -= 1
            raise flight.error
        assert flight.refs is not None
        obs.add_counter("dedup.stage_hits")
        return DedupOutcome(hit=True, value=None, refs=flight.refs)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}
