"""Multi-tenant orchestration of concurrent pipeline runs.

N tenants — each a full cross-modal adaptation run with its own seed,
fault regime, and retry budget — execute concurrently against one
shared service catalog, one shared artifact store, and one shared
governor.  The orchestrator composes the scheduler building blocks:

* :class:`~repro.scheduler.governor.ServiceGovernor` — shared per-
  service token buckets, a process-shared circuit breaker, and a
  per-call deadline budget.  Pacing only: it delays calls, never
  changes their values.
* :class:`~repro.scheduler.fairqueue.FairScheduler` — stage work from
  every tenant flows through one weighted-fair-queued worker pool; a
  flooding tenant yields the floor instead of starving the rest.
* :class:`~repro.scheduler.dedup.StageDeduper` + a shared
  :class:`~repro.runs.store.RunStore` — identical stage work (same
  fingerprint) computes once; the other tenants decode the owner's
  artifacts.
* Admission control — at most ``max_active`` tenants run concurrently;
  arrivals beyond ``max_active + max_waiting`` are *shed*: they still
  run, but with a degraded retry budget (one attempt, leaning on the
  fallback chain), trading quality for load.

The determinism contract, which every piece above is built around:
**contention never changes values**.  All value-affecting state — fault
schedules, retry budgets, deadline budgets (simulated time), derived
RNG seeds — is per-tenant and configuration-determined, so a tenant's
outputs are bit-identical whether it runs alone or among N noisy
neighbours (:meth:`MultiTenantOrchestrator.run_solo` +
:meth:`TenantResult.matches` prove it per run).
"""

from __future__ import annotations

import tempfile
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

import repro.obs as obs
from repro.core.config import PipelineConfig
from repro.core.exceptions import ConfigurationError
from repro.core.pipeline import CrossModalPipeline
from repro.core.rng import derive_seed
from repro.resilience import (
    FallbackChain,
    FaultInjector,
    FaultSpec,
    ResiliencePolicy,
    RetryConfig,
    build_substitute_map,
)
from repro.resources.catalog import ResourceCatalog
from repro.runs.checkpoint import RunCheckpointer
from repro.runs.store import RunStore
from repro.scheduler.dedup import StageDeduper
from repro.scheduler.fairqueue import FairQueueConfig, FairScheduler
from repro.scheduler.governor import GovernorConfig, ServiceGovernor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.corpus import CorpusSplits
    from repro.datagen.world import TaskRuntime, World

__all__ = [
    "TenantSpec",
    "TenantResult",
    "OrchestratorConfig",
    "MultiTenantReport",
    "MultiTenantOrchestrator",
    "jain_index",
]


def jain_index(values: list[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over non-negative
    allocations: 1.0 is perfectly fair, ``1/n`` maximally unfair."""
    xs = [float(v) for v in values]
    if not xs or all(x == 0.0 for x in xs):
        return 1.0
    total = sum(xs)
    return total * total / (len(xs) * sum(x * x for x in xs))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's run configuration.

    ``availability`` is the per-call success probability of the
    tenant's faulty services; ``faulty_services`` names which services
    fault (empty tuple = all of them).  All of these are value-
    affecting and flow into the run's checkpoint fingerprints.
    """

    name: str
    seed: int = 1
    weight: float = 1.0
    availability: float = 1.0
    faulty_services: tuple[str, ...] = ()
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if not 0.0 < self.availability <= 1.0:
            raise ConfigurationError(
                f"availability must be in (0, 1], got {self.availability}"
            )
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


@dataclass(frozen=True)
class OrchestratorConfig:
    """Shared-infrastructure sizing for one orchestrated batch.

    ``max_active`` bounds concurrently *running* tenants (0 =
    unbounded); ``max_waiting`` bounds the admission queue — tenants
    beyond ``max_active + max_waiting`` are shed into degraded mode
    (single attempt, fallback chain) instead of being rejected.
    """

    governor: GovernorConfig = field(default_factory=GovernorConfig)
    fair_queue: FairQueueConfig = field(default_factory=FairQueueConfig)
    max_active: int = 0
    max_waiting: int | None = None

    def __post_init__(self) -> None:
        if self.max_active < 0:
            raise ConfigurationError("max_active must be >= 0")
        if self.max_waiting is not None:
            if self.max_waiting < 0:
                raise ConfigurationError("max_waiting must be >= 0")
            if self.max_active == 0:
                raise ConfigurationError(
                    "max_waiting requires max_active > 0 (an unbounded "
                    "orchestrator has no admission queue to cap)"
                )


@dataclass
class TenantResult:
    """Everything one tenant's run produced (or the error that ended it)."""

    name: str
    seed: int
    availability: float
    ok: bool
    shed: bool
    max_attempts: int
    wall_s: float = 0.0
    error: str | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    #: {stage: fingerprint} and {stage: {artifact: content_hash}} from
    #: the tenant's manifest — the bit-identity comparison material
    stage_fingerprints: dict[str, str] = field(default_factory=dict)
    artifact_hashes: dict[str, dict[str, str]] = field(default_factory=dict)
    reused_stages: list[str] = field(default_factory=list)
    deduped_stages: list[str] = field(default_factory=list)
    #: resilience accounting sampled from this tenant's policy
    counters: dict[str, int] = field(default_factory=dict)

    def signature(self) -> dict[str, dict]:
        """Stage fingerprints + artifact content hashes + metrics: equal
        signatures mean bit-identical runs (artifacts are content-
        addressed, so equal hashes are equal bytes)."""
        return {
            "fingerprints": dict(self.stage_fingerprints),
            "artifacts": {k: dict(v) for k, v in self.artifact_hashes.items()},
            "metrics": dict(self.metrics),
        }

    def matches(self, other: "TenantResult") -> bool:
        return self.ok and other.ok and self.signature() == other.signature()


@dataclass
class MultiTenantReport:
    """Aggregate outcome of one orchestrated batch."""

    tenants: list[TenantResult]
    wall_s: float
    #: completed tenant runs per wall-clock second
    throughput: float
    #: Jain fairness over per-tenant completion rates (1/wall_s)
    jain_fairness: float
    governor: dict[str, float] = field(default_factory=dict)
    governor_services: dict[str, dict] = field(default_factory=dict)
    fair_queue: dict[str, dict[str, float]] = field(default_factory=dict)
    dedup: dict[str, int] = field(default_factory=dict)
    shed_tenants: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tenants)

    @property
    def total_shed_items(self) -> int:
        return int(sum(c.get("shed_items", 0) for c in self.fair_queue.values()))

    def render(self) -> str:
        from repro.experiments.reporting import render_table

        rows = []
        for t in sorted(self.tenants, key=lambda r: r.name):
            rows.append(
                [
                    t.name,
                    t.availability,
                    "shed" if t.shed else "full",
                    f"{t.wall_s:.2f}s",
                    round(t.metrics.get("auprc", float("nan")), 3)
                    if t.ok
                    else f"ERROR: {t.error}",
                    len(t.deduped_stages),
                    t.counters.get("retries", 0),
                    t.counters.get("deadline_exceeded", 0),
                ]
            )
        table = render_table(
            ["tenant", "avail", "admission", "wall", "auprc",
             "deduped", "retries", "deadline"],
            rows,
            title=(
                f"Multi-tenant batch — {len(self.tenants)} tenants, "
                f"{self.wall_s:.2f}s wall, Jain fairness "
                f"{self.jain_fairness:.3f}"
            ),
        )
        extras = (
            f"governor: {self.governor}\n"
            f"fair queue shed items: {self.total_shed_items}, "
            f"dedup: {self.dedup}, shed tenants: {self.shed_tenants or '-'}"
        )
        return table + "\n" + extras


class MultiTenantOrchestrator:
    """Run N tenant pipelines concurrently over shared infrastructure.

    All tenants share one generated world/task/splits and one resource
    catalog (resources are pure: value RNGs are passed in per call, so
    the catalog is safe to share across threads).  Each tenant gets its
    own fault-injecting view of the catalog, its own resilience policy,
    and its own manifest directory; artifacts live in one shared
    content-hashed store so identical stages dedup across tenants.
    """

    def __init__(
        self,
        world: "World",
        task: "TaskRuntime",
        splits: "CorpusSplits",
        catalog: ResourceCatalog,
        config: OrchestratorConfig | None = None,
        base_config: PipelineConfig | None = None,
        context: dict | None = None,
        run_root: str | Path | None = None,
    ) -> None:
        self.world = world
        self.task = task
        self.splits = splits
        self.catalog = catalog
        self.config = config or OrchestratorConfig()
        self.base_config = base_config or PipelineConfig()
        #: manifest context shared by every tenant with the same seed —
        #: deliberately excludes the tenant *name* so identical configs
        #: fingerprint identically (dedup across tenants, and solo runs
        #: compare equal)
        self.context = dict(context or {"experiment": "multitenant"})
        self.run_root = Path(run_root) if run_root is not None else None

    # ------------------------------------------------------------------
    # per-tenant assembly
    # ------------------------------------------------------------------
    def _build_pipeline(
        self,
        spec: TenantSpec,
        max_attempts: int,
        governor: ServiceGovernor | None,
        executor=None,
    ) -> tuple[CrossModalPipeline, ResiliencePolicy, dict]:
        """One tenant's pipeline: faulty catalog view + policy + context.

        Everything value-affecting here derives from the *spec* (never
        from the shared infrastructure), which is what makes solo and
        contended runs bit-identical.
        """
        fault_rate = 1.0 - spec.availability
        fault_seed = derive_seed(spec.seed, "faults")
        if spec.faulty_services:
            injector = FaultInjector(
                FaultSpec(),
                overrides={
                    name: FaultSpec(transient_rate=fault_rate)
                    for name in spec.faulty_services
                },
                seed=fault_seed,
            )
        else:
            injector = FaultInjector(
                FaultSpec(transient_rate=fault_rate), seed=fault_seed
            )
        wrapped = injector.wrap_all(list(self.catalog))
        deadline = self.config.governor.call_deadline
        policy_seed = derive_seed(spec.seed, "policy")
        policy = ResiliencePolicy(
            retry=RetryConfig(max_attempts=max_attempts),
            fallback=FallbackChain(substitutes=build_substitute_map(wrapped)),
            seed=policy_seed,
            governor=governor,
            deadline_budget=deadline,
        )
        resilience_context = {
            "availability": spec.availability,
            "faulty_services": sorted(spec.faulty_services) or "all",
            "max_attempts": max_attempts,
            "deadline": deadline,
            "fault_seed": fault_seed,
            "policy_seed": policy_seed,
        }
        pipeline = CrossModalPipeline(
            self.world,
            self.task,
            ResourceCatalog(wrapped),
            config=replace(self.base_config, seed=spec.seed),
            executor=executor,
            resilience=policy,
            resilience_context=resilience_context,
        )
        return pipeline, policy, {**self.context, "seed": spec.seed}

    def _finish(
        self,
        result: TenantResult,
        pipeline_result,
        checkpoint: RunCheckpointer,
        policy: ResiliencePolicy,
        wall_s: float,
    ) -> TenantResult:
        health = policy.health_report()
        result.ok = True
        result.wall_s = wall_s
        result.metrics = dict(pipeline_result.metrics)
        result.reused_stages = list(checkpoint.reused_stages)
        result.deduped_stages = list(checkpoint.deduped_stages)
        result.stage_fingerprints = {
            name: record.fingerprint
            for name, record in sorted(checkpoint.manifest.stages.items())
        }
        result.artifact_hashes = {
            name: {k: ref.hash for k, ref in sorted(record.artifacts.items())}
            for name, record in sorted(checkpoint.manifest.stages.items())
        }
        result.counters = {
            "retries": health.total_retries,
            "fallbacks": health.total_fallbacks,
            "breaker_trips": health.total_trips,
            "short_circuits": health.total_short_circuits,
            "deadline_exceeded": health.total_deadline_exceeded,
        }
        return result

    # ------------------------------------------------------------------
    # solo baseline
    # ------------------------------------------------------------------
    def run_solo(
        self,
        spec: TenantSpec,
        run_dir: str | Path | None = None,
        shed: bool = False,
    ) -> TenantResult:
        """Run one tenant alone: no governor, no fair queue, no dedup,
        fresh store.  The determinism oracle — a contended run of the
        same spec must match this result bit for bit."""
        if run_dir is None:
            run_dir = tempfile.mkdtemp(prefix=f"solo-{spec.name}-")
        max_attempts = 1 if shed else spec.max_attempts
        pipeline, policy, context = self._build_pipeline(
            spec, max_attempts, governor=None
        )
        checkpoint = RunCheckpointer(run_dir, context=context)
        result = TenantResult(
            name=spec.name,
            seed=spec.seed,
            availability=spec.availability,
            ok=False,
            shed=shed,
            max_attempts=max_attempts,
        )
        t0 = time.perf_counter()
        out = pipeline.run(self.splits, checkpoint)
        return self._finish(
            result, out, checkpoint, policy, time.perf_counter() - t0
        )

    # ------------------------------------------------------------------
    # the orchestrated batch
    # ------------------------------------------------------------------
    def run(self, tenants: list[TenantSpec]) -> MultiTenantReport:
        """Run every tenant concurrently; never raises for a tenant
        failure — failed tenants come back with ``ok=False`` and the
        rest complete."""
        if not tenants:
            raise ConfigurationError("at least one tenant is required")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names in {names}")

        cfg = self.config
        root = self.run_root or Path(tempfile.mkdtemp(prefix="multitenant-"))
        root.mkdir(parents=True, exist_ok=True)
        store = RunStore(root / "store")
        deduper = StageDeduper()
        governor = ServiceGovernor(
            cfg.governor, services=[r.name for r in self.catalog]
        )
        # admission control: declared-load based, decided in spec order
        # (deterministic).  The semaphore then enforces max_active at
        # runtime; shed tenants still run, on a degraded retry budget.
        if cfg.max_active > 0 and cfg.max_waiting is not None:
            admitted_cap = cfg.max_active + cfg.max_waiting
        else:
            admitted_cap = len(tenants)
        shed_names = [t.name for t in tenants[admitted_cap:]]
        slots = (
            threading.BoundedSemaphore(cfg.max_active)
            if cfg.max_active > 0
            else None
        )

        results: list[TenantResult | None] = [None] * len(tenants)

        def _tenant_body(index: int, spec: TenantSpec, lane) -> None:
            shed = spec.name in shed_names
            max_attempts = 1 if shed else spec.max_attempts
            result = TenantResult(
                name=spec.name,
                seed=spec.seed,
                availability=spec.availability,
                ok=False,
                shed=shed,
                max_attempts=max_attempts,
            )
            results[index] = result
            try:
                with obs.span(
                    "scheduler.tenant", tenant=spec.name, shed=shed
                ):
                    if shed:
                        obs.add_counter("scheduler.tenants_shed")
                    pipeline, policy, context = self._build_pipeline(
                        spec, max_attempts, governor=governor, executor=lane
                    )
                    checkpoint = RunCheckpointer(
                        root / "tenants" / spec.name,
                        context=context,
                        store=store,
                        deduper=deduper,
                    )
                    t0 = time.perf_counter()
                    if slots is not None:
                        with slots:
                            out = pipeline.run(self.splits, checkpoint)
                    else:
                        out = pipeline.run(self.splits, checkpoint)
                    self._finish(
                        result, out, checkpoint, policy,
                        time.perf_counter() - t0,
                    )
            except BaseException as exc:  # noqa: BLE001 - reported per tenant
                result.error = f"{type(exc).__name__}: {exc}"
                result.wall_s = 0.0
                obs.add_counter("scheduler.tenant_failures")
                # keep the stack around for debugging without crashing
                # the batch: other tenants must still complete
                traceback.clear_frames(exc.__traceback__)

        t_start = time.perf_counter()
        with FairScheduler(cfg.fair_queue) as scheduler:
            # register lanes up front (deterministic order) so weights
            # are in place before any work arrives
            lanes = [scheduler.register(t.name, t.weight) for t in tenants]
            threads = [
                threading.Thread(
                    target=_tenant_body,
                    args=(i, spec, lanes[i]),
                    name=f"tenant-{spec.name}",
                )
                for i, spec in enumerate(tenants)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            fair_counters = scheduler.counters()
        wall_s = time.perf_counter() - t_start

        finished = [r for r in results if r is not None]
        rates = [1.0 / r.wall_s for r in finished if r.ok and r.wall_s > 0]
        report = MultiTenantReport(
            tenants=finished,
            wall_s=wall_s,
            throughput=sum(1 for r in finished if r.ok) / max(wall_s, 1e-9),
            jain_fairness=jain_index(rates),
            governor=governor.totals(),
            governor_services={
                name: asdict(stats)
                for name, stats in sorted(governor.report().items())
            },
            fair_queue=fair_counters,
            dedup=deduper.stats(),
            shed_tenants=shed_names,
        )
        obs.set_gauge("scheduler.jain_fairness", round(report.jain_fairness, 4))
        return report
