"""Multi-tenant run orchestration (DESIGN §13).

Shared-infrastructure building blocks for running N pipeline runs
concurrently against one service catalog:

* :mod:`~repro.scheduler.ratelimit` — token-bucket rate limiting;
* :mod:`~repro.scheduler.governor` — per-service pacing (rate limits,
  process-shared breakers, call deadlines) that delays but never fails;
* :mod:`~repro.scheduler.fairqueue` — weighted fair queuing of stage
  work with bounded lanes, backpressure, and inline shedding;
* :mod:`~repro.scheduler.dedup` — cross-tenant single-flight stage
  deduplication over the shared content-hashed store;
* :mod:`~repro.scheduler.orchestrator` — admission control plus the
  batch runner tying them together.

Contract: contention machinery only affects *when* work runs, never
*what it computes* — a tenant's outputs are bit-identical solo or under
load.
"""

from repro.scheduler.dedup import DedupOutcome, StageDeduper
from repro.scheduler.fairqueue import FairQueueConfig, FairScheduler, TenantExecutor
from repro.scheduler.governor import (
    GovernorConfig,
    ServiceGovernor,
    ServiceGovernorStats,
)
from repro.scheduler.orchestrator import (
    MultiTenantOrchestrator,
    MultiTenantReport,
    OrchestratorConfig,
    TenantResult,
    TenantSpec,
    jain_index,
)
from repro.scheduler.ratelimit import TokenBucket

__all__ = [
    "DedupOutcome",
    "StageDeduper",
    "FairQueueConfig",
    "FairScheduler",
    "TenantExecutor",
    "GovernorConfig",
    "ServiceGovernor",
    "ServiceGovernorStats",
    "MultiTenantOrchestrator",
    "MultiTenantReport",
    "OrchestratorConfig",
    "TenantResult",
    "TenantSpec",
    "jain_index",
    "TokenBucket",
]
