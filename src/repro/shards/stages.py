"""Sharded stage drivers: featurize, LF application, MapReduce.

Each driver processes one shard at a time on the :mod:`repro.exec`
executor grid, so peak RSS is O(shard) + O(output), not O(corpus):

* :func:`featurize_corpus_sharded` — featurizes shard-by-shard into a
  :class:`~repro.shards.table.ShardedTable`.  Per-point RNG streams
  (``feat/<point>/<resource>``) depend only on the point and resource,
  so the shard grid cannot change a single value — that is the theorem
  the differential harness checks by hash.
* :func:`apply_lfs_sharded` — votes shard-by-shard; the int8 vote
  matrix (a few bytes per row) is the only O(corpus) state.
* :func:`run_mapreduce_sharded` — maps shard batches through the
  existing partition core and folds each shard's groups into a running
  combiner-compressed state, so only distinct keys stay resident.
  Requires the classic MapReduce contract: the reducer's output must be
  invariant under combiner pre-aggregation (combiners may run zero or
  more times).  Values reach the reducer in global input order.

Crash safety mirrors MapReduce partitions one level up: every
completed shard is persisted and recorded in a :class:`ShardProgress`
manifest before the ``shard:<tag>:<index>`` crash boundary, so a
killed run recomputes only unfinished shards — and resumes to
bit-identical artifacts, which the harness proves by killing runs at
every shard boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

import repro.obs as obs
from repro.core.atomicio import atomic_write_json, canonical_json, sha256_hex
from repro.core.exceptions import IntegrityError
from repro.dataflow.mapreduce import (
    Combiner,
    Key,
    Mapper,
    Reducer,
    _map_partition_core,
    _PartitionTask,
)
from repro.datagen.corpus import Corpus
from repro.exec import Executor, ExecutorConfig, as_executor, iter_chunks
from repro.features.schema import FeatureSchema
from repro.labeling.lf import LabelingFunction
from repro.labeling.matrix import LabelMatrix, apply_lfs
from repro.resources.base import OrganizationalResource
from repro.resources.featurize import featurize_corpus
from repro.runs.crash import crash_boundary
from repro.runs.store import ArtifactRef, RunStore
from repro.shards.corpus import ShardedCorpus
from repro.shards.layout import shard_ranges
from repro.shards.table import ShardedTable, ShardedTableWriter

__all__ = [
    "ShardProgress",
    "ShardedVotesResult",
    "VOTES_KIND",
    "VOTES_MANIFEST_KIND",
    "apply_lfs_sharded",
    "featurize_corpus_sharded",
    "run_mapreduce_sharded",
]

VOTES_KIND = "votes_shard.npy"
VOTES_MANIFEST_KIND = "votes_manifest"
_VOTES_MAGIC = b"RSHV\x01\n"


class ShardProgress:
    """Atomic completed-shard manifest for one sharded stage.

    The shard-level sibling of
    :class:`~repro.runs.checkpoint.PartitionCheckpointer`: a JSON file
    mapping shard index -> manifest entry (artifact refs + row range),
    rewritten atomically after every completed shard.  ``job_key``
    fingerprints the stage configuration — an existing file written
    under a different key belongs to a different computation and is
    ignored, so resuming with changed config recomputes from scratch
    instead of mixing incompatible shards.
    """

    FORMAT_VERSION = 1

    def __init__(self, path: str | Path, job_key: str) -> None:
        self.path = Path(path)
        self.job_key = str(job_key)
        self._entries: dict[int, dict] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise IntegrityError(
                f"shard progress manifest {self.path} is not valid JSON "
                f"({exc}); it is written atomically, so this indicates "
                f"external modification — delete it to recompute the stage"
            ) from exc
        if (
            not isinstance(data, dict)
            or data.get("format_version") != self.FORMAT_VERSION
            or data.get("job_key") != self.job_key
        ):
            return  # different stage configuration or version: start fresh
        self._entries = {
            int(index): dict(entry)
            for index, entry in data.get("shards", {}).items()
        }

    def _save(self) -> None:
        atomic_write_json(
            self.path,
            {
                "format_version": self.FORMAT_VERSION,
                "job_key": self.job_key,
                "shards": {
                    str(i): entry for i, entry in sorted(self._entries.items())
                },
            },
            indent=2,
        )

    def get(self, index: int) -> dict | None:
        return self._entries.get(index)

    def save(self, index: int, entry: dict) -> None:
        self._entries[index] = dict(entry)
        self._save()
        obs.add_counter("shards.progress_saved")

    def completed(self) -> list[int]:
        return sorted(self._entries)


def _job_key(payload: dict) -> str:
    return sha256_hex(canonical_json(payload).encode("utf-8"))


def _refs_healthy(store: RunStore, refs: list[ArtifactRef | None]) -> bool:
    return all(
        ref is None or store.check(ref) == "healthy" for ref in refs
    )


def _corpus_rows(corpus: Corpus | ShardedCorpus, start: int, stop: int):
    if isinstance(corpus, ShardedCorpus):
        return corpus.rows(start, stop)
    return corpus.points[start:stop]


def featurize_corpus_sharded(
    corpus: Corpus | ShardedCorpus,
    resources: list[OrganizationalResource],
    store: RunStore,
    shard_size: int,
    seed: int = 0,
    include_labels: bool = False,
    n_threads: int = 1,
    policy: Any = None,
    executor: "Executor | ExecutorConfig | str | None" = None,
    progress: ShardProgress | None = None,
    tag: str = "table",
) -> ShardedTable:
    """Featurize ``corpus`` shard-by-shard into a :class:`ShardedTable`.

    Each shard is an independent :func:`featurize_corpus` call on the
    executor grid; only one shard of points and feature rows is resident
    at a time.  With a ``progress`` manifest, completed shards whose
    artifacts are still healthy are adopted instead of recomputed, and
    damaged ones are transparently rebuilt (per-point RNG streams make
    the rebuild bit-identical).  Degradation reports are per-shard and
    not carried on the sharded handle — a resilience-regime run that
    needs the report should featurize unsharded.
    """
    schema = FeatureSchema(r.spec for r in resources)
    n_rows = len(corpus)
    writer = ShardedTableWriter(
        store, schema, n_rows, shard_size, labeled=include_labels
    )
    name = getattr(corpus, "name", "corpus")
    with obs.span(
        "shards.featurize",
        corpus=name,
        n_rows=n_rows,
        shard_size=shard_size,
        n_shards=len(writer.ranges),
    ) as sp:
        for index, (start, stop) in enumerate(writer.ranges):
            entry = progress.get(index) if progress is not None else None
            if entry is not None and _refs_healthy(
                store,
                [
                    ArtifactRef.from_dict(entry["rows"]),
                    None
                    if entry.get("dense") is None
                    else ArtifactRef.from_dict(entry["dense"]),
                ],
            ):
                writer.adopt(index, entry)
                sp.add_counter("shards_adopted")
                continue
            shard_corpus = Corpus(
                points=list(_corpus_rows(corpus, start, stop)),
                name=f"{name}[{start}:{stop}]",
            )
            table = featurize_corpus(
                shard_corpus,
                resources,
                seed=seed,
                include_labels=include_labels,
                n_threads=n_threads,
                policy=policy,
                executor=executor,
            )
            entry = writer.add_shard(index, table)
            if progress is not None:
                progress.save(index, entry)
            crash_boundary(f"shard:{tag}:{index}")
            sp.add_counter("shards_computed")
    return writer.finish()


# ----------------------------------------------------------------------
# sharded LF application
# ----------------------------------------------------------------------
def _encode_votes(votes: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(votes, dtype=np.int8)
    header = canonical_json(
        {"format_version": 1, "shape": list(arr.shape)}
    ).encode("utf-8")
    return b"".join(
        [_VOTES_MAGIC, len(header).to_bytes(8, "little"), header, arr.tobytes()]
    )


def _decode_votes(data: bytes) -> np.ndarray:
    if data[: len(_VOTES_MAGIC)] != _VOTES_MAGIC:
        raise IntegrityError(
            "votes shard lacks the RSHV magic; the artifact kind does "
            "not match its content"
        )
    pos = len(_VOTES_MAGIC)
    header_len = int.from_bytes(data[pos : pos + 8], "little")
    pos += 8
    header = json.loads(data[pos : pos + header_len].decode("utf-8"))
    shape = tuple(header["shape"])
    return (
        np.frombuffer(
            data, dtype=np.int8, offset=pos + header_len,
            count=int(np.prod(shape, dtype=np.int64)),
        )
        .reshape(shape)
        .copy()
    )


@dataclass
class ShardedVotesResult:
    """Output of :func:`apply_lfs_sharded`."""

    matrix: LabelMatrix
    #: per-shard vote artifact refs (empty without a store)
    shard_refs: list[ArtifactRef]
    #: the votes manifest ref (None without a store)
    manifest_ref: ArtifactRef | None


def apply_lfs_sharded(
    lfs: list[LabelingFunction],
    table: ShardedTable,
    n_threads: int = 1,
    executor: "Executor | ExecutorConfig | str | None" = None,
    store: RunStore | None = None,
    progress: ShardProgress | None = None,
    tag: str = "votes",
) -> ShardedVotesResult:
    """Apply ``lfs`` shard-by-shard; only int8 votes accumulate.

    With a ``store``, each shard's votes persist as a content-hashed
    artifact (recorded in ``progress`` for crash resume) and a votes
    manifest chains over the shard hashes.  The returned matrix is
    byte-identical to ``apply_lfs`` over the materialized table: LF
    votes are pure row functions, so shard boundaries cannot move them.

    LF closures do not pickle (see :func:`apply_lfs`), so a process
    executor is downgraded to the thread backend here, mirroring what
    the pipeline does for its own LF application.
    """
    if isinstance(executor, ExecutorConfig) and executor.backend == "process":
        executor = ExecutorConfig(backend="thread", workers=executor.workers)
    elif executor == "process":
        executor = "thread"
    parts: list[np.ndarray] = []
    shard_refs: list[ArtifactRef] = []
    entries: list[dict] = []
    with obs.span(
        "shards.apply_lfs",
        n_rows=table.n_rows,
        n_shards=table.n_shards,
        n_lfs=len(lfs),
    ) as sp:
        for index, (start, stop) in enumerate(table.ranges):
            entry = progress.get(index) if progress is not None else None
            votes: np.ndarray | None = None
            if (
                entry is not None
                and store is not None
                and _refs_healthy(store, [ArtifactRef.from_dict(entry["ref"])])
            ):
                ref = ArtifactRef.from_dict(entry["ref"])
                votes = _decode_votes(store.get_bytes(ref))
                if votes.shape != (stop - start, len(lfs)):
                    votes = None  # stale shape: recompute
            if votes is None:
                shard_matrix = apply_lfs(
                    lfs,
                    table.shard(index),
                    n_threads=n_threads,
                    executor=executor,
                )
                votes = shard_matrix.votes
                if store is not None:
                    ref = store.put_bytes(VOTES_KIND, _encode_votes(votes))
                    entry = {"start": start, "stop": stop, "ref": ref.to_dict()}
                    if progress is not None:
                        progress.save(index, entry)
                    crash_boundary(f"shard:{tag}:{index}")
                sp.add_counter("shards_computed")
            else:
                sp.add_counter("shards_adopted")
            if store is not None:
                assert entry is not None
                shard_refs.append(ArtifactRef.from_dict(entry["ref"]))
                entries.append(entry)
            parts.append(votes)
    stacked = (
        np.vstack(parts)
        if parts
        else np.zeros((0, len(lfs)), dtype=np.int8)
    )
    manifest_ref = None
    if store is not None:
        manifest_ref = store.put_json(
            VOTES_MANIFEST_KIND,
            {
                "format_version": 1,
                "kind": "label_matrix",
                "n_rows": table.n_rows,
                "shard_size": table.shard_size,
                "lf_names": [lf.name for lf in lfs],
                "shards": entries,
            },
        )
    return ShardedVotesResult(
        matrix=LabelMatrix(stacked, lfs),
        shard_refs=shard_refs,
        manifest_ref=manifest_ref,
    )


# ----------------------------------------------------------------------
# sharded MapReduce
# ----------------------------------------------------------------------
def run_mapreduce_sharded(
    shard_batches: Any,
    mapper: Mapper,
    reducer: Reducer,
    combiner: Combiner | None = None,
    n_threads: int = 1,
    executor: "Executor | ExecutorConfig | str | None" = None,
    counters: dict[str, int] | None = None,
) -> dict[Key, Any]:
    """MapReduce over an iterator of record batches (one per shard).

    Each batch is mapped on the executor grid (contiguous chunks, so
    value order is input order on every backend) and folded into a
    running grouped state; the ``combiner`` re-compresses every key on
    merge, keeping resident state at O(distinct keys) instead of
    O(records).  The reduce phase runs once, in sorted key order.

    Equivalence with :func:`~repro.dataflow.mapreduce.run_mapreduce`
    holds for jobs honouring the classic contract — reducer output
    invariant under combiner pre-aggregation; such jobs hash
    byte-identically sharded vs unsharded across all backends.
    """
    ex = as_executor(executor, n_threads)
    grouped_total: dict[Key, list[Any]] = {}
    totals: dict[str, int] = {}
    n_records = 0
    n_shards = 0
    with obs.span(
        "shards.mapreduce", backend=ex.backend, workers=ex.workers
    ) as sp:
        offset = 0
        for batch in shard_batches:
            batch = list(batch)
            n_shards += 1
            n_records += len(batch)
            indexed = [(offset + i, r) for i, r in enumerate(batch)]
            offset += len(batch)
            if ex.backend == "serial" or len(indexed) < 2:
                results = [
                    _map_partition_core(mapper, combiner, indexed, 0, False)
                ]
            else:
                task = _PartitionTask(
                    mapper=mapper,
                    combiner=combiner,
                    record_retries=0,
                    skip_bad_records=False,
                )
                chunks = iter_chunks(indexed, ex.workers)
                results = ex.map_ordered(task, chunks, chunk_size=1)
            for grouped, counts in results:
                for key, values in grouped.items():
                    bucket = grouped_total.setdefault(key, [])
                    bucket.extend(values)
                    if combiner is not None and len(bucket) > len(values):
                        grouped_total[key] = list(combiner(key, bucket))
                for name, value in counts.items():
                    totals[name] = totals.get(name, 0) + value
        output: dict[Key, Any] = {}
        for key in sorted(grouped_total, key=repr):
            output[key] = reducer(key, grouped_total[key])
        sp.add_counter("input_records", n_records)
        sp.add_counter("shards", n_shards)
        sp.add_counter("distinct_keys", len(grouped_total))
    totals["input_records"] = n_records
    totals["distinct_keys"] = len(grouped_total)
    totals["reduced_keys"] = len(output)
    if counters is not None:
        counters.update(totals)
    return output
