"""Sharded feature tables: manifest + content-hashed shard artifacts.

A :class:`ShardedTable` is a handle, not a container: it holds one JSON
manifest (schema, row count, shard ranges, shard artifact refs) and
reads shards on demand from a :class:`~repro.runs.store.RunStore`.
``iter_shards`` / ``iter_rows`` therefore stream with O(shard) resident
memory, and the manifest's content hash pins every shard hash — the
Merkle property checkpoint fingerprints chain over.

The ``reader`` seam accepts anything with ``read_json(ref)`` /
``read_bytes(ref)`` — a plain store wrapper by default, or a
:class:`~repro.runs.repair.RepairEngine` for self-healing loads (the
engine's facade has exactly this shape).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.core.exceptions import CheckpointError, SchemaError
from repro.features.io import _spec_from_dict, _spec_to_dict
from repro.features.schema import FeatureSchema
from repro.features.table import FeatureTable
from repro.shards.codec import (
    DenseView,
    decode_table_shard,
    encode_table_shard,
    mmap_dense,
)
from repro.shards.layout import shard_ranges
from repro.runs.store import ArtifactRef, RunStore

__all__ = [
    "MANIFEST_KIND",
    "ROWS_KIND",
    "DENSE_KIND",
    "ShardedTable",
    "ShardedTableWriter",
]

MANIFEST_KIND = "shard_manifest"
ROWS_KIND = "table_shard"
DENSE_KIND = "table_shard.npy"
_MANIFEST_FORMAT_VERSION = 1


class _StoreReader:
    """Default verifying reader over a bare store."""

    __slots__ = ("store",)

    def __init__(self, store: RunStore) -> None:
        self.store = store

    def read_json(self, ref: ArtifactRef) -> Any:
        return self.store.get_json(ref)

    def read_bytes(self, ref: ArtifactRef) -> bytes:
        return self.store.get_bytes(ref)


def _ref_or_none(data: dict | None) -> ArtifactRef | None:
    return None if data is None else ArtifactRef.from_dict(data)


class ShardedTable:
    """Read handle over one sharded feature table."""

    def __init__(
        self,
        store: RunStore,
        manifest: dict,
        manifest_ref: ArtifactRef | None = None,
        reader: Any | None = None,
    ) -> None:
        version = manifest.get("format_version")
        if version != _MANIFEST_FORMAT_VERSION:
            raise CheckpointError(
                f"shard manifest has format version {version!r}; this "
                f"build reads {_MANIFEST_FORMAT_VERSION}"
            )
        self.store = store
        self.manifest = manifest
        self.manifest_ref = manifest_ref
        self.reader = reader if reader is not None else _StoreReader(store)
        self.schema = FeatureSchema(
            _spec_from_dict(s) for s in manifest["schema"]
        )
        self.n_rows = int(manifest["n_rows"])
        self.shard_size = int(manifest["shard_size"])
        self.labeled = bool(manifest["labeled"])
        self._shards = list(manifest["shards"])

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def ranges(self) -> list[tuple[int, int]]:
        return [(int(s["start"]), int(s["stop"])) for s in self._shards]

    def shard_refs(self, index: int) -> tuple[ArtifactRef, ArtifactRef | None]:
        entry = self._shards[index]
        rows_ref = ArtifactRef.from_dict(entry["rows"])
        return rows_ref, _ref_or_none(entry.get("dense"))

    def shard_hashes(self) -> list[str]:
        """Content hashes of every shard artifact, in shard order."""
        out: list[str] = []
        for i in range(self.n_shards):
            rows_ref, dense_ref = self.shard_refs(i)
            out.append(rows_ref.hash)
            if dense_ref is not None:
                out.append(dense_ref.hash)
        return out

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def shard(self, index: int) -> FeatureTable:
        """Materialize one shard as a row-aligned :class:`FeatureTable`."""
        rows_ref, dense_ref = self.shard_refs(index)
        rows_doc = self.reader.read_json(rows_ref)
        dense = (
            self.reader.read_bytes(dense_ref) if dense_ref is not None else None
        )
        return decode_table_shard(self.schema, rows_doc, dense)

    def iter_shards(self) -> Iterator[FeatureTable]:
        for index in range(self.n_shards):
            yield self.shard(index)

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Stream every row holding one shard in memory at a time."""
        for shard in self.iter_shards():
            yield from shard.iter_rows()

    def mmap_shard_dense(self, index: int) -> DenseView | None:
        """Memory-map one shard's dense columns off the store file.

        Returns ``None`` for shards without a dense part.  The mapping
        bypasses hash verification (that is the point — no payload
        read); callers needing the guarantee check the ref first.
        """
        _rows_ref, dense_ref = self.shard_refs(index)
        if dense_ref is None:
            return None
        return mmap_dense(self.store.path_for(dense_ref))

    def to_table(self) -> FeatureTable:
        """Materialize the full table (O(corpus) memory — for callers
        that genuinely need everything, e.g. graph curation)."""
        columns: dict[str, list] = {name: [] for name in self.schema.names}
        point_ids: list[int] = []
        modalities: list = []
        labels: list[int] = []
        for shard in self.iter_shards():
            for name in self.schema.names:
                columns[name].extend(shard.column(name))
            point_ids.extend(shard.point_ids.tolist())
            modalities.extend(shard.modalities)
            if self.labeled:
                assert shard.labels is not None
                labels.extend(shard.labels.tolist())
        import numpy as np

        return FeatureTable(
            schema=self.schema,
            columns=columns,
            point_ids=point_ids,
            modalities=modalities,
            labels=np.asarray(labels, dtype=np.int64) if self.labeled else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedTable(n_rows={self.n_rows}, n_shards={self.n_shards}, "
            f"shard_size={self.shard_size}, labeled={self.labeled})"
        )


class ShardedTableWriter:
    """Incremental writer: add shards in order, then seal the manifest.

    ``add_shard`` persists one shard's artifacts immediately (so a
    killed run keeps its completed prefix — see
    :class:`~repro.shards.stages.ShardProgress`), and ``adopt`` re-links
    a shard another attempt already persisted.  ``finish`` validates the
    exact cover of ``[0, n_rows)`` and writes the manifest artifact.
    """

    def __init__(
        self,
        store: RunStore,
        schema: FeatureSchema,
        n_rows: int,
        shard_size: int,
        labeled: bool,
    ) -> None:
        self.store = store
        self.schema = schema
        self.n_rows = int(n_rows)
        self.shard_size = int(shard_size)
        self.labeled = labeled
        self.ranges = shard_ranges(self.n_rows, self.shard_size)
        self._schema_doc = [_spec_to_dict(s) for s in schema]
        self._entries: dict[int, dict] = {}

    def add_shard(self, index: int, table: FeatureTable) -> dict:
        """Persist shard ``index`` and return its manifest entry
        (``{"start", "stop", "rows": refdict, "dense": refdict|None}``)."""
        start, stop = self.ranges[index]
        if table.n_rows != stop - start:
            raise SchemaError(
                f"shard {index} holds {table.n_rows} rows; range "
                f"[{start}, {stop}) requires {stop - start}"
            )
        if [_spec_to_dict(s) for s in table.schema] != self._schema_doc:
            raise SchemaError(
                f"shard {index} schema does not match the sharded table's"
            )
        if (table.labels is not None) != self.labeled:
            raise SchemaError(
                f"shard {index} labeled={table.labels is not None} but the "
                f"sharded table declares labeled={self.labeled}"
            )
        rows_doc, dense = encode_table_shard(table)
        rows_ref = self.store.put_json(ROWS_KIND, rows_doc)
        dense_ref = (
            self.store.put_bytes(DENSE_KIND, dense) if dense is not None else None
        )
        entry = {
            "start": start,
            "stop": stop,
            "rows": rows_ref.to_dict(),
            "dense": None if dense_ref is None else dense_ref.to_dict(),
        }
        self._entries[index] = entry
        return entry

    def adopt(self, index: int, entry: dict) -> None:
        """Re-link a shard persisted by a previous attempt (resume)."""
        start, stop = self.ranges[index]
        if int(entry["start"]) != start or int(entry["stop"]) != stop:
            raise CheckpointError(
                f"cannot adopt shard {index}: recorded range "
                f"[{entry['start']}, {entry['stop']}) does not match "
                f"[{start}, {stop})"
            )
        self._entries[index] = dict(entry)

    def completed(self) -> list[int]:
        return sorted(self._entries)

    def finish(self) -> ShardedTable:
        missing = [i for i in range(len(self.ranges)) if i not in self._entries]
        if missing:
            raise CheckpointError(
                f"sharded table incomplete: shards {missing} of "
                f"{len(self.ranges)} were never written"
            )
        manifest = {
            "format_version": _MANIFEST_FORMAT_VERSION,
            "kind": "feature_table",
            "n_rows": self.n_rows,
            "shard_size": self.shard_size,
            "labeled": self.labeled,
            "schema": self._schema_doc,
            "shards": [self._entries[i] for i in range(len(self.ranges))],
        }
        ref = self.store.put_json(MANIFEST_KIND, manifest)
        return ShardedTable(self.store, manifest, manifest_ref=ref)

    @classmethod
    def write_table(
        cls, store: RunStore, table: FeatureTable, shard_size: int
    ) -> ShardedTable:
        """Shard an in-memory table (tests and small conversions)."""
        writer = cls(
            store,
            table.schema,
            table.n_rows,
            shard_size,
            labeled=table.labels is not None,
        )
        for index, (start, stop) in enumerate(writer.ranges):
            writer.add_shard(index, table.select_rows(range(start, stop)))
        return writer.finish()
