"""Out-of-core sharded data plane (DESIGN.md §16).

Corpora, feature tables, and label matrices become sequences of
content-hashed *shard artifacts* in a :class:`~repro.runs.store.RunStore`
plus one small JSON manifest listing shard refs and row ranges.  The
manifest hash therefore chains over every shard hash, so checkpoint
fingerprints built on it (the PR 4 Merkle machinery) pin the exact
sharded bytes.

Dense numeric/embedding columns travel in a binary container
(:mod:`repro.shards.codec`) that memory-maps straight off the store
file; everything else rides in a JSON rows part.  Streaming accessors
(``iter_shards`` / ``iter_rows``) hold one shard at a time, which is
what makes peak RSS O(shard) instead of O(corpus) in the sharded stage
drivers (:mod:`repro.shards.stages`).

Equivalence contract: a stage run sharded must produce byte-identical
results to the unsharded run — across shard sizes and executor
backends.  ``tests/test_shard_equivalence.py`` is the differential
harness enforcing it, crash-resume at shard boundaries included.
"""

from repro.shards.codec import (
    decode_dense,
    decode_table_shard,
    encode_dense,
    encode_table_shard,
    mmap_dense,
)
from repro.shards.corpus import ShardedCorpus, build_sharded_corpus
from repro.shards.layout import shard_of_row, shard_ranges
from repro.shards.stages import (
    ShardProgress,
    ShardedVotesResult,
    apply_lfs_sharded,
    featurize_corpus_sharded,
    run_mapreduce_sharded,
)
from repro.shards.table import ShardedTable, ShardedTableWriter

__all__ = [
    "ShardProgress",
    "ShardedCorpus",
    "ShardedTable",
    "ShardedTableWriter",
    "ShardedVotesResult",
    "apply_lfs_sharded",
    "build_sharded_corpus",
    "decode_dense",
    "decode_table_shard",
    "encode_dense",
    "encode_table_shard",
    "featurize_corpus_sharded",
    "mmap_dense",
    "run_mapreduce_sharded",
    "shard_of_row",
    "shard_ranges",
]
