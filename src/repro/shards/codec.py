"""Shard payload codec: JSON rows part + binary dense container.

Each table shard persists as up to two artifacts:

* a **rows part** (JSON, kind ``table_shard``): point ids, modalities,
  labels, categorical columns, and any embedding column whose present
  rows are ragged (mixed dimensions) — encoded exactly like
  :mod:`repro.features.io` so canonical forms round-trip;
* a **dense part** (binary, kind ``table_shard.npy``): numeric and
  uniform-dimension embedding columns packed as little-endian float64
  C-order arrays with an explicit uint8 presence mask per column.

Missing cells are presence ``0`` with a zero value — *never* a NaN
sentinel, because NaN is a legal feature value and must round-trip
bit-exactly (the regression tests in ``tests/test_io.py`` lock this).

The dense container is deterministic byte-for-byte given the shard's
content: a fixed magic, a canonical-JSON header, then the arrays at
recorded offsets.  That determinism is what lets shard artifacts join
the content-hash repair oracle (``scrub --repair``) and the
differential shard-equivalence harness.  :func:`mmap_dense` memory-maps
the arrays straight off a store file without reading the payload into
RSS.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.atomicio import canonical_json
from repro.core.exceptions import IntegrityError
from repro.datagen.entities import Modality
from repro.features.io import _decode_value, _encode_value
from repro.features.schema import FeatureKind, FeatureSchema
from repro.features.table import MISSING, FeatureTable

__all__ = [
    "DenseView",
    "decode_dense",
    "decode_table_shard",
    "encode_dense",
    "encode_table_shard",
    "mmap_dense",
]

#: container magic + version byte; bump the byte on incompatible change
_MAGIC = b"RSHD\x01\n"
_SHARD_FORMAT_VERSION = 1
#: on-disk array dtypes, endian-pinned so shard hashes are portable
_VALUE_DTYPE = np.dtype("<f8")
_PRESENCE_DTYPE = np.dtype("<u1")


def _embedding_dim(values: list) -> int | None:
    """Uniform dimension of the present embeddings, or ``None`` if the
    column is ragged (and must fall back to the JSON rows part)."""
    dim: int | None = None
    for value in values:
        if value is MISSING:
            continue
        arr = np.asarray(value, dtype=float)
        if arr.ndim != 1:
            return None
        if dim is None:
            dim = int(arr.shape[0])
        elif dim != int(arr.shape[0]):
            return None
    return 0 if dim is None else dim


def dense_layout(schema: FeatureSchema, columns: dict[str, list]) -> list[str]:
    """Names of the columns the dense container will carry, in schema
    order — numeric columns always, embedding columns when uniform."""
    names = []
    for spec in schema:
        if spec.kind is FeatureKind.NUMERIC:
            names.append(spec.name)
        elif spec.kind is FeatureKind.EMBEDDING:
            if _embedding_dim(columns[spec.name]) is not None:
                names.append(spec.name)
    return names


@dataclass(frozen=True)
class DenseView:
    """Decoded (or memory-mapped) dense columns of one shard."""

    n_rows: int
    #: column name -> (n,) or (n, d) float64 value array
    values: dict[str, np.ndarray]
    #: column name -> (n,) uint8 presence mask (1 = value present)
    presence: dict[str, np.ndarray]


def encode_dense(
    n_rows: int, schema: FeatureSchema, columns: dict[str, list]
) -> bytes | None:
    """Pack the dense-eligible columns into the binary container.

    Returns ``None`` when no column is dense-eligible (the shard then
    has no dense artifact at all, deterministically).
    """
    names = dense_layout(schema, columns)
    if not names:
        return None
    header_cols = []
    blobs: list[bytes] = []
    offset = 0
    for name in names:
        spec = schema[name]
        col = columns[name]
        presence = np.fromiter(
            (0 if v is MISSING else 1 for v in col),
            dtype=_PRESENCE_DTYPE,
            count=n_rows,
        )
        if spec.kind is FeatureKind.NUMERIC:
            arr = np.zeros(n_rows, dtype=_VALUE_DTYPE)
            for i, v in enumerate(col):
                if v is not MISSING:
                    arr[i] = float(v)  # type: ignore[arg-type]
        else:
            dim = _embedding_dim(col)
            assert dim is not None  # dense_layout already filtered
            arr = np.zeros((n_rows, dim), dtype=_VALUE_DTYPE)
            for i, v in enumerate(col):
                if v is not MISSING:
                    arr[i] = np.asarray(v, dtype=float)
        data = np.ascontiguousarray(arr).tobytes()
        pres = presence.tobytes()
        header_cols.append(
            {
                "name": name,
                "kind": spec.kind.value,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": len(data),
                "presence_offset": offset + len(data),
                "presence_nbytes": len(pres),
            }
        )
        blobs.append(data)
        blobs.append(pres)
        offset += len(data) + len(pres)
    header = canonical_json(
        {
            "format_version": _SHARD_FORMAT_VERSION,
            "n_rows": n_rows,
            "columns": header_cols,
        }
    ).encode("utf-8")
    return b"".join(
        [_MAGIC, len(header).to_bytes(8, "little"), header, *blobs]
    )


def _parse_header(data: bytes, origin: str) -> tuple[dict, int]:
    """(header dict, payload base offset) of a dense container."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise IntegrityError(
            f"dense shard container {origin} lacks the RSHD magic; "
            f"the artifact kind does not match its content"
        )
    pos = len(_MAGIC)
    header_len = int.from_bytes(data[pos : pos + 8], "little")
    pos += 8
    try:
        header = json.loads(data[pos : pos + header_len].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise IntegrityError(
            f"dense shard container {origin} has an unreadable header: {exc}"
        ) from exc
    if header.get("format_version") != _SHARD_FORMAT_VERSION:
        raise IntegrityError(
            f"dense shard container {origin} has format version "
            f"{header.get('format_version')!r}; this build reads "
            f"{_SHARD_FORMAT_VERSION}"
        )
    return header, pos + header_len


def decode_dense(data: bytes) -> DenseView:
    """Decode a dense container from verified bytes (zero-copy views)."""
    header, base = _parse_header(data, "(in-memory)")
    values: dict[str, np.ndarray] = {}
    presence: dict[str, np.ndarray] = {}
    for col in header["columns"]:
        shape = tuple(col["shape"])
        arr = np.frombuffer(
            data, dtype=_VALUE_DTYPE, count=int(np.prod(shape, dtype=np.int64)),
            offset=base + col["offset"],
        ).reshape(shape)
        pres = np.frombuffer(
            data, dtype=_PRESENCE_DTYPE, count=col["presence_nbytes"],
            offset=base + col["presence_offset"],
        )
        values[col["name"]] = arr
        presence[col["name"]] = pres
    return DenseView(n_rows=header["n_rows"], values=values, presence=presence)


def mmap_dense(path: str | Path) -> DenseView:
    """Memory-map a dense container's arrays directly off ``path``.

    The arrays are read-only :class:`numpy.memmap` views: touching a
    row pages in only that row, so scans over huge shards never
    materialize the payload.  Callers wanting integrity guarantees
    should :meth:`~repro.runs.store.RunStore.check` the artifact first —
    mapping skips the content-hash read path by design.
    """
    path = Path(path)
    with path.open("rb") as handle:
        prefix = handle.read(len(_MAGIC) + 8)
        header_len = int.from_bytes(prefix[len(_MAGIC) :], "little")
        header_bytes = handle.read(header_len)
    header, base = _parse_header(
        prefix + header_bytes, str(path)
    )
    values: dict[str, np.ndarray] = {}
    presence: dict[str, np.ndarray] = {}
    for col in header["columns"]:
        shape = tuple(col["shape"])
        if int(np.prod(shape, dtype=np.int64)) == 0:
            # zero-size mappings are invalid; an all-missing embedding
            # column has no bytes to map anyway
            values[col["name"]] = np.zeros(shape, dtype=_VALUE_DTYPE)
        else:
            values[col["name"]] = np.memmap(
                path, dtype=_VALUE_DTYPE, mode="r",
                offset=base + col["offset"], shape=shape,
            )
        presence[col["name"]] = np.memmap(
            path, dtype=_PRESENCE_DTYPE, mode="r",
            offset=base + col["presence_offset"],
            shape=(col["presence_nbytes"],),
        )
    return DenseView(n_rows=header["n_rows"], values=values, presence=presence)


def encode_table_shard(table: FeatureTable) -> tuple[dict, bytes | None]:
    """Split one shard-sized :class:`FeatureTable` into its two parts.

    Returns ``(rows_doc, dense_bytes)``; ``dense_bytes`` is ``None``
    when the schema has no dense-eligible column in this shard.
    """
    columns = {spec.name: table.column(spec.name) for spec in table.schema}
    dense_names = dense_layout(table.schema, columns)
    dense = encode_dense(table.n_rows, table.schema, columns)
    rows_doc = {
        "format_version": _SHARD_FORMAT_VERSION,
        "point_ids": table.point_ids.tolist(),
        "modalities": [m.value for m in table.modalities],
        "labels": None if table.labels is None else table.labels.tolist(),
        "dense": dense_names,
        "columns": {
            spec.name: [
                _encode_value(spec.kind, v) for v in columns[spec.name]
            ]
            for spec in table.schema
            if spec.name not in dense_names
        },
    }
    return rows_doc, dense


def decode_table_shard(
    schema: FeatureSchema, rows_doc: dict, dense: bytes | None
) -> FeatureTable:
    """Inverse of :func:`encode_table_shard` (canonical value forms)."""
    version = rows_doc.get("format_version")
    if version != _SHARD_FORMAT_VERSION:
        raise IntegrityError(
            f"table shard has format version {version!r}; this build "
            f"reads {_SHARD_FORMAT_VERSION}"
        )
    dense_names = list(rows_doc["dense"])
    view = decode_dense(dense) if dense is not None else None
    if dense_names and view is None:
        raise IntegrityError(
            "table shard names dense columns but carries no dense payload"
        )
    columns: dict[str, list] = {}
    for spec in schema:
        if spec.name in dense_names:
            assert view is not None
            arr = view.values[spec.name]
            pres = view.presence[spec.name]
            if spec.kind is FeatureKind.NUMERIC:
                columns[spec.name] = [
                    float(arr[i]) if pres[i] else MISSING
                    for i in range(view.n_rows)
                ]
            else:
                # copy: the decoded table must not alias the (possibly
                # read-only, possibly memory-mapped) container buffer
                columns[spec.name] = [
                    np.array(arr[i], dtype=float) if pres[i] else MISSING
                    for i in range(view.n_rows)
                ]
        else:
            columns[spec.name] = [
                _decode_value(spec.kind, v)
                for v in rows_doc["columns"][spec.name]
            ]
    labels = rows_doc["labels"]
    return FeatureTable(
        schema=schema,
        columns=columns,
        point_ids=rows_doc["point_ids"],
        modalities=[Modality(m) for m in rows_doc["modalities"]],
        labels=None if labels is None else np.asarray(labels, dtype=np.int64),
    )
