"""Shard boundary math.

One function owns how ``n_rows`` rows split into contiguous shards, and
everything sharded — table writers, corpus builders, the kNN graph
block grid — delegates here, so the partition invariants (exact cover
of ``[0, n)``, no overlap, no gap, stable under executor choice) are
proven once by the property suite in ``tests/test_shards.py``.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError

__all__ = ["shard_ranges", "shard_of_row"]


def shard_ranges(n_rows: int, shard_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` half-open ranges covering ``[0, n_rows)``.

    Every shard except possibly the last holds exactly ``shard_size``
    rows; the last holds the remainder.  ``n_rows == 0`` yields no
    shards, and ``shard_size > n_rows`` yields a single shard — an
    oversized shard cap never pads or truncates.
    """
    if n_rows < 0:
        raise ConfigurationError(f"n_rows must be >= 0, got {n_rows}")
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, n_rows))
        for start in range(0, n_rows, shard_size)
    ]


def shard_of_row(row: int, n_rows: int, shard_size: int) -> int:
    """Index of the shard containing global ``row``."""
    if not 0 <= row < n_rows:
        raise ConfigurationError(
            f"row {row} outside [0, {n_rows})"
        )
    if shard_size < 1:
        raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
    return row // shard_size
