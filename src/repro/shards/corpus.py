"""Sharded corpora: pickled point shards behind a JSON manifest.

The corpus side of the sharded data plane: raw :class:`DataPoint`
shards (pickle, like MapReduce partition payloads) plus a manifest of
row ranges and refs.  ``build_sharded_corpus`` consumes a *streaming*
iterator, so a 10⁶-point world can be generated and persisted without
ever holding more than one shard of points — the shardscale experiment
generates worlds exactly this way.
"""

from __future__ import annotations

import pickle
from collections.abc import Iterable, Iterator
from typing import Any

from repro.core.exceptions import CheckpointError, IntegrityError
from repro.datagen.corpus import Corpus
from repro.datagen.entities import DataPoint
from repro.runs.store import ArtifactRef, RunStore
from repro.shards.layout import shard_ranges

__all__ = [
    "CORPUS_MANIFEST_KIND",
    "CORPUS_SHARD_KIND",
    "ShardedCorpus",
    "build_sharded_corpus",
]

CORPUS_MANIFEST_KIND = "corpus_manifest"
CORPUS_SHARD_KIND = "corpus_shard.pkl"
_MANIFEST_FORMAT_VERSION = 1


class ShardedCorpus:
    """Read handle over a sharded corpus in a :class:`RunStore`."""

    def __init__(
        self,
        store: RunStore,
        manifest: dict,
        manifest_ref: ArtifactRef | None = None,
        reader: Any | None = None,
    ) -> None:
        version = manifest.get("format_version")
        if version != _MANIFEST_FORMAT_VERSION:
            raise CheckpointError(
                f"corpus manifest has format version {version!r}; this "
                f"build reads {_MANIFEST_FORMAT_VERSION}"
            )
        self.store = store
        self.manifest = manifest
        self.manifest_ref = manifest_ref
        self.reader = reader
        self.name = str(manifest["name"])
        self.n_points = int(manifest["n_points"])
        self.shard_size = int(manifest["shard_size"])
        self._shards = list(manifest["shards"])

    def __len__(self) -> int:
        return self.n_points

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def ranges(self) -> list[tuple[int, int]]:
        return [(int(s["start"]), int(s["stop"])) for s in self._shards]

    def _read_bytes(self, ref: ArtifactRef) -> bytes:
        if self.reader is not None:
            return self.reader.read_bytes(ref)
        return self.store.get_bytes(ref)

    def shard_points(self, index: int) -> list[DataPoint]:
        """Load one shard's points (verified via the store)."""
        entry = self._shards[index]
        ref = ArtifactRef.from_dict(entry["ref"])
        data = self._read_bytes(ref)
        try:
            points = pickle.loads(data)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure is corruption
            raise IntegrityError(
                f"corpus shard {index} of {self.name!r} could not be "
                f"unpickled ({exc}); its content hash verified, so the "
                f"artifact was written by an incompatible build"
            ) from exc
        expected = int(entry["stop"]) - int(entry["start"])
        if len(points) != expected:
            raise IntegrityError(
                f"corpus shard {index} of {self.name!r} holds "
                f"{len(points)} points; manifest records {expected}"
            )
        return points

    def iter_shards(self) -> Iterator[Corpus]:
        """Stream shard-sized corpora, one resident at a time."""
        for index, (start, stop) in enumerate(self.ranges):
            yield Corpus(
                points=self.shard_points(index),
                name=f"{self.name}[{start}:{stop}]",
            )

    def rows(self, start: int, stop: int) -> list[DataPoint]:
        """Points of the global row range ``[start, stop)``, loading
        only the shards that overlap it."""
        if not 0 <= start <= stop <= self.n_points:
            raise CheckpointError(
                f"row range [{start}, {stop}) outside [0, {self.n_points})"
            )
        out: list[DataPoint] = []
        for index, (a, b) in enumerate(self.ranges):
            if b <= start:
                continue
            if a >= stop:
                break
            points = self.shard_points(index)
            out.extend(points[max(start - a, 0) : min(stop, b) - a])
        return out

    def to_corpus(self) -> Corpus:
        """Materialize the full corpus (O(corpus) memory)."""
        points: list[DataPoint] = []
        for index in range(self.n_shards):
            points.extend(self.shard_points(index))
        return Corpus(points=points, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCorpus(name={self.name!r}, n_points={self.n_points}, "
            f"n_shards={self.n_shards})"
        )


def build_sharded_corpus(
    store: RunStore,
    points: Iterable[DataPoint],
    n_points: int,
    shard_size: int,
    name: str,
) -> ShardedCorpus:
    """Persist a streaming point iterator as a sharded corpus.

    Only one shard of points is resident at a time.  The iterator must
    yield exactly ``n_points`` points — a mismatch is a hard error, not
    a silently short corpus.
    """
    ranges = shard_ranges(n_points, shard_size)
    entries: list[dict] = []
    buffer: list[DataPoint] = []
    iterator = iter(points)
    seen = 0
    for start, stop in ranges:
        buffer.clear()
        for _ in range(stop - start):
            try:
                buffer.append(next(iterator))
            except StopIteration:
                raise CheckpointError(
                    f"corpus stream for {name!r} ended after {seen} of "
                    f"{n_points} points"
                ) from None
            seen += 1
        ref = store.put_bytes(
            CORPUS_SHARD_KIND,
            pickle.dumps(list(buffer), protocol=pickle.HIGHEST_PROTOCOL),
        )
        entries.append({"start": start, "stop": stop, "ref": ref.to_dict()})
    if next(iterator, None) is not None:
        raise CheckpointError(
            f"corpus stream for {name!r} yielded more than the declared "
            f"{n_points} points"
        )
    manifest = {
        "format_version": _MANIFEST_FORMAT_VERSION,
        "kind": "corpus",
        "name": name,
        "n_points": n_points,
        "shard_size": int(shard_size),
        "shards": entries,
    }
    ref = store.put_json(CORPUS_MANIFEST_KIND, manifest)
    return ShardedCorpus(store, manifest, manifest_ref=ref)
