"""Deterministic fault injection for simulated resource services.

The paper's pipeline calls organizational resources as remote services,
where partial failure is the norm.  This module turns any in-process
:class:`~repro.resources.base.OrganizationalResource` into a simulated
RPC :class:`ServiceClient` whose failure behaviour is described by a
:class:`FaultSpec` and scheduled deterministically: every
(service, point, attempt) triple derives its own RNG stream via
:func:`repro.core.rng.spawn`, so a fault schedule is reproducible
bit-for-bit given a seed — independent of thread scheduling and of which
other services run.

Failure modes:

* **transient** — raises :class:`TransientServiceError` (flaky network,
  stragglers); a retry of the same call may succeed.
* **timeout** — a lognormal latency sample exceeds the call budget and
  raises :class:`ServiceTimeoutError` (also transient).
* **rate limit** — raises :class:`RateLimitError` (quota shed).
* **crash-on-point** — specific point ids always raise
  :class:`ServiceUnavailableError` (a poisoned record that reliably
  kills the serving job; not retryable).
* **degraded output** — the call "succeeds" but returns corrupted data
  (partial categorical sets, zeroed numerics, masked embedding dims).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    RateLimitError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    TransientServiceError,
)
from repro.core.rng import spawn
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureKind
from repro.resources.base import OrganizationalResource

__all__ = ["FaultSpec", "FaultInjector", "ServiceClient"]


@dataclass(frozen=True)
class FaultSpec:
    """Failure-mode configuration for one simulated service.

    Rates are per-call probabilities checked independently (transient
    first, then rate limit, then latency).  ``mean_latency`` and
    ``latency_sigma`` parameterize a lognormal per-call latency in
    milliseconds; a call times out when its sample exceeds
    ``timeout_budget``.
    """

    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0
    mean_latency: float = 0.0
    latency_sigma: float = 0.5
    timeout_budget: float = float("inf")
    degraded_rate: float = 0.0
    crash_points: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for name in ("transient_rate", "rate_limit_rate", "degraded_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")

    @property
    def faultless(self) -> bool:
        return (
            self.transient_rate == 0.0
            and self.rate_limit_rate == 0.0
            and self.degraded_rate == 0.0
            and not self.crash_points
            and (self.mean_latency == 0.0 or self.timeout_budget == float("inf"))
        )


class ServiceClient(OrganizationalResource):
    """An :class:`OrganizationalResource` behind a simulated flaky RPC.

    Wraps ``inner`` and re-raises scheduled faults from ``spec``.  The
    per-point attempt counter makes retries see *fresh* fault draws (the
    second attempt of a call is a different RPC), while keeping the
    schedule deterministic: attempt ``k`` of (service, point) always
    sees the same draw regardless of thread count or call interleaving.
    """

    def __init__(self, inner: OrganizationalResource, fault_spec: FaultSpec, seed: int = 0):
        super().__init__(inner.spec)
        self.inner = inner
        self.fault_spec = fault_spec
        self.seed = seed
        self.calls = 0
        self.faults_raised = 0
        self._attempts: dict[int, int] = defaultdict(int)
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if k != "_lock"}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Clear attempt counters so a rerun replays the same schedule."""
        with self._lock:
            self._attempts.clear()
            self.calls = 0
            self.faults_raised = 0

    def _next_attempt(self, point_id: int) -> int:
        with self._lock:
            self.calls += 1
            attempt = self._attempts[point_id]
            self._attempts[point_id] = attempt + 1
            return attempt

    def _compute(self, point: DataPoint, rng: np.random.Generator) -> object:
        # apply() in the base class handles modality/spec validation;
        # fault checks happen here so every dialed call sees them.
        spec = self.fault_spec
        attempt = self._next_attempt(point.point_id)
        if spec.faultless:
            return self.inner._compute(point, rng)
        if point.point_id in spec.crash_points:
            with self._lock:
                self.faults_raised += 1
            raise ServiceUnavailableError(
                f"service {self.name!r} crashes on point {point.point_id}"
            )
        fault_rng = spawn(self.seed, f"fault/{self.name}/{point.point_id}/{attempt}")
        if fault_rng.random() < spec.transient_rate:
            with self._lock:
                self.faults_raised += 1
            raise TransientServiceError(
                f"service {self.name!r} transient failure "
                f"(point {point.point_id}, attempt {attempt})"
            )
        if fault_rng.random() < spec.rate_limit_rate:
            with self._lock:
                self.faults_raised += 1
            raise RateLimitError(
                f"service {self.name!r} rate-limited "
                f"(point {point.point_id}, attempt {attempt})"
            )
        if spec.mean_latency > 0.0 and spec.timeout_budget != float("inf"):
            latency = spec.mean_latency * float(
                np.exp(spec.latency_sigma * fault_rng.standard_normal())
            )
            if latency > spec.timeout_budget:
                with self._lock:
                    self.faults_raised += 1
                raise ServiceTimeoutError(
                    f"service {self.name!r} latency {latency:.1f}ms exceeded "
                    f"budget {spec.timeout_budget:.1f}ms (point {point.point_id})"
                )
        value = self.inner._compute(point, rng)
        if value is not None and fault_rng.random() < spec.degraded_rate:
            value = self._degrade(value, fault_rng)
        return value

    def _degrade(self, value: object, fault_rng: np.random.Generator) -> object:
        """Corrupt a successful response (partial/low-fidelity output)."""
        kind = self.spec.kind
        if kind is FeatureKind.CATEGORICAL:
            # a degraded backend returns a partial result set
            kept = [v for v in sorted(value) if fault_rng.random() < 0.5]  # type: ignore[arg-type]
            return frozenset(kept)
        if kind is FeatureKind.NUMERIC:
            # a degraded scorer falls back to a null score
            return 0.0
        arr = np.array(value, dtype=float, copy=True)
        mask = fault_rng.random(arr.shape[0]) < 0.5
        arr[mask] = 0.0
        return arr

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient({self.inner!r}, spec={self.fault_spec})"


class FaultInjector:
    """Factory wrapping resources in :class:`ServiceClient` instances.

    ``default`` applies to every service; ``overrides`` replaces the
    spec for named services (e.g. make one backend much flakier).  Each
    wrapped client derives its schedule from this injector's seed plus
    the service name, so two injectors with the same seed produce the
    identical fault schedule.
    """

    def __init__(
        self,
        default: FaultSpec,
        overrides: dict[str, FaultSpec] | None = None,
        seed: int = 0,
    ):
        self.default = default
        self.overrides = dict(overrides or {})
        self.seed = seed
        self._clients: list[ServiceClient] = []

    def spec_for(self, name: str) -> FaultSpec:
        return self.overrides.get(name, self.default)

    def wrap(self, resource: OrganizationalResource) -> ServiceClient:
        client = ServiceClient(resource, self.spec_for(resource.name), seed=self.seed)
        self._clients.append(client)
        return client

    def wrap_all(
        self, resources: list[OrganizationalResource]
    ) -> list[ServiceClient]:
        return [self.wrap(r) for r in resources]

    def reset(self) -> None:
        """Reset every wrapped client's attempt counters."""
        for client in self._clients:
            client.reset()

    @property
    def total_faults(self) -> int:
        return sum(c.faults_raised for c in self._clients)
