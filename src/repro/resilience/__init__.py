"""Resilient service layer: fault injection, retry, breakers, fallback.

The paper runs feature generation against dozens of organizational
resources exposed as remote services, where partial failure is routine.
This subpackage simulates that reality and defends against it:

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection wrapping any resource in a flaky :class:`ServiceClient`;
* :mod:`repro.resilience.retry` — exponential backoff with
  deterministic jitter (simulated delays, no wall-clock sleeps);
* :mod:`repro.resilience.circuit` — per-service circuit breakers with
  closed/open/half-open states on a logical clock;
* :mod:`repro.resilience.fallback` — stale-cache -> substitute-service
  -> MISSING degradation chain;
* :mod:`repro.resilience.policy` — the composable
  :class:`ResiliencePolicy` tying it together, with per-service
  :class:`ServiceHealth` stats and per-cell degradation events.

``featurize_corpus(..., policy=...)`` threads a policy through the
featurization MapReduce so a failed (point, resource) pair degrades to
a missing cell instead of aborting the run, and the returned table
carries a :class:`DegradationReport`.
"""

from repro.resilience.circuit import CircuitBreaker, CircuitConfig, CircuitState
from repro.resilience.deadline import Deadline
from repro.resilience.fallback import (
    FallbackChain,
    StaleValueCache,
    build_substitute_map,
)
from repro.resilience.faults import FaultInjector, FaultSpec, ServiceClient
from repro.resilience.policy import (
    DegradationEvent,
    DegradationReport,
    HealthReport,
    ResiliencePolicy,
    ServiceHealth,
)
from repro.resilience.retry import RetryConfig, backoff_delay, retry_call

__all__ = [
    "CircuitBreaker",
    "CircuitConfig",
    "CircuitState",
    "Deadline",
    "DegradationEvent",
    "DegradationReport",
    "FallbackChain",
    "FaultInjector",
    "FaultSpec",
    "HealthReport",
    "ResiliencePolicy",
    "RetryConfig",
    "ServiceClient",
    "ServiceHealth",
    "StaleValueCache",
    "backoff_delay",
    "build_substitute_map",
    "retry_call",
]
