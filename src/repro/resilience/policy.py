"""Composable resilience policy and per-service health accounting.

:class:`ResiliencePolicy` is the single entry point the featurization
layer talks to: it wraps one (resource, point) call with retry +
exponential backoff (deterministic jitter), an optional per-service
circuit breaker, and a fallback chain, while recording per-service
:class:`ServiceHealth` stats and emitting a :class:`DegradationEvent`
for every call that needed more than one clean dial.

Determinism: backoff jitter draws from a stream derived per
(service, point), and fault schedules live in the wrapped
:class:`~repro.resilience.faults.ServiceClient`, so a retry+fallback
policy produces bit-identical results for any thread count.  The
circuit breaker is the one knowingly order-dependent component (its
state is shared across points) and is therefore off by default.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import (
    DeadlineExceeded,
    ServiceUnavailableError,
    TransientServiceError,
)
from repro.core.rng import spawn
from repro.datagen.entities import DataPoint
from repro.features.table import MISSING
from repro.resilience.circuit import CircuitBreaker, CircuitConfig
from repro.resilience.deadline import Deadline
from repro.resilience.fallback import FallbackChain
from repro.resilience.retry import RetryConfig, backoff_delay
from repro.resources.base import OrganizationalResource

__all__ = [
    "ServiceHealth",
    "HealthReport",
    "DegradationEvent",
    "DegradationReport",
    "ResiliencePolicy",
]


@dataclass
class ServiceHealth:
    """Counters for one service under a policy."""

    service: str
    attempts: int = 0
    successes: int = 0
    failures: int = 0
    retries: int = 0
    trips: int = 0
    short_circuits: int = 0
    fallbacks: int = 0
    deadline_exceeded: int = 0
    simulated_delay: float = 0.0

    @property
    def failure_rate(self) -> float:
        return self.failures / self.attempts if self.attempts else 0.0


@dataclass
class HealthReport:
    """Snapshot of every service's health under one policy."""

    services: dict[str, ServiceHealth]

    @property
    def total_attempts(self) -> int:
        return sum(h.attempts for h in self.services.values())

    @property
    def total_retries(self) -> int:
        return sum(h.retries for h in self.services.values())

    @property
    def total_fallbacks(self) -> int:
        return sum(h.fallbacks for h in self.services.values())

    @property
    def total_trips(self) -> int:
        return sum(h.trips for h in self.services.values())

    @property
    def total_short_circuits(self) -> int:
        return sum(h.short_circuits for h in self.services.values())

    @property
    def total_deadline_exceeded(self) -> int:
        return sum(h.deadline_exceeded for h in self.services.values())

    def render(self) -> str:
        header = (
            f"{'service':<22} {'attempts':>8} {'fail':>6} {'retry':>6} "
            f"{'trips':>6} {'short':>6} {'fallbk':>6} {'delay(s)':>9}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.services):
            h = self.services[name]
            lines.append(
                f"{name:<22} {h.attempts:>8} {h.failures:>6} {h.retries:>6} "
                f"{h.trips:>6} {h.short_circuits:>6} {h.fallbacks:>6} "
                f"{h.simulated_delay:>9.2f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class DegradationEvent:
    """One (point, service) call that did not succeed on a clean first
    dial.  ``outcome`` is ``recovered`` (a retry eventually succeeded),
    ``stale_cache``, ``substitute:<name>``, or ``missing``."""

    point_id: int
    service: str
    outcome: str
    retries: int = 0
    error: str | None = None

    @property
    def degraded(self) -> bool:
        """Whether the cell's value is not the primary fresh response."""
        return self.outcome != "recovered"


@dataclass
class DegradationReport:
    """Degradation summary a resilient featurization run hands back.

    ``counters`` carries policy-lifetime control-plane totals sampled
    when the report was built (``breaker_trips``, ``short_circuits``,
    ``deadline_exceeded``; orchestrated runs add ``shed_items`` and
    ``dedup_hits``) so degraded *values* and the control decisions that
    caused them travel together.
    """

    events: list[DegradationEvent] = field(default_factory=list)
    n_cells: int = 0
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def n_recovered(self) -> int:
        return sum(1 for e in self.events if e.outcome == "recovered")

    @property
    def n_degraded(self) -> int:
        return sum(1 for e in self.events if e.degraded)

    @property
    def n_missing(self) -> int:
        return sum(1 for e in self.events if e.outcome == "missing")

    @property
    def total_retries(self) -> int:
        return sum(e.retries for e in self.events)

    @property
    def n_fallbacks(self) -> int:
        return self.n_degraded

    @property
    def degraded_fraction(self) -> float:
        return self.n_degraded / self.n_cells if self.n_cells else 0.0

    @property
    def ok(self) -> bool:
        return self.n_degraded == 0

    def by_service(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            if event.degraded:
                out[event.service] = out.get(event.service, 0) + 1
        return out

    def by_outcome(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for event in self.events:
            out[event.outcome] = out.get(event.outcome, 0) + 1
        return out

    def render(self) -> str:
        lines = [
            f"degradation: {self.n_degraded}/{self.n_cells} cells degraded "
            f"({self.degraded_fraction:.1%}), {self.n_recovered} recovered "
            f"via {self.total_retries} retries"
        ]
        for outcome, count in sorted(self.by_outcome().items()):
            lines.append(f"  {outcome:<20} {count}")
        if self.counters:
            lines.append(
                "  counters: "
                + ", ".join(
                    f"{k}={v}" for k, v in sorted(self.counters.items())
                )
            )
        return "\n".join(lines)


class ResiliencePolicy:
    """Retry + circuit breaker + fallback around resource service calls.

    Parameters
    ----------
    retry:
        Backoff policy (defaults to 3 attempts).
    circuit:
        Breaker config, or ``None`` (default) for no breaker — see the
        module docstring for the determinism trade-off.
    fallback:
        Chain consulted when attempts are exhausted; ``None`` degrades
        straight to :data:`MISSING`.
    seed:
        Seeds the backoff-jitter streams.
    governor:
        Optional shared :class:`~repro.scheduler.ServiceGovernor`.
        When set, every dial first passes through the governor's
        per-service token bucket and process-shared breaker — both act
        purely on *wall-clock pacing* (waits, never value changes), so
        governed results stay bit-identical to ungoverned ones.
    deadline_budget:
        Optional simulated-seconds budget per guarded call.  Backoff
        delays are charged against it; a backoff that no longer fits is
        capped and the call degrades via :class:`DeadlineExceeded`
        (counted in ``ServiceHealth.deadline_exceeded``).  Deterministic:
        simulated time only.
    """

    def __init__(
        self,
        retry: RetryConfig | None = None,
        circuit: CircuitConfig | None = None,
        fallback: FallbackChain | None = None,
        seed: int = 0,
        governor: "ServiceGovernorProtocol | None" = None,
        deadline_budget: float | None = None,
    ) -> None:
        self.retry = retry or RetryConfig()
        self.circuit = circuit
        self.fallback = fallback
        self.seed = seed
        self.governor = governor
        self.deadline_budget = deadline_budget
        self._breakers: dict[str, CircuitBreaker] = {}
        self._health: dict[str, ServiceHealth] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # snapshot under the lock so a concurrent call() can't mutate
        # (or resize) _health/_breakers mid-copy; shallow dict copies
        # keep the referenced breakers/health pickling via their own
        # lock-dropping __getstate__
        with self._lock:
            state = {k: v for k, v in self.__dict__.items() if k != "_lock"}
            state["_breakers"] = dict(state["_breakers"])
            state["_health"] = dict(state["_health"])
            return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # state accessors
    # ------------------------------------------------------------------
    def breaker(self, service: str) -> CircuitBreaker | None:
        if self.circuit is None:
            return None
        with self._lock:
            if service not in self._breakers:
                self._breakers[service] = CircuitBreaker(self.circuit, name=service)
            return self._breakers[service]

    def health(self, service: str) -> ServiceHealth:
        with self._lock:
            if service not in self._health:
                self._health[service] = ServiceHealth(service=service)
            return self._health[service]

    def health_report(self) -> HealthReport:
        with self._lock:
            services = {
                name: ServiceHealth(**vars(h)) for name, h in self._health.items()
            }
            # iterate _breakers inside the lock too: a concurrent call()
            # registering a new breaker would resize the dict mid-loop
            breakers = dict(self._breakers)
        for name, breaker in breakers.items():
            if name in services:
                services[name].trips = breaker.trips
        return HealthReport(services=services)

    def reset(self) -> None:
        """Drop all breaker state, health stats, and stale-cache state."""
        with self._lock:
            self._breakers.clear()
            self._health.clear()
        # outside the policy lock: the cache serializes on its own lock,
        # and holding both invites lock-order inversions with callers
        if self.fallback is not None and self.fallback.stale_cache is not None:
            self.fallback.stale_cache.clear()

    # ------------------------------------------------------------------
    # the guarded call
    # ------------------------------------------------------------------
    def call(
        self,
        resource: OrganizationalResource,
        point: DataPoint,
        rng_factory: Callable[[], np.random.Generator],
        seed: int = 0,
    ) -> tuple[object, DegradationEvent | None]:
        """Apply ``resource`` to ``point`` under this policy.

        ``rng_factory`` builds a *fresh* value-RNG per attempt, so a
        retried call that finally succeeds yields exactly the value a
        fault-free run would have produced.  ``seed`` is the
        featurization seed, forwarded to substitute-service fallbacks.
        Returns ``(value, event)``; ``event`` is ``None`` for a clean
        first-dial success.
        """
        name = resource.name
        health = self.health(name)
        breaker = self.breaker(name)
        if breaker is not None and not breaker.allow():
            with self._lock:
                health.short_circuits += 1
            return self._degrade(
                name, point, seed, health, retries=0, error="circuit open"
            )

        backoff_rng = spawn(self.seed, f"backoff/{name}/{point.point_id}")
        deadline = (
            Deadline(self.deadline_budget)
            if self.deadline_budget is not None
            else None
        )
        retries = 0
        delay = 0.0
        last_error: Exception | None = None
        for attempt in range(self.retry.max_attempts):
            if self.governor is not None:
                # wall-clock pacing only (token bucket + shared breaker
                # dial-rate); never changes the value path
                self.governor.acquire(name)
            with self._lock:
                health.attempts += 1
            try:
                value = resource.apply(point, rng_factory())
            except TransientServiceError as exc:
                last_error = exc
                with self._lock:
                    health.failures += 1
                if breaker is not None:
                    breaker.record_failure()
                if self.governor is not None:
                    self.governor.on_failure(name)
                if attempt + 1 < self.retry.max_attempts:
                    step = backoff_delay(self.retry, attempt + 1, backoff_rng)
                    if deadline is not None:
                        capped = deadline.cap(step)
                        deadline.consume(capped)
                        delay += capped
                        if capped < step:
                            # the full backoff no longer fits: pay the
                            # remainder, stop retrying, degrade
                            last_error = DeadlineExceeded(
                                f"deadline budget {deadline.budget}s "
                                f"exhausted after attempt {attempt + 1} "
                                f"for service {name!r} "
                                f"(point {point.point_id})"
                            )
                            last_error.__cause__ = exc
                            with self._lock:
                                health.deadline_exceeded += 1
                            break
                    else:
                        delay += step
                    retries += 1
                    with self._lock:
                        health.retries += 1
                continue
            except ServiceUnavailableError as exc:
                last_error = exc
                with self._lock:
                    health.failures += 1
                if breaker is not None:
                    breaker.record_failure()
                if self.governor is not None:
                    self.governor.on_failure(name)
                break
            else:
                with self._lock:
                    health.successes += 1
                    health.simulated_delay += delay
                if breaker is not None:
                    breaker.record_success()
                if self.governor is not None:
                    self.governor.on_success(name)
                if self.fallback is not None and self.fallback.stale_cache is not None:
                    self.fallback.stale_cache.put(name, point.point_id, value)
                event = None
                if retries:
                    event = DegradationEvent(
                        point_id=point.point_id,
                        service=name,
                        outcome="recovered",
                        retries=retries,
                    )
                return value, event

        with self._lock:
            health.simulated_delay += delay
        return self._degrade(
            name, point, seed, health, retries=retries, error=str(last_error)
        )

    def _degrade(
        self,
        service: str,
        point: DataPoint,
        seed: int,
        health: ServiceHealth,
        retries: int,
        error: str | None,
    ) -> tuple[object, DegradationEvent]:
        with self._lock:
            health.fallbacks += 1
        if self.fallback is not None:
            value, source = self.fallback.resolve(service, point, seed)
        else:
            value, source = MISSING, "missing"
        event = DegradationEvent(
            point_id=point.point_id,
            service=service,
            outcome=source,
            retries=retries,
            error=error,
        )
        return value, event
