"""Per-call deadline budgets on simulated time.

A :class:`Deadline` is the budget one guarded call may spend across its
retries.  Time here is *simulated*, consistent with the retry layer:
backoff delays are accumulated into the budget instead of slept, so
deadline enforcement is deterministic for a fixed fault schedule and
independent of wall-clock scheduling — a tenant gets bit-identical
deadline behaviour whether it runs solo or contended.

Usage: construct one ``Deadline`` per guarded call (they are cheap,
single-threaded objects), charge each simulated backoff delay via
:meth:`consume`, and cap a prospective sleep with :meth:`cap`.  The
retry layer raises :class:`~repro.core.exceptions.DeadlineExceeded`
when a capped sleep could not fit the full backoff.
"""

from __future__ import annotations

from repro.core.exceptions import ConfigurationError

__all__ = ["Deadline"]


class Deadline:
    """A simulated-time budget for one guarded service call.

    ``budget`` is in (simulated) seconds; ``float("inf")`` means
    unlimited.  Not thread-safe by design: one instance guards one
    call on one thread.
    """

    __slots__ = ("budget", "spent")

    def __init__(self, budget: float) -> None:
        if budget <= 0:
            raise ConfigurationError(
                f"deadline budget must be positive, got {budget}"
            )
        self.budget = float(budget)
        self.spent = 0.0

    @property
    def remaining(self) -> float:
        """Budget left, floored at zero."""
        return max(self.budget - self.spent, 0.0)

    @property
    def exceeded(self) -> bool:
        return self.spent >= self.budget

    def consume(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated time against the budget."""
        if seconds < 0:
            raise ConfigurationError("cannot consume negative time")
        self.spent += seconds

    def cap(self, delay: float) -> float:
        """The largest slice of ``delay`` that still fits the budget."""
        return min(delay, self.remaining)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(budget={self.budget}, spent={self.spent:.4f})"
