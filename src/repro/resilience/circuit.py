"""Per-service circuit breaker with closed / open / half-open states.

Standard semantics: ``failure_threshold`` consecutive failures trip the
breaker (closed -> open); while open, calls are short-circuited without
dialing the service; after ``recovery_ticks`` of simulated time the
breaker admits up to ``half_open_max_calls`` probe calls (open ->
half-open); ``success_threshold`` probe successes re-close it, any probe
failure re-opens it.

Time is a logical clock: every :meth:`allow` / :meth:`record_success` /
:meth:`record_failure` advances one tick.  This keeps breaker behaviour
fully deterministic for a fixed call sequence — no wall-clock — while
preserving the real state machine.  (Under multi-threaded featurization
the *call order* itself depends on scheduling, so enabling a breaker
there trades bit-level reproducibility for overload protection, exactly
as in production systems; the default policy ships with the breaker
disabled.)
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass

from repro.core.exceptions import CircuitOpenError, ConfigurationError

__all__ = ["CircuitState", "CircuitConfig", "CircuitBreaker"]


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class CircuitConfig:
    failure_threshold: int = 5
    recovery_ticks: int = 20
    half_open_max_calls: int = 1
    success_threshold: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.recovery_ticks < 1:
            raise ConfigurationError("recovery_ticks must be >= 1")
        if self.half_open_max_calls < 1:
            raise ConfigurationError("half_open_max_calls must be >= 1")
        if self.success_threshold < 1:
            raise ConfigurationError("success_threshold must be >= 1")


class CircuitBreaker:
    """Thread-safe breaker guarding one service."""

    def __init__(self, config: CircuitConfig | None = None, name: str = ""):
        self.config = config or CircuitConfig()
        self.name = name
        self._state = CircuitState.CLOSED
        self._clock = 0
        self._opened_at = 0
        self._consecutive_failures = 0
        self._half_open_in_flight = 0
        self._half_open_successes = 0
        self.trips = 0
        self.short_circuits = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # locks don't pickle; each process-pool worker gets its own.
        # Snapshot under the lock: a concurrent record_failure() mid-copy
        # must not yield a torn view (e.g. OPEN state with a stale
        # _opened_at), and dict iteration races with mutation.
        with self._lock:
            return {k: v for k, v in self.__dict__.items() if k != "_lock"}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def state(self) -> CircuitState:
        with self._lock:
            return self._state

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def allow(self) -> bool:
        """Whether the next call may dial the service.

        Advances the logical clock; a ``False`` return counts as a
        short-circuit.
        """
        with self._lock:
            now = self._tick()
            if self._state is CircuitState.OPEN:
                if now - self._opened_at >= self.config.recovery_ticks:
                    self._state = CircuitState.HALF_OPEN
                    self._half_open_in_flight = 0
                    self._half_open_successes = 0
                else:
                    self.short_circuits += 1
                    return False
            if self._state is CircuitState.HALF_OPEN:
                if self._half_open_in_flight >= self.config.half_open_max_calls:
                    self.short_circuits += 1
                    return False
                self._half_open_in_flight += 1
            return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` instead of returning False."""
        if not self.allow():
            # read the state via the locked property: the unlocked
            # self._state could be torn against a concurrent transition
            raise CircuitOpenError(
                f"circuit for service {self.name!r} is {self.state.value}"
            )

    def record_success(self) -> None:
        with self._lock:
            self._tick()
            self._consecutive_failures = 0
            if self._state is CircuitState.HALF_OPEN:
                self._half_open_successes += 1
                self._half_open_in_flight = max(0, self._half_open_in_flight - 1)
                if self._half_open_successes >= self.config.success_threshold:
                    self._state = CircuitState.CLOSED

    def record_failure(self) -> bool:
        """Record one failed dial; returns whether *this call* tripped
        the breaker.

        The return value exists so callers can attribute a trip to a
        specific failure without a read-modify-write over ``trips``
        spanning two lock acquisitions (which double-counts under
        concurrent failers).
        """
        with self._lock:
            now = self._tick()
            self._consecutive_failures += 1
            if self._state is CircuitState.HALF_OPEN:
                self._trip(now)
                return True
            if (
                self._state is CircuitState.CLOSED
                and self._consecutive_failures >= self.config.failure_threshold
            ):
                self._trip(now)
                return True
            return False

    def _trip(self, now: int) -> None:
        self._state = CircuitState.OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self._half_open_in_flight = 0
        self._half_open_successes = 0
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(name={self.name!r}, state={self._state.value}, "
            f"trips={self.trips})"
        )
