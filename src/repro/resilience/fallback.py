"""Fallback chain: stale cache -> substitute service -> MISSING.

When retries are exhausted (or a breaker is open) the resilience layer
degrades instead of failing the run, in escalating order of quality
loss:

1. **stale cache** — the last value this service successfully returned
   for the same point (a prior featurization pass, a warm serving
   cache);
2. **substitute service** — a sibling resource from the same
   ``service_set`` producing the same feature kind (the paper's service
   sets group redundant views of the same upstream signal: e.g.
   ``page_topics`` standing in for ``topics``);
3. **MISSING** — the paper's own missing-feature semantics (§6.6):
   models already tolerate empty features, so a blank cell is the
   graceful floor.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

from repro.core.exceptions import ServiceError
from repro.core.rng import spawn
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureKind
from repro.features.table import MISSING
from repro.resources.base import OrganizationalResource

__all__ = ["StaleValueCache", "FallbackChain", "build_substitute_map"]


class StaleValueCache:
    """Thread-safe (service, point_id) -> last successful value store."""

    def __init__(self) -> None:
        self._values: dict[tuple[str, int], object] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {"_values": self._values}

    def __setstate__(self, state: dict) -> None:
        self._values = state["_values"]
        self._lock = threading.Lock()

    def put(self, service: str, point_id: int, value: object) -> None:
        with self._lock:
            self._values[(service, point_id)] = value

    def get(self, service: str, point_id: int) -> tuple[bool, object]:
        """(hit, value); a cached ``None`` (no output) is a valid hit."""
        with self._lock:
            key = (service, point_id)
            if key in self._values:
                return True, self._values[key]
            return False, MISSING

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


def build_substitute_map(
    resources: Iterable[OrganizationalResource],
    substitute_numeric: bool = False,
) -> dict[str, list[OrganizationalResource]]:
    """Same-service-set, same-kind substitutes for each resource.

    Substitutes keep catalog order, so the chain is deterministic.
    Resources without a service set (or with no same-kind sibling) get
    an empty list.

    Numeric features are excluded by default: two numeric siblings in a
    service set usually score on different scales (a historical *rate*
    vs. a raw *count*), so standing one in for the other poisons the
    column — measurably worse than a missing value (the chaos
    experiment shows an AUPRC cliff with numeric substitution on).
    Categorical token sets and same-dimension embeddings degrade far
    more benignly.  Set ``substitute_numeric=True`` to opt in anyway.
    """
    resources = list(resources)
    substitutes: dict[str, list[OrganizationalResource]] = {}
    for resource in resources:
        spec = resource.spec
        subs = []
        skip_kind = not substitute_numeric and spec.kind is FeatureKind.NUMERIC
        if spec.service_set is not None and not skip_kind:
            for other in resources:
                if other.name == resource.name:
                    continue
                if (
                    other.spec.service_set == spec.service_set
                    and other.spec.kind is spec.kind
                ):
                    subs.append(other)
        substitutes[resource.name] = subs
    return substitutes


class FallbackChain:
    """Resolves a degraded value for a failed (service, point) call."""

    def __init__(
        self,
        substitutes: dict[str, list[OrganizationalResource]] | None = None,
        stale_cache: StaleValueCache | None = None,
    ) -> None:
        self.substitutes = dict(substitutes or {})
        self.stale_cache = stale_cache

    def resolve(
        self, service: str, point: DataPoint, seed: int
    ) -> tuple[object, str]:
        """(value, source) where source is ``stale_cache``,
        ``substitute:<name>``, or ``missing``.

        Substitute calls use the substitute's *own* per-point RNG tag,
        so the stand-in value equals what that sibling service would
        have produced anyway — deterministic and consistent with a
        featurization run that included it.  A substitute that itself
        raises a :class:`ServiceError` is skipped (fault cascades fall
        through to the next link).
        """
        if self.stale_cache is not None:
            hit, value = self.stale_cache.get(service, point.point_id)
            if hit:
                return value, "stale_cache"
        for substitute in self.substitutes.get(service, ()):
            if not substitute.supports(point.modality):
                continue
            rng = spawn(seed, f"feat/{point.point_id}/{substitute.name}")
            try:
                return substitute.apply(point, rng), f"substitute:{substitute.name}"
            except ServiceError:
                continue
        return MISSING, "missing"
