"""Fallback chain: stale cache -> substitute service -> MISSING.

When retries are exhausted (or a breaker is open) the resilience layer
degrades instead of failing the run, in escalating order of quality
loss:

1. **stale cache** — the last value this service successfully returned
   for the same point (a prior featurization pass, a warm serving
   cache);
2. **substitute service** — a sibling resource from the same
   ``service_set`` producing the same feature kind (the paper's service
   sets group redundant views of the same upstream signal: e.g.
   ``page_topics`` standing in for ``topics``);
3. **MISSING** — the paper's own missing-feature semantics (§6.6):
   models already tolerate empty features, so a blank cell is the
   graceful floor.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable

from repro.core.exceptions import ConfigurationError, ServiceError
from repro.core.rng import spawn
from repro.datagen.entities import DataPoint
from repro.features.schema import FeatureKind
from repro.features.table import MISSING
from repro.resources.base import OrganizationalResource

__all__ = ["StaleValueCache", "FallbackChain", "build_substitute_map"]


class StaleValueCache:
    """Thread-safe (service, point_id) -> last successful value store.

    Bounded: ``capacity`` caps the number of entries; inserting past it
    evicts the least-recently-used entry (both :meth:`get` and
    :meth:`put` count as use).  ``capacity=None`` means unbounded — fine
    for batch runs, a memory leak for a long-lived serving process.

    Every entry records its insert time (``clock``, default
    :func:`time.monotonic`; injectable for tests), refreshed on each
    :meth:`put`.  The timestamp is what the serving layer's TTL tier is
    built on; the fallback chain itself ignores age — any stale value
    beats a substitute or a missing cell.
    """

    def __init__(
        self,
        capacity: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._clock = clock
        #: key -> (value, inserted_at); insertion order is LRU order
        self._values: OrderedDict[tuple[str, int], tuple[object, float]] = (
            OrderedDict()
        )
        #: entries dropped to keep the cache within capacity
        self.evictions = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # locks don't pickle; snapshot under the lock so a concurrent
        # put() can't resize the dict mid-copy.  A non-default clock
        # must itself be picklable (time.monotonic is).
        with self._lock:
            state = {k: v for k, v in self.__dict__.items() if k != "_lock"}
            state["_values"] = OrderedDict(state["_values"])
            return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def put(self, service: str, point_id: int, value: object) -> None:
        with self._lock:
            key = (service, point_id)
            if key in self._values:
                self._values.move_to_end(key)
            self._values[key] = (value, self._clock())
            while self.capacity is not None and len(self._values) > self.capacity:
                self._values.popitem(last=False)
                self.evictions += 1

    def get(self, service: str, point_id: int) -> tuple[bool, object]:
        """(hit, value); a cached ``None`` (no output) is a valid hit."""
        hit, value, _ = self.entry(service, point_id)
        return hit, value

    def entry(self, service: str, point_id: int) -> tuple[bool, object, float]:
        """(hit, value, inserted_at); a hit refreshes LRU recency.

        ``inserted_at`` is the cache clock's reading when the entry was
        last :meth:`put` (0.0 on a miss) — the substrate for TTL
        freshness decisions.
        """
        with self._lock:
            key = (service, point_id)
            if key in self._values:
                self._values.move_to_end(key)
                value, inserted_at = self._values[key]
                return True, value, inserted_at
            return False, MISSING, 0.0

    def now(self) -> float:
        """The cache clock's current reading (comparable to
        ``inserted_at`` from :meth:`entry`)."""
        return self._clock()

    def clear(self) -> None:
        """Drop every entry and reset the eviction counter."""
        with self._lock:
            self._values.clear()
            self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


def build_substitute_map(
    resources: Iterable[OrganizationalResource],
    substitute_numeric: bool = False,
) -> dict[str, list[OrganizationalResource]]:
    """Same-service-set, same-kind substitutes for each resource.

    Substitutes keep catalog order, so the chain is deterministic.
    Resources without a service set (or with no same-kind sibling) get
    an empty list.

    Numeric features are excluded by default: two numeric siblings in a
    service set usually score on different scales (a historical *rate*
    vs. a raw *count*), so standing one in for the other poisons the
    column — measurably worse than a missing value (the chaos
    experiment shows an AUPRC cliff with numeric substitution on).
    Categorical token sets and same-dimension embeddings degrade far
    more benignly.  Set ``substitute_numeric=True`` to opt in anyway.
    """
    resources = list(resources)
    substitutes: dict[str, list[OrganizationalResource]] = {}
    for resource in resources:
        spec = resource.spec
        subs = []
        skip_kind = not substitute_numeric and spec.kind is FeatureKind.NUMERIC
        if spec.service_set is not None and not skip_kind:
            for other in resources:
                if other.name == resource.name:
                    continue
                if (
                    other.spec.service_set == spec.service_set
                    and other.spec.kind is spec.kind
                ):
                    subs.append(other)
        substitutes[resource.name] = subs
    return substitutes


class FallbackChain:
    """Resolves a degraded value for a failed (service, point) call."""

    def __init__(
        self,
        substitutes: dict[str, list[OrganizationalResource]] | None = None,
        stale_cache: StaleValueCache | None = None,
    ) -> None:
        self.substitutes = dict(substitutes or {})
        self.stale_cache = stale_cache

    def resolve(
        self, service: str, point: DataPoint, seed: int
    ) -> tuple[object, str]:
        """(value, source) where source is ``stale_cache``,
        ``substitute:<name>``, or ``missing``.

        Substitute calls use the substitute's *own* per-point RNG tag,
        so the stand-in value equals what that sibling service would
        have produced anyway — deterministic and consistent with a
        featurization run that included it.  A substitute that itself
        raises a :class:`ServiceError` is skipped (fault cascades fall
        through to the next link).
        """
        if self.stale_cache is not None:
            hit, value = self.stale_cache.get(service, point.point_id)
            if hit:
                return value, "stale_cache"
        for substitute in self.substitutes.get(service, ()):
            if not substitute.supports(point.modality):
                continue
            rng = spawn(seed, f"feat/{point.point_id}/{substitute.name}")
            try:
                return substitute.apply(point, rng), f"substitute:{substitute.name}"
            except ServiceError:
                continue
        return MISSING, "missing"
