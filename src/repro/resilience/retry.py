"""Retry with exponential backoff and deterministic jitter.

Delays are *simulated*: callers accumulate them into health stats
instead of sleeping, so fault-injection experiments run at full speed
while still modelling the latency cost of a retry storm.  Jitter is
drawn from a caller-supplied RNG so the full schedule is reproducible.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DeadlineExceeded,
    TransientServiceError,
)
from repro.resilience.deadline import Deadline

__all__ = ["RetryConfig", "backoff_delay", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryConfig:
    """Exponential-backoff retry policy.

    ``max_attempts`` counts the initial call, so ``max_attempts=1``
    disables retrying.  The delay before attempt ``k`` (k >= 2) is
    ``min(base_delay * multiplier**(k-2), max_delay)`` scaled by a
    deterministic jitter factor in ``[1-jitter, 1+jitter]``.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be non-negative")


def backoff_delay(
    config: RetryConfig, attempt: int, rng: np.random.Generator
) -> float:
    """Simulated delay before retry number ``attempt`` (1-based)."""
    if attempt < 1:
        raise ConfigurationError("attempt must be >= 1")
    raw = min(
        config.base_delay * config.multiplier ** (attempt - 1), config.max_delay
    )
    if config.jitter == 0.0:
        return raw
    return raw * (1.0 + config.jitter * (2.0 * rng.random() - 1.0))


def retry_call(
    fn: Callable[[int], T],
    config: RetryConfig,
    rng: np.random.Generator,
    on_retry: Callable[[int, Exception, float], None] | None = None,
    deadline: Deadline | None = None,
) -> T:
    """Call ``fn(attempt)`` until it succeeds or attempts are exhausted.

    Only :class:`TransientServiceError` (and subclasses) are retried;
    everything else propagates immediately.  ``on_retry`` observes
    (attempt, error, simulated_delay) before each re-dial.  The last
    transient error is re-raised when the budget runs out.

    With a ``deadline``, every backoff delay is charged against the
    budget.  A backoff that does not fit the remaining budget is capped
    at it (the call still pays what is left — in production the caller
    really does wait until the deadline fires) and
    :class:`DeadlineExceeded` is raised instead of re-dialing; the
    triggering transient error is chained as ``__cause__``.
    """
    last_error: TransientServiceError | None = None
    for attempt in range(config.max_attempts):
        if deadline is not None and deadline.exceeded:
            raise DeadlineExceeded(
                f"deadline budget {deadline.budget}s exhausted before "
                f"attempt {attempt + 1}"
            ) from last_error
        try:
            return fn(attempt)
        except TransientServiceError as exc:
            last_error = exc
            if attempt + 1 >= config.max_attempts:
                break
            delay = backoff_delay(config, attempt + 1, rng)
            if deadline is not None:
                capped = deadline.cap(delay)
                deadline.consume(capped)
                if capped < delay:
                    if on_retry is not None:
                        on_retry(attempt + 1, exc, capped)
                    raise DeadlineExceeded(
                        f"backoff of {delay:.4f}s after attempt {attempt + 1} "
                        f"exceeds remaining deadline budget ({capped:.4f}s "
                        f"of {deadline.budget}s left); slept the remainder "
                        f"and gave up"
                    ) from exc
                delay = capped
            if on_retry is not None:
                on_retry(attempt + 1, exc, delay)
    assert last_error is not None
    raise last_error
