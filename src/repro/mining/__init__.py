"""Automatic labeling-function generation (paper §4.3).

The paper mines frequent itemsets over the common feature space:
feature values that occur more often among positive than negative
examples become candidate LFs, filtered by precision/recall thresholds
on a labeled development set of the *old* modality.  Each emitted LF is
a conjunction of values of a single feature (to minimize correlations
between LFs); order-1 conjunctions suffice in practice.

A :class:`~repro.mining.expert.SimulatedExpert` provides the manual
baseline for the §6.7.1 comparison.
"""

from repro.mining.apriori import apriori, itemset_support
from repro.mining.lf_generator import MinedLFGenerator, MiningReport
from repro.mining.expert import ExpertReport, SimulatedExpert

__all__ = [
    "ExpertReport",
    "MinedLFGenerator",
    "MiningReport",
    "SimulatedExpert",
    "apriori",
    "itemset_support",
]
