"""Frequent-itemset mining (Apriori, levelwise candidate generation).

Transactions are frozensets of hashable items; here items are
``(feature_name, token)`` pairs.  The classic Apriori pruning applies:
every subset of a frequent itemset is frequent, so level k+1 candidates
are built by joining level-k itemsets sharing k-1 items and pruned
against level k [Srikant & Agrawal 1996].
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.core.exceptions import MiningError

__all__ = ["apriori", "itemset_support"]

Item = Hashable
Itemset = frozenset
Transaction = frozenset


def itemset_support(
    transactions: Sequence[Transaction], itemset: Itemset
) -> int:
    """Number of transactions containing every item of ``itemset``."""
    return sum(1 for t in transactions if itemset <= t)


def _frequent_singletons(
    transactions: Sequence[Transaction], min_count: int
) -> dict[Itemset, int]:
    counts: dict[Item, int] = defaultdict(int)
    for transaction in transactions:
        for item in transaction:
            counts[item] += 1
    return {
        frozenset({item}): count
        for item, count in counts.items()
        if count >= min_count
    }


def _join_level(frequent: list[Itemset], k: int) -> set[Itemset]:
    """Candidate (k+1)-itemsets from frequent k-itemsets."""
    candidates: set[Itemset] = set()
    n = len(frequent)
    for i in range(n):
        for j in range(i + 1, n):
            union = frequent[i] | frequent[j]
            if len(union) == k + 1:
                candidates.add(union)
    return candidates


def _prune(candidates: set[Itemset], frequent_prev: set[Itemset]) -> list[Itemset]:
    """Keep candidates all of whose k-subsets are frequent."""
    kept = []
    for candidate in candidates:
        if all(
            candidate - {item} in frequent_prev for item in candidate
        ):
            kept.append(candidate)
    return kept


def apriori(
    transactions: Iterable[Transaction],
    min_support: float = 0.01,
    max_order: int = 1,
) -> dict[Itemset, float]:
    """Mine frequent itemsets up to ``max_order`` items.

    Parameters
    ----------
    transactions:
        Iterable of frozensets of items.
    min_support:
        Minimum fraction of transactions an itemset must appear in.
    max_order:
        Largest itemset size to mine (the paper finds order 1
        sufficient; we support higher orders for the ablation).

    Returns
    -------
    dict mapping each frequent itemset to its support (fraction).
    """
    transactions = [frozenset(t) for t in transactions]
    if not transactions:
        raise MiningError("apriori requires at least one transaction")
    if not 0.0 < min_support <= 1.0:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    if max_order < 1:
        raise MiningError(f"max_order must be >= 1, got {max_order}")

    n = len(transactions)
    min_count = max(int(np.ceil(min_support * n)), 1)
    result: dict[Itemset, float] = {}

    level = _frequent_singletons(transactions, min_count)
    order = 1
    while level and order <= max_order:
        # insertion order of `level` leaks set/dict iteration order (and
        # with it PYTHONHASHSEED); emit each level canonically sorted so
        # downstream consumers see a process-independent ordering
        for itemset, count in sorted(
            level.items(), key=lambda kv: tuple(sorted(map(repr, kv[0])))
        ):
            result[itemset] = count / n
        if order == max_order:
            break
        frequent_now = set(level)
        candidates = _prune(
            _join_level(list(level), order), frequent_now
        )
        next_level: dict[Itemset, int] = {}
        for candidate in candidates:
            count = itemset_support(transactions, candidate)
            if count >= min_count:
                next_level[candidate] = count
        level = next_level
        order += 1
    return result
