"""Automatic LF generation from a labeled development set (paper §4.3).

Procedure (mirroring the paper):

1. To decrease runtime in class-imbalanced settings, candidate feature
   values are first mined from the *positive* examples with Apriori.
2. Each candidate — a conjunction of values over a *single* feature —
   becomes a positive LF if its precision and recall on the dev set
   clear pre-specified thresholds.
3. Negative LFs are mined symmetrically (values frequent among
   negatives with near-zero positive rate); they are easy to find but
   the borderline region stays uncovered, which is what label
   propagation later fixes (§4.4).
4. Numeric features (aggregate statistics) yield threshold LFs: the
   best quantile cut per feature and polarity that clears the same
   thresholds.

The generator also records a wall-clock measurement, which feeds the
§6.7.1 time comparison.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

import repro.obs as obs
from repro.core.exceptions import MiningError
from repro.features.schema import FeatureKind
from repro.features.table import MISSING, FeatureTable
from repro.labeling.lf import (
    NEGATIVE,
    POSITIVE,
    LabelingFunction,
    conjunction_lf,
    numeric_threshold_lf,
)
from repro.mining.apriori import apriori

__all__ = ["MinedLFGenerator", "MiningReport"]

Item = tuple[str, str]


@dataclass
class MiningReport:
    """What the mining pass found and how long it took."""

    n_positive_lfs: int = 0
    n_negative_lfs: int = 0
    n_candidates_considered: int = 0
    wall_clock_seconds: float = 0.0
    rejected: dict[str, int] = field(default_factory=dict)

    @property
    def n_lfs(self) -> int:
        return self.n_positive_lfs + self.n_negative_lfs


def _rows_to_transactions(
    table: FeatureTable, features: list[str]
) -> list[frozenset]:
    transactions = []
    for row in table.iter_rows():
        items: set[Item] = set()
        for name in features:
            value = row.get(name)
            if value is MISSING:
                continue
            for token in value:  # type: ignore[union-attr]
                items.add((name, token))
        transactions.append(frozenset(items))
    return transactions


class MinedLFGenerator:
    """Mines labeling functions from a labeled development table.

    Parameters
    ----------
    min_precision:
        Dev-set precision a positive LF must reach (the paper's
        "pre-specified precision ... threshold").
    min_recall:
        Dev-set recall (over positives) a positive LF must reach;
        typically small — each LF covers one behavioural mode.
    min_negative_purity:
        For negative LFs, the minimum fraction of matched points that
        are truly negative.
    min_support:
        Apriori support threshold over the positive examples.
    max_order:
        Conjunction order (number of values of the same feature); the
        paper uses 1.
    max_lfs_per_polarity:
        Cap on emitted LFs per polarity, keeping the highest-precision
        ones (positives) / highest-coverage ones (negatives).
    """

    def __init__(
        self,
        min_precision: float = 0.15,
        min_lift: float = 3.0,
        min_recall: float = 0.005,
        min_negative_purity: float = 0.995,
        min_negative_support: float = 0.02,
        min_support: float = 0.02,
        max_order: int = 1,
        max_lfs_per_polarity: int = 80,
        numeric_quantiles: tuple[float, ...] = (0.70, 0.80, 0.90, 0.95, 0.98),
        min_positive_matches: int = 3,
        precision_smoothing: float = 4.0,
    ) -> None:
        if not 0.0 < min_precision <= 1.0:
            raise MiningError(f"min_precision must be in (0, 1], got {min_precision}")
        if min_lift < 1.0:
            raise MiningError(f"min_lift must be >= 1, got {min_lift}")
        self.min_precision = min_precision
        #: a positive LF's precision must exceed ``min_lift`` times the
        #: base positive rate — the meaningful "high precision" notion
        #: under the paper's heavy class imbalance
        self.min_lift = min_lift
        self.min_recall = min_recall
        self.min_negative_purity = min_negative_purity
        self.min_negative_support = min_negative_support
        self.min_support = min_support
        self.max_order = max_order
        self.max_lfs_per_polarity = max_lfs_per_polarity
        self.numeric_quantiles = numeric_quantiles
        #: a candidate must match at least this many dev positives
        self.min_positive_matches = min_positive_matches
        #: pseudo-count smoothing pulling small-sample precision toward
        #: the base rate (guards against overfitting tiny dev sets)
        self.precision_smoothing = precision_smoothing
        self.report_: MiningReport | None = None

    # ------------------------------------------------------------------
    def generate(
        self,
        dev_table: FeatureTable,
        features: list[str] | None = None,
    ) -> list[LabelingFunction]:
        """Mine LFs from ``dev_table`` (must carry labels).

        ``features`` restricts which features may appear in LFs (e.g.
        only those shared with the new modality); defaults to all.
        """
        if dev_table.labels is None:
            raise MiningError("LF mining requires a labeled development table")
        labels = dev_table.labels
        if labels.sum() == 0:
            raise MiningError("development table contains no positive examples")

        schema = dev_table.schema
        if features is None:
            features = schema.names
        categorical = [
            n for n in features if schema[n].kind is FeatureKind.CATEGORICAL
        ]
        numeric = [n for n in features if schema[n].kind is FeatureKind.NUMERIC]

        report = MiningReport()
        with obs.timed("mining.lf_generation", n_rows=dev_table.n_rows) as t:
            positive_lfs = self._mine_positive(
                dev_table, labels, categorical, report
            )
            negative_lfs = self._mine_negative(
                dev_table, labels, categorical, report
            )
            pos_numeric, neg_numeric = self._mine_numeric(
                dev_table, labels, numeric, report
            )
            positive_lfs.extend(pos_numeric)
            negative_lfs.extend(neg_numeric)

            report.n_positive_lfs = len(positive_lfs)
            report.n_negative_lfs = len(negative_lfs)
            t.span.add_counter("candidates", report.n_candidates_considered)
            t.span.add_counter("lfs_positive", report.n_positive_lfs)
            t.span.add_counter("lfs_negative", report.n_negative_lfs)
        report.wall_clock_seconds = t.duration
        self.report_ = report
        return positive_lfs + negative_lfs

    # ------------------------------------------------------------------
    def _mine_positive(
        self,
        table: FeatureTable,
        labels: np.ndarray,
        categorical: list[str],
        report: MiningReport,
    ) -> list[LabelingFunction]:
        if not categorical:
            return []
        pos_idx = np.flatnonzero(labels == 1)
        pos_table = table.select_rows(pos_idx)
        pos_transactions = _rows_to_transactions(pos_table, categorical)
        frequent = apriori(
            pos_transactions, min_support=self.min_support, max_order=self.max_order
        )
        # keep only single-feature conjunctions (paper: "each LF is ...
        # defined over a single feature")
        candidates = [
            itemset
            for itemset in frequent
            if len({item[0] for item in itemset}) == 1
        ]
        report.n_candidates_considered += len(candidates)

        all_transactions = _rows_to_transactions(table, categorical)
        n_pos_total = int(labels.sum())
        base_rate = n_pos_total / len(labels)
        s = self.precision_smoothing
        scored: list[tuple[float, float, frozenset]] = []
        rejected_precision = 0
        rejected_recall = 0
        for itemset in candidates:
            matched = np.fromiter(
                (itemset <= t for t in all_transactions), dtype=bool
            )
            n_matched = int(matched.sum())
            if n_matched == 0:
                continue
            tp = int(labels[matched].sum())
            precision = (tp + s * base_rate) / (n_matched + s)
            recall = tp / n_pos_total
            passes = (
                tp >= self.min_positive_matches
                and precision >= self.min_precision
                and precision >= self.min_lift * base_rate
            )
            if not passes:
                rejected_precision += 1
                continue
            if recall < self.min_recall:
                rejected_recall += 1
                continue
            scored.append((precision, recall, itemset))
        report.rejected["positive_precision"] = rejected_precision
        report.rejected["positive_recall"] = rejected_recall

        # the itemset tiebreaker keeps tied candidates in a canonical
        # order, so the truncation below is process-independent
        scored.sort(
            key=lambda entry: (-entry[0], -entry[1], tuple(sorted(entry[2])))
        )
        scored = self._dedupe(scored)[: self.max_lfs_per_polarity]
        lfs = []
        for precision, recall, itemset in scored:
            feature = next(iter(itemset))[0]
            values = frozenset(token for _, token in itemset)
            name = f"mined_pos[{feature}={'&'.join(sorted(values))}]"
            lfs.append(conjunction_lf(name, feature, values, POSITIVE, origin="mined"))
        return lfs

    def _mine_negative(
        self,
        table: FeatureTable,
        labels: np.ndarray,
        categorical: list[str],
        report: MiningReport,
    ) -> list[LabelingFunction]:
        """Negative LFs: values whose matched points are almost never
        positive, with enough support to matter."""
        if not categorical:
            return []
        value_counts: dict[Item, list[int]] = defaultdict(lambda: [0, 0])
        transactions = _rows_to_transactions(table, categorical)
        for items, label in zip(transactions, labels):
            for item in items:
                entry = value_counts[item]
                entry[0] += int(label)
                entry[1] += 1
        n = len(labels)
        min_count = max(int(self.min_negative_support * n), 1)
        scored = []
        for (feature, token), (pos, total) in value_counts.items():
            if total < min_count:
                continue
            purity = 1.0 - pos / total
            if purity >= self.min_negative_purity:
                scored.append((total, purity, feature, token))
        report.n_candidates_considered += len(value_counts)
        scored.sort(key=lambda entry: (-entry[0], -entry[1], entry[2], entry[3]))
        lfs = []
        for total, purity, feature, token in scored[: self.max_lfs_per_polarity]:
            name = f"mined_neg[{feature}={token}]"
            lfs.append(
                conjunction_lf(name, feature, frozenset({token}), NEGATIVE, origin="mined")
            )
        return lfs

    def _mine_numeric(
        self,
        table: FeatureTable,
        labels: np.ndarray,
        numeric: list[str],
        report: MiningReport,
    ) -> tuple[list[LabelingFunction], list[LabelingFunction]]:
        positive_lfs: list[LabelingFunction] = []
        negative_lfs: list[LabelingFunction] = []
        n_pos_total = int(labels.sum())
        base_rate = n_pos_total / len(labels)
        s = self.precision_smoothing
        for feature in numeric:
            column = table.column(feature)
            values = np.array(
                [float(v) if v is not MISSING else np.nan for v in column]  # type: ignore[arg-type]
            )
            present = ~np.isnan(values)
            if present.sum() < 50:
                continue
            seen_thresholds: set[float] = set()
            for q in self.numeric_quantiles:
                threshold = float(np.nanquantile(values, q))
                report.n_candidates_considered += 2
                # high values -> positive; every passing quantile is
                # emitted, giving the label model a graded view of the
                # statistic (nested thresholds on the same feature)
                matched = present & (values >= threshold)
                n_matched = int(matched.sum())
                if n_matched and threshold not in seen_thresholds:
                    tp = int(labels[matched].sum())
                    precision = (tp + s * base_rate) / (n_matched + s)
                    recall = tp / n_pos_total
                    if (
                        tp >= self.min_positive_matches
                        and precision >= self.min_precision
                        and precision >= self.min_lift * base_rate
                        and recall >= self.min_recall
                    ):
                        seen_thresholds.add(threshold)
                        positive_lfs.append(
                            numeric_threshold_lf(
                                f"mined_pos[{feature}>=q{int(q * 100)}]",
                                feature,
                                threshold,
                                POSITIVE,
                                direction="above",
                                origin="mined",
                            )
                        )
                # low values -> negative
                low_threshold = float(np.nanquantile(values, 1.0 - q))
                matched = present & (values <= low_threshold)
                n_matched = int(matched.sum())
                if (
                    n_matched >= max(int(self.min_negative_support * len(labels)), 1)
                    and -low_threshold not in seen_thresholds
                ):
                    purity = 1.0 - labels[matched].mean()
                    if purity >= self.min_negative_purity:
                        seen_thresholds.add(-low_threshold)
                        negative_lfs.append(
                            numeric_threshold_lf(
                                f"mined_neg[{feature}<=q{int((1 - q) * 100)}]",
                                feature,
                                low_threshold,
                                NEGATIVE,
                                direction="below",
                                origin="mined",
                            )
                        )
        return positive_lfs, negative_lfs

    @staticmethod
    def _dedupe(
        scored: list[tuple[float, float, frozenset]]
    ) -> list[tuple[float, float, frozenset]]:
        """Drop itemsets subsumed by an already-kept subset of the same
        feature (a superset conjunction fires on a subset of points)."""
        kept: list[tuple[float, float, frozenset]] = []
        for precision, recall, itemset in scored:
            if any(prev <= itemset for _, _, prev in kept):
                continue
            kept.append((precision, recall, itemset))
        return kept
