"""Simulated domain expert for the §6.7.1 manual-LF baseline.

The paper compares automatically mined LFs to LFs hand-built by the
ground-truth collection team (7 hours spread over two weeks).  Since no
human expert ships with this reproduction, we simulate one: the expert
*partially* knows the task concept (a configurable fraction of the true
positive attribute values, plus some mistaken beliefs), writes
multi-feature conjunction LFs from that knowledge, and bills time per
LF from a cost model calibrated to the paper's reported effort.

The simulated expert is intentionally different in kind from the miner:
its LFs span multiple features (the paper notes expert LFs were "more
complex, multi-feature"), and its knowledge is capped by what a human
can examine, whereas mining sees the full development corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rng import spawn
from repro.datagen.world import TaskDefinition
from repro.labeling.lf import (
    ABSTAIN,
    NEGATIVE,
    POSITIVE,
    FeatureRow,
    LabelingFunction,
)

__all__ = ["ExpertReport", "SimulatedExpert"]


@dataclass(frozen=True)
class ExpertReport:
    """Effort accounting for the simulated expert."""

    n_lfs: int
    hours_spent: float
    calendar_days: float
    knowledge_fraction: float


def _multi_feature_lf(
    name: str,
    topic_values: frozenset[str],
    keyword_values: frozenset[str],
    min_report_count: float | None,
    vote: int,
) -> LabelingFunction:
    """Expert-style LF: topical match AND keyword match (AND optionally
    a reported-user condition) -> vote."""

    def fn(row: FeatureRow) -> int:
        topics = row.get("topics") or frozenset()
        keywords = row.get("keywords") or frozenset()
        topic_hit = not topic_values or bool(topic_values & topics)  # type: ignore[operator]
        keyword_hit = not keyword_values or bool(keyword_values & keywords)  # type: ignore[operator]
        if not (topic_hit and keyword_hit):
            return ABSTAIN
        if min_report_count is not None:
            reports = row.get("user_report_count")
            if reports is None or float(reports) < min_report_count:  # type: ignore[arg-type]
                return ABSTAIN
        return vote

    depends = ("topics", "keywords") + (
        ("user_report_count",) if min_report_count is not None else ()
    )
    return LabelingFunction(
        name=name, fn=fn, origin="expert", depends_on=depends
    )


class SimulatedExpert:
    """Generates expert LFs for a task with partial concept knowledge.

    Parameters
    ----------
    knowledge_fraction:
        Fraction of each positive attribute set the expert actually
        knows.
    false_belief_rate:
        For each known value, probability the expert *also* holds a
        mistaken belief (a random non-positive value treated as
        positive).
    minutes_per_lf / exploration_hours:
        Cost model: fixed data-exploration time plus a per-LF cost.
        Defaults calibrated so a ~10-LF session costs about the paper's
        7 hours.
    """

    def __init__(
        self,
        definition: TaskDefinition,
        knowledge_fraction: float = 0.55,
        false_belief_rate: float = 0.20,
        minutes_per_lf: float = 24.0,
        exploration_hours: float = 3.0,
        seed: int = 0,
    ) -> None:
        self.definition = definition
        self.knowledge_fraction = knowledge_fraction
        self.false_belief_rate = false_belief_rate
        self.minutes_per_lf = minutes_per_lf
        self.exploration_hours = exploration_hours
        self.seed = seed
        self.report_: ExpertReport | None = None

    def _known_values(
        self,
        rng: np.random.Generator,
        true_positive: frozenset[int],
        universe: int,
        prefix: str,
    ) -> list[str]:
        values = sorted(true_positive)
        n_known = max(int(round(self.knowledge_fraction * len(values))), 1)
        known_ids = list(rng.choice(values, size=min(n_known, len(values)), replace=False))
        # mistaken beliefs
        for _ in range(len(known_ids)):
            if rng.random() < self.false_belief_rate:
                known_ids.append(int(rng.integers(universe)))
        return [f"{prefix}{int(i)}" for i in known_ids]

    def write_lfs(
        self,
        n_topics_universe: int,
        n_keywords_universe: int,
        n_lfs: int = 10,
    ) -> list[LabelingFunction]:
        """Produce the expert's LF suite and record the effort report."""
        rng = spawn(self.seed, f"expert-{self.definition.name}")
        known_topics = self._known_values(
            rng, self.definition.positive_topics, n_topics_universe, "t"
        )
        known_keywords = self._known_values(
            rng, self.definition.positive_keywords, n_keywords_universe, "kw"
        )

        lfs: list[LabelingFunction] = []
        n_positive = max(n_lfs - 2, 1)
        for i in range(n_positive):
            # Experts alternate between broad single-family rules (any
            # known topic / keyword present) and stricter multi-feature
            # conjunctions (topical match AND a reported user) — the
            # "complex, multi-feature" shape the paper describes.
            style = i % 3
            topics = frozenset(
                str(t)
                for t in rng.choice(
                    known_topics, size=min(3, len(known_topics)), replace=False
                )
            )
            keywords = frozenset(
                str(k)
                for k in rng.choice(
                    known_keywords, size=min(3, len(known_keywords)), replace=False
                )
            )
            if style == 0:
                lfs.append(
                    _multi_feature_lf(
                        f"expert_pos_{i}",
                        topic_values=topics,
                        keyword_values=frozenset(),
                        min_report_count=None,
                        vote=POSITIVE,
                    )
                )
            elif style == 1:
                lfs.append(
                    _multi_feature_lf(
                        f"expert_pos_{i}",
                        topic_values=frozenset(),
                        keyword_values=keywords,
                        min_report_count=None,
                        vote=POSITIVE,
                    )
                )
            else:
                lfs.append(
                    _multi_feature_lf(
                        f"expert_pos_{i}",
                        topic_values=topics,
                        keyword_values=frozenset(),
                        min_report_count=4.0,
                        vote=POSITIVE,
                    )
                )

        # Experts write few negative LFs and they are broad: "clean"
        # posts by unreported users in unknown-to-be-risky topics.
        known_topic_set = frozenset(known_topics)
        known_keyword_set = frozenset(known_keywords)

        def negative_fn(row: FeatureRow) -> int:
            topics = row.get("topics") or frozenset()
            keywords = row.get("keywords") or frozenset()
            reports = row.get("user_report_count")
            if known_topic_set & topics or known_keyword_set & keywords:  # type: ignore[operator]
                return ABSTAIN
            if reports is not None and float(reports) > 3.0:  # type: ignore[arg-type]
                return ABSTAIN
            return NEGATIVE

        lfs.append(
            LabelingFunction(
                name="expert_neg_clean",
                fn=negative_fn,
                origin="expert",
                depends_on=("topics", "keywords", "user_report_count"),
            )
        )

        hours = self.exploration_hours + len(lfs) * self.minutes_per_lf / 60.0
        self.report_ = ExpertReport(
            n_lfs=len(lfs),
            hours_spent=round(hours, 2),
            # The paper notes manual effort was "spread over days to
            # weeks"; assume ~45 focused minutes per day.
            calendar_days=round(hours / 0.75, 1),
            knowledge_fraction=self.knowledge_fraction,
        )
        return lfs
