"""Snuba-style iterative heuristic synthesis (the paper's road not
taken).

§4.3: "Prior work in automatic LF generation can overcome this
challenge, including model-based approaches such as Snuba [Varma & Ré
2018].  We found such methods difficult to immediately integrate (and
justify) with existing production workflows and infrastructure."

This is a compact implementation of Snuba's core loop so the trade-off
can be measured rather than asserted: starting from the same primitive
predicates the itemset miner considers (single categorical values and
numeric thresholds), it *iteratively* selects the heuristic that best
improves an abstain-aware F1 over the dev points not yet covered by the
committee, re-scoring every remaining candidate each round.  The loop
is quadratic in candidates x rounds — which is exactly why the paper
found it costly next to one-pass itemset mining; the §6.7.1 benchmark
reports both wall-clocks side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.core.exceptions import MiningError
from repro.features.schema import FeatureKind
from repro.features.table import MISSING, FeatureTable
from repro.labeling.lf import (
    NEGATIVE,
    POSITIVE,
    LabelingFunction,
    conjunction_lf,
    numeric_threshold_lf,
)

__all__ = ["SnubaGenerator", "SnubaReport"]


@dataclass
class SnubaReport:
    """What the synthesis loop did."""

    n_candidates: int = 0
    n_rounds: int = 0
    n_selected: int = 0
    wall_clock_seconds: float = 0.0
    objective_trace: list[float] | None = None


@dataclass
class _Candidate:
    lf: LabelingFunction
    votes: np.ndarray  # {-1, 0, +1} over dev rows


class SnubaGenerator:
    """Iterative greedy heuristic selection over primitive predicates.

    Parameters
    ----------
    max_heuristics:
        Committee size budget.
    min_support:
        Minimum fraction of dev rows a candidate must vote on.
    numeric_quantiles:
        Threshold grid for numeric features.
    min_token_count:
        Absolute floor on a categorical value's dev-set frequency.
    """

    def __init__(
        self,
        max_heuristics: int = 25,
        min_support: float = 0.01,
        numeric_quantiles: tuple[float, ...] = (0.7, 0.8, 0.9, 0.95),
        min_token_count: int = 5,
    ) -> None:
        if max_heuristics < 1:
            raise MiningError("max_heuristics must be >= 1")
        if not 0.0 < min_support <= 1.0:
            raise MiningError("min_support must be in (0, 1]")
        self.max_heuristics = max_heuristics
        self.min_support = min_support
        self.numeric_quantiles = numeric_quantiles
        self.min_token_count = min_token_count
        self.report_: SnubaReport | None = None

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    def _categorical_candidates(
        self, table: FeatureTable, labels: np.ndarray, features: list[str]
    ) -> list[_Candidate]:
        from collections import defaultdict

        candidates: list[_Candidate] = []
        n = table.n_rows
        for name in features:
            token_rows: dict[str, list[int]] = defaultdict(list)
            for i, value in enumerate(table.column(name)):
                if value is MISSING:
                    continue
                for token in value:  # type: ignore[union-attr]
                    token_rows[token].append(i)
            for token, rows in token_rows.items():
                if len(rows) < max(self.min_token_count, int(self.min_support * n)):
                    continue
                votes = np.zeros(n, dtype=np.int8)
                purity = labels[rows].mean()
                polarity = POSITIVE if purity >= labels.mean() else NEGATIVE
                votes[rows] = polarity
                candidates.append(
                    _Candidate(
                        lf=conjunction_lf(
                            f"snuba[{name}={token}]",
                            name,
                            frozenset({token}),
                            polarity,
                            origin="snuba",
                        ),
                        votes=votes,
                    )
                )
        return candidates

    def _numeric_candidates(
        self, table: FeatureTable, labels: np.ndarray, features: list[str]
    ) -> list[_Candidate]:
        candidates: list[_Candidate] = []
        n = table.n_rows
        for name in features:
            values = np.array(
                [
                    float(v) if v is not MISSING else np.nan
                    for v in table.column(name)
                ]
            )
            present = ~np.isnan(values)
            if present.sum() < 20:
                continue
            for q in self.numeric_quantiles:
                for direction, polarity in (("above", POSITIVE), ("below", NEGATIVE)):
                    quantile = q if direction == "above" else 1.0 - q
                    threshold = float(np.nanquantile(values, quantile))
                    if direction == "above":
                        matched = present & (values >= threshold)
                    else:
                        matched = present & (values <= threshold)
                    if matched.sum() < max(5, int(self.min_support * n)):
                        continue
                    votes = np.zeros(n, dtype=np.int8)
                    votes[matched] = polarity
                    candidates.append(
                        _Candidate(
                            lf=numeric_threshold_lf(
                                f"snuba[{name}{'>=' if direction == 'above' else '<='}q{int(quantile * 100)}]",
                                name,
                                threshold,
                                polarity,
                                direction=direction,
                                origin="snuba",
                            ),
                            votes=votes,
                        )
                    )
        return candidates

    # ------------------------------------------------------------------
    # greedy selection
    # ------------------------------------------------------------------
    @staticmethod
    def _macro_f1(votes: np.ndarray, signed: np.ndarray) -> float:
        """Mean of the positive-vote F1 (against the positive class) and
        the negative-vote F1 (against the negative class), so heuristics
        of both polarities can improve the committee."""

        def polarity_f1(polarity: int) -> float:
            predicted = votes == polarity
            actual = signed == polarity
            tp = float((predicted & actual).sum())
            fp = float((predicted & ~actual).sum())
            fn = float((~predicted & actual).sum())
            precision = tp / (tp + fp) if tp + fp > 0 else 0.0
            recall = tp / (tp + fn) if tp + fn > 0 else 0.0
            if precision + recall == 0:
                return 0.0
            return 2 * precision * recall / (precision + recall)

        return 0.5 * (polarity_f1(1) + polarity_f1(-1))

    def generate(
        self,
        dev_table: FeatureTable,
        features: list[str] | None = None,
    ) -> list[LabelingFunction]:
        """Synthesize a heuristic committee from a labeled dev table."""
        if dev_table.labels is None:
            raise MiningError("Snuba synthesis requires a labeled dev table")
        labels = dev_table.labels
        if labels.sum() == 0:
            raise MiningError("dev table contains no positive examples")
        signed = np.where(labels == 1, 1, -1)

        schema = dev_table.schema
        if features is None:
            features = schema.names
        categorical = [
            f for f in features if schema[f].kind is FeatureKind.CATEGORICAL
        ]
        numeric = [f for f in features if schema[f].kind is FeatureKind.NUMERIC]

        with obs.timed("mining.snuba", n_rows=dev_table.n_rows) as t:
            candidates = self._categorical_candidates(dev_table, labels, categorical)
            candidates.extend(self._numeric_candidates(dev_table, labels, numeric))
            report = SnubaReport(
                n_candidates=len(candidates), objective_trace=[]
            )

            selected: list[_Candidate] = []
            committee_votes = np.zeros(dev_table.n_rows, dtype=np.int8)
            best_objective = 0.0
            remaining = list(candidates)
            while remaining and len(selected) < self.max_heuristics:
                report.n_rounds += 1
                # Snuba's expensive step: every remaining candidate is
                # *trial-merged* into the committee and the full objective
                # recomputed (this re-scoring loop is the cost the paper's
                # §4.3 declined to pay)
                best_index = -1
                best_trial = best_objective
                for index, candidate in enumerate(remaining):
                    trial_votes = committee_votes.copy()
                    untouched = trial_votes == 0
                    trial_votes[untouched] = candidate.votes[untouched]
                    objective = self._macro_f1(trial_votes, signed)
                    if objective > best_trial + 1e-9:
                        best_trial = objective
                        best_index = index
                if best_index < 0:
                    break  # no candidate improves the committee
                candidate = remaining.pop(best_index)
                untouched = committee_votes == 0
                committee_votes[untouched] = candidate.votes[untouched]
                best_objective = best_trial
                report.objective_trace.append(best_objective)
                selected.append(candidate)

            report.n_selected = len(selected)
            t.span.add_counter("candidates", report.n_candidates)
            t.span.add_counter("rounds", report.n_rounds)
            t.span.add_counter("selected", report.n_selected)
        report.wall_clock_seconds = t.duration
        self.report_ = report
        return [candidate.lf for candidate in selected]
