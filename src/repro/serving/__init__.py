"""Online serving layer (DESIGN.md §14).

The batch pipeline ends with a completed, checkpointed run; this
subpackage turns that run into a long-lived decision service, the
production framing of Snorkel DryBell (weak supervision as an
organizational service, not a one-shot script):

* :mod:`repro.serving.artifacts` — load a completed run's deployable
  artifacts (fusion model, feature schema, featurize seed, feature
  tables) from the RunStore via its manifest;
* :mod:`repro.serving.cache` — TTL freshness tier over the fallback
  chain's :class:`~repro.resilience.fallback.StaleValueCache`
  (fresh hit -> serve; expired hit -> refresh, degrade to stale);
* :mod:`repro.serving.batcher` — bounded-queue micro-batcher with
  max-batch-size / max-wait flush rules;
* :mod:`repro.serving.server` — :class:`ModelServer`: featurize single
  points on demand through a :class:`ResiliencePolicy`, predict, and
  emit :class:`Decision`\\ s bit-identical to the batch pipeline's
  scores for the same points;
* :mod:`repro.serving.loadgen` — closed-loop load generator reporting
  p50/p99 latency and sustained QPS.
"""

from repro.serving.artifacts import ServingArtifacts
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TTLFeatureCache
from repro.serving.loadgen import LATENCY_BOUNDS, LoadResult, run_load
from repro.serving.server import Decision, ModelServer, ServingConfig

__all__ = [
    "Decision",
    "LATENCY_BOUNDS",
    "LoadResult",
    "MicroBatcher",
    "ModelServer",
    "ServingArtifacts",
    "ServingConfig",
    "TTLFeatureCache",
    "run_load",
]
