"""TTL freshness tier over the fallback chain's stale-value cache.

The batch resilience layer keeps a :class:`StaleValueCache` purely as a
degradation tier — *any* previously seen value beats a substitute or a
missing cell, no matter how old.  A long-lived serving process needs a
second axis: **freshness**.  This module layers TTL semantics on the
same physical cache (one store, two readers):

* **fresh hit** — entry younger than the TTL: serve it without dialing
  the service at all (the latency win);
* **stale hit** — entry exists but has outlived the TTL: the server
  must *refresh* through the resilience policy; if the refresh dial
  fails, the policy's fallback chain finds this very entry in its
  stale tier and degrades to it (the availability win);
* **miss** — never seen: the server must compute through the policy.

Sharing the physical store is what makes the refresh-failure path
coherent: the TTL tier never copies values, so whatever the fallback
chain serves under degradation is byte-for-byte the entry the TTL tier
judged stale.
"""

from __future__ import annotations

import threading

from repro.core.exceptions import ConfigurationError
from repro.features.table import MISSING
from repro.resilience.fallback import StaleValueCache

__all__ = ["TTLFeatureCache"]


class TTLFeatureCache:
    """Freshness-aware read view over a :class:`StaleValueCache`.

    ``ttl_s=None`` means entries never expire (every hit is fresh) —
    the right setting when the corpus is static and the batch values
    are authoritative.  ``ttl_s=0.0`` means every hit is already
    expired — useful in chaos tests to force the refresh path while
    keeping the stale tier warm.  Writes go through
    :meth:`StaleValueCache.put` (directly or via the policy's success
    path); this view only classifies reads.
    """

    def __init__(
        self, store: StaleValueCache, ttl_s: float | None = None
    ) -> None:
        if ttl_s is not None and ttl_s < 0:
            raise ConfigurationError("ttl_s must be >= 0 (or None)")
        self.store = store
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self.fresh_hits = 0
        self.stale_hits = 0
        self.misses = 0

    def lookup(self, service: str, point_id: int) -> tuple[str, object]:
        """Classify one read: ``(state, value)``.

        ``state`` is ``"fresh"`` (serve the value as-is), ``"stale"``
        (value present but expired — refresh through the policy), or
        ``"miss"`` (value is :data:`MISSING`).
        """
        hit, value, inserted_at = self.store.entry(service, point_id)
        if not hit:
            with self._lock:
                self.misses += 1
            return "miss", MISSING
        age = self.store.now() - inserted_at
        if self.ttl_s is None or age < self.ttl_s:
            with self._lock:
                self.fresh_hits += 1
            return "fresh", value
        with self._lock:
            self.stale_hits += 1
        return "stale", value

    def put(self, service: str, point_id: int, value: object) -> None:
        """Write through to the underlying store (refreshes the age)."""
        self.store.put(service, point_id, value)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "fresh_hits": self.fresh_hits,
                "stale_hits": self.stale_hits,
                "misses": self.misses,
                "entries": len(self.store),
                "evictions": self.store.evictions,
            }
