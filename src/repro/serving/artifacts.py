"""Loading a completed run's deployable artifacts for serving.

A checkpointed end-to-end run (``--run-dir``) leaves behind everything a
serving process needs, content-hashed and integrity-checked:

* the **featurize** stage record — its config carries the derived
  featurization seed and the sorted feature-name list (the serving
  schema contract), and its artifacts are the featurized tables;
* the **train** stage record — its config carries the servable-feature
  selection knobs (``model_service_sets``, ``include_image_features``)
  and its artifact is the fitted fusion model.

The feature tables ride along as the warm-start corpus for the stale
cache: every (service, point) value the batch run computed seeds the
fallback chain's stale tier, so a degraded serving call for a known
point serves the *exact* batch value (JSON round-trips floats
bit-for-bit), which is what makes decisions identical across cache
states and availability levels.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.exceptions import CheckpointError, ConfigurationError
from repro.features.io import table_from_dict
from repro.features.table import FeatureTable
from repro.runs import codecs
from repro.runs.manifest import RunManifest, StageRecord
from repro.runs.repair import RepairEngine
from repro.runs.store import ArtifactRef, RunStore

__all__ = ["ServingArtifacts"]


def _complete_stage(manifest: RunManifest, name: str) -> StageRecord:
    record = manifest.stages.get(name)
    if record is None or record.status != "complete":
        raise CheckpointError(
            f"run at {manifest.path.parent} has no completed {name!r} stage; "
            f"serving requires a finished checkpointed run "
            f"(python -m repro.experiments end_to_end --run-dir DIR)"
        )
    return record


def _stage_config(record: StageRecord, key: str) -> object:
    config = record.config if isinstance(record.config, dict) else {}
    if key not in config:
        raise CheckpointError(
            f"stage {record.name!r} config lacks {key!r}; the run was written "
            f"by an incompatible build — recompute it with this version"
        )
    return config[key]


@dataclass
class ServingArtifacts:
    """Everything a :class:`~repro.serving.server.ModelServer` deploys.

    ``featurize_seed`` is the *derived* featurization seed the batch run
    used, so single-point serving draws the identical per-(point,
    resource) RNG streams.  ``feature_names`` is the full catalog schema
    the run featurized with — the serving catalog must match it exactly
    (:meth:`validate_catalog`), otherwise cached values and model
    vectorizers would silently disagree with the live services.
    """

    model: object
    featurize_seed: int
    feature_names: list[str]
    model_service_sets: tuple[str, ...]
    include_image_features: bool
    tables: dict[str, FeatureTable] = field(default_factory=dict)
    context: dict = field(default_factory=dict)

    @classmethod
    def load(
        cls, run_dir: str | Path, repair: RepairEngine | None = None
    ) -> "ServingArtifacts":
        """Load serving artifacts from a completed checkpointed run.

        With a :class:`RepairEngine`, a corrupt or missing artifact is
        rebuilt from lineage (hash-verified against the manifest) and
        the load retried once, so a deploy survives store damage instead
        of dying on the first read.  Without one, integrity failures
        propagate — serving never starts from bytes it cannot vouch for.
        """
        manifest = RunManifest.load(run_dir)
        store = repair.store if repair is not None else RunStore(run_dir)

        def read_json(ref: ArtifactRef) -> object:
            if repair is not None:
                return repair.read_json(ref)
            return store.get_json(ref)

        featurize = _complete_stage(manifest, "featurize")
        train = _complete_stage(manifest, "train")

        # sharded runs list one shard-manifest artifact per split plus
        # its per-shard artifacts (keys like "text/shard00003"); serving
        # wants materialized tables either way, so dispatch on kind and
        # let the manifest handle pull its shards through the same
        # (repairing, verifying) reader
        from repro.shards.table import MANIFEST_KIND, ShardedTable

        reader = repair if repair is not None else None
        tables: dict[str, FeatureTable] = {}
        for name, ref in featurize.artifacts.items():
            if "/" in name:
                continue  # a shard of some split, owned by its manifest
            if ref.kind == MANIFEST_KIND:
                tables[name] = ShardedTable(
                    store, read_json(ref), reader=reader
                ).to_table()
            else:
                tables[name] = table_from_dict(read_json(ref))
        model_ref = train.artifacts.get("model")
        if model_ref is None:
            raise CheckpointError(
                f"train stage of run at {run_dir} records no 'model' artifact"
            )
        model = codecs.decode_model(read_json(model_ref))

        return cls(
            model=model,
            featurize_seed=int(_stage_config(featurize, "derived_seed")),
            feature_names=list(_stage_config(featurize, "features")),
            model_service_sets=tuple(_stage_config(train, "model_service_sets")),
            include_image_features=bool(
                _stage_config(train, "include_image_features")
            ),
            tables=tables,
            context=dict(manifest.context),
        )

    def validate_catalog(self, resources) -> None:
        """Reject a live catalog whose services drift from the run's.

        The model's vectorizer was fitted on exactly the run's feature
        columns; a missing or extra live service would not fail loudly
        on its own — it would mis-featurize every request.
        """
        live = sorted(r.name for r in resources)
        expected = sorted(self.feature_names)
        if live != expected:
            missing = sorted(set(expected) - set(live))
            extra = sorted(set(live) - set(expected))
            raise ConfigurationError(
                f"serving catalog does not match the run's feature schema "
                f"(missing: {missing or 'none'}, unexpected: {extra or 'none'}); "
                f"redeploy from a run featurized with this catalog"
            )

    def warm_entries(self) -> Iterator[tuple[str, int, object]]:
        """Yield every (service, point_id, value) the batch run stored.

        Cells where the feature simply does not exist for the point's
        modality are skipped (nothing was dialed; there is nothing to
        remember).  Cells where the service ran and returned *no
        output* are kept even though they hold :data:`MISSING`: that
        empty answer IS the service's answer for the point, and warming
        it keeps a degraded serving call from substituting a sibling
        value where the batch run had none.
        """
        for table in self.tables.values():
            point_ids = [int(pid) for pid in table.point_ids]
            for spec in table.schema:
                column = table.column(spec.name)
                for pid, modality, value in zip(
                    point_ids, table.modalities, column
                ):
                    if spec.available_for(modality):
                        yield spec.name, pid, value
