"""Bounded-queue micro-batcher for concurrent serving requests.

Concurrent clients enqueue requests; a single dispatcher thread drains
the queue into micro-batches and hands each batch to a processing
function.  Two flush rules, whichever fires first:

* **size flush** — the batch reached ``max_batch_size``;
* **wait flush** — ``max_wait_s`` elapsed since the batch's *first*
  request was dequeued (so a lone request is never parked longer than
  the wait budget waiting for company).

The queue is bounded (``queue_capacity``): when it is full, callers
block in :meth:`submit` — backpressure, not load shedding, matching
the governor's "delay, never fail" invariant.

Batching here amortizes *coordination* (queue hops, lock acquisitions,
cache probes), not model math: the server deliberately scores points
one row at a time so that decisions cannot depend on batch
composition (see :mod:`repro.serving.server`).  Correctness therefore
never depends on how requests happened to be grouped — the batcher is
free to form any batches the arrival order produces.
"""

from __future__ import annotations

import queue
import threading
import time
from collections.abc import Callable, Sequence

from repro.core.exceptions import ConfigurationError

__all__ = ["MicroBatcher"]

#: dispatcher shutdown sentinel (never a valid request payload)
_STOP = object()


class _PendingRequest:
    """One enqueued request and its completion rendezvous."""

    __slots__ = ("payload", "result", "error", "done")

    def __init__(self, payload: object) -> None:
        self.payload = payload
        self.result: object = None
        self.error: BaseException | None = None
        self.done = threading.Event()


class MicroBatcher:
    """Single-dispatcher micro-batcher with bounded-queue backpressure.

    ``process`` receives a non-empty list of payloads (in dequeue
    order) and must return one result per payload, aligned by index.
    An exception raised by ``process`` is re-raised in *every* blocked
    submitter of that batch.
    """

    def __init__(
        self,
        process: Callable[[list[object]], Sequence[object]],
        max_batch_size: int = 8,
        max_wait_s: float = 0.002,
        queue_capacity: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ConfigurationError("max_wait_s must be >= 0")
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        self.process = process
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._lock = threading.Lock()
        self._closed = False
        self.batches = 0
        self.requests = 0
        self.size_flushes = 0
        self.timeout_flushes = 0
        self.max_batch = 0
        self._dispatcher = threading.Thread(
            target=self._run, name="microbatch-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------
    def submit(self, payload: object) -> object:
        """Enqueue one request and block until its result is ready.

        Blocks in two places by design: on a full queue (backpressure)
        and on the completion event (the request's batch must be
        processed).  Raises whatever the batch's ``process`` call
        raised.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
        pending = _PendingRequest(payload)
        self._queue.put(pending)
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    def close(self) -> None:
        """Drain outstanding requests, then stop the dispatcher."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(_STOP)
        self._dispatcher.join()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------
    def _collect_batch(self) -> tuple[list[_PendingRequest], bool, bool]:
        """Block for one request, then gather until a flush rule fires.

        Returns ``(batch, size_flushed, stop)``.
        """
        first = self._queue.get()
        if first is _STOP:
            # fail any request that raced past the closed check so its
            # submitter cannot block forever
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is not _STOP:
                    item.error = RuntimeError("MicroBatcher is closed")
                    item.done.set()
            return [], False, True
        batch = [first]
        deadline = self._clock() + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = deadline - self._clock()
            if remaining <= 0:
                return batch, False, False
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                return batch, False, False
            if item is _STOP:
                # flush what we have; the main loop exits afterwards
                self._queue.put(_STOP)
                return batch, False, False
            batch.append(item)
        return batch, True, False

    def _run(self) -> None:
        while True:
            batch, size_flushed, stop = self._collect_batch()
            if stop:
                return
            with self._lock:
                self.batches += 1
                self.requests += len(batch)
                self.max_batch = max(self.max_batch, len(batch))
                if size_flushed:
                    self.size_flushes += 1
                else:
                    self.timeout_flushes += 1
            try:
                results = self.process([p.payload for p in batch])
                if len(results) != len(batch):
                    raise RuntimeError(
                        f"process returned {len(results)} results for a "
                        f"batch of {len(batch)}"
                    )
            except BaseException as exc:  # noqa: BLE001 - forwarded to submitters
                for pending in batch:
                    pending.error = exc
                    pending.done.set()
                continue
            for pending, result in zip(batch, results):
                pending.result = result
                pending.done.set()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "requests": self.requests,
                "size_flushes": self.size_flushes,
                "timeout_flushes": self.timeout_flushes,
                "max_batch": self.max_batch,
            }
