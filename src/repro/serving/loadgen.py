"""Closed-loop load generator for the serving path.

``run_load`` drives N concurrent clients against one
:class:`~repro.serving.server.ModelServer`.  Each client loops over a
deterministic slice of the request schedule (client ``j`` takes points
``j, j+N, j+2N, ...`` of the round-robin expansion), issues requests
back-to-back (closed loop: next request starts when the previous
returns), and records per-request wall latency in its own
:class:`~repro.obs.trace.Histogram`.  Per-client histograms merge into
one at the end, so p50/p99 come from the full request population with
no cross-thread contention on the hot path.

Closed-loop QPS is throughput under saturation — ``total requests /
wall seconds`` — which is the "sustained QPS" number the serving
benchmark reports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.datagen.entities import DataPoint
from repro.obs.trace import Histogram
from repro.serving.server import Decision, ModelServer

__all__ = ["LATENCY_BOUNDS", "LoadResult", "run_load"]

#: request-latency bucket edges (seconds): 50us .. 5s, log-ish spacing.
#: Finer than the tracer's defaults because micro-batched decisions for
#: tiny models land between 0.1ms and 50ms, where percentile
#: interpolation needs resolution.
LATENCY_BOUNDS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 5.0,
)


@dataclass
class LoadResult:
    """What one load run measured."""

    n_clients: int
    n_requests: int
    wall_s: float
    latency: Histogram
    decisions: dict[int, Decision] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def qps(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return self.latency.percentile(50.0) * 1e3

    @property
    def p99_ms(self) -> float:
        return self.latency.percentile(99.0) * 1e3

    @property
    def ok(self) -> bool:
        return not self.errors


def run_load(
    server: ModelServer,
    points: list[DataPoint],
    n_clients: int = 4,
    n_requests: int = 200,
) -> LoadResult:
    """Drive ``n_requests`` total requests from ``n_clients`` threads.

    The request schedule is the round-robin expansion of ``points`` to
    ``n_requests`` entries, dealt to clients by index — deterministic,
    so two runs (or two server configs) serve the identical multiset of
    requests.  ``decisions`` keeps the last decision per point id;
    identity checks compare these against a reference serve.
    """
    if n_clients < 1:
        raise ConfigurationError("n_clients must be >= 1")
    if n_requests < 1:
        raise ConfigurationError("n_requests must be >= 1")
    if not points:
        raise ConfigurationError("run_load needs at least one point")

    schedule = [points[i % len(points)] for i in range(n_requests)]
    histograms = [Histogram(LATENCY_BOUNDS) for _ in range(n_clients)]
    decisions: dict[int, Decision] = {}
    errors: list[str] = []
    lock = threading.Lock()
    start_barrier = threading.Barrier(n_clients + 1)

    def client(j: int) -> None:
        hist = histograms[j]
        local: dict[int, Decision] = {}
        start_barrier.wait()
        for i in range(j, len(schedule), n_clients):
            point = schedule[i]
            t0 = time.perf_counter()
            try:
                decision = server.decide(point)
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                with lock:
                    errors.append(f"point {point.point_id}: {exc}")
                continue
            hist.record(time.perf_counter() - t0)
            local[point.point_id] = decision
        with lock:
            decisions.update(local)

    threads = [
        threading.Thread(target=client, args=(j,), name=f"loadgen-{j}")
        for j in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    t_start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t_start

    merged = Histogram(LATENCY_BOUNDS)
    for hist in histograms:
        merged.merge(hist)
    return LoadResult(
        n_clients=n_clients,
        n_requests=n_requests,
        wall_s=wall_s,
        latency=merged,
        decisions=decisions,
        errors=errors,
    )
