"""The online decision service over a completed run's artifacts.

:class:`ModelServer` answers "is this point in the target class?" for
single data points, featurizing on demand through the same
:class:`~repro.resilience.policy.ResiliencePolicy` stack the batch
pipeline uses, with two serving-specific layers on top:

* a :class:`~repro.serving.cache.TTLFeatureCache` over the fallback
  chain's stale tier (fresh hit -> no dial; expired hit -> refresh
  through the policy, degrading to the stale entry if the dial fails);
* a :class:`~repro.serving.batcher.MicroBatcher` that coalesces
  concurrent requests into micro-batches.

**The determinism contract.**  A decision depends only on
``(run artifacts, catalog, point, availability schedule)`` — never on
batch composition, cache temperature, or thread interleaving:

* feature values re-derive the batch run's per-``(point, resource)``
  RNG streams from the recorded featurize seed, so an on-demand dial
  returns exactly the batch value;
* the cache is written only with policy-successful values (or the
  batch run's own table cells during warm-up), so a cache hit serves
  exactly what a dial would have computed;
* the model scores **one row at a time** even when requests arrive as
  a micro-batch.  BLAS kernels may choose different instruction
  schedules for different matrix shapes (a gemv for one row, a blocked
  gemm for eight), and float addition is not associative — per-point
  inference keeps the forward pass shape-stable so a decision cannot
  depend on which requests happened to share its batch.  Batching
  still amortizes queueing, locking, and cache probes, which is where
  the coordination cost lives for these small models.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.core.rng import derive_seed, spawn
from repro.datagen.entities import DataPoint, Modality
from repro.features.schema import FeatureSchema
from repro.features.table import MISSING, FeatureTable
from repro.resilience.fallback import (
    FallbackChain,
    StaleValueCache,
    build_substitute_map,
)
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import RetryConfig
from repro.resources.base import OrganizationalResource
from repro.resources.service_sets import IMAGE_SET
from repro.serving.artifacts import ServingArtifacts
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import TTLFeatureCache

__all__ = ["Decision", "ModelServer", "ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for one :class:`ModelServer`.

    ``cache_ttl_s=None`` never expires warm values (static corpus,
    batch values authoritative); ``0.0`` expires everything instantly
    (every request refreshes through the policy — the chaos-test
    setting).  ``cache_capacity=None`` is unbounded; bound it for a
    long-lived process.  ``threshold`` is the decision cut on P(y=1),
    matching the batch pipeline's ``f1@0.5`` operating point.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    queue_capacity: int = 256
    cache_ttl_s: float | None = None
    cache_capacity: int | None = None
    warm_cache: bool = True
    threshold: float = 0.5
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError("threshold must be in (0, 1)")
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")


@dataclass(frozen=True)
class Decision:
    """One served verdict.

    ``degraded`` lists ``"service:outcome"`` for every feature dial
    that did not succeed cleanly; ``cache`` counts how the point's
    feature reads classified (``fresh``/``stale``/``miss``).  Equality
    of decisions for identity checks should compare ``key`` — the
    value-bearing fields only, not the telemetry.
    """

    point_id: int
    score: float
    label: int
    degraded: tuple[str, ...] = ()
    cache: dict[str, int] = field(default_factory=dict)

    @property
    def key(self) -> tuple[int, float, int]:
        return (self.point_id, self.score, self.label)


class ModelServer:
    """Serve decisions from a completed run's artifacts.

    ``resources`` is the live service catalog (possibly fault-wrapped
    :class:`ServiceClient`\\ s); it must carry exactly the features the
    run was featurized with.  ``governor`` is an optional shared
    :class:`~repro.scheduler.ServiceGovernor` for multi-server
    deployments.
    """

    def __init__(
        self,
        artifacts: ServingArtifacts,
        resources: list[OrganizationalResource],
        config: ServingConfig | None = None,
        governor=None,
    ) -> None:
        self.config = config or ServingConfig()
        self.artifacts = artifacts
        resources = list(resources)
        artifacts.validate_catalog(resources)
        self._resources = {r.name: r for r in resources}
        #: full catalog schema in catalog order — selection below must
        #: mirror the batch pipeline's, which orders by catalog
        self.schema = FeatureSchema(r.spec for r in resources)
        store = StaleValueCache(capacity=self.config.cache_capacity)
        self.cache = TTLFeatureCache(store, ttl_s=self.config.cache_ttl_s)
        self.policy = ResiliencePolicy(
            retry=RetryConfig(max_attempts=self.config.max_attempts),
            fallback=FallbackChain(
                substitutes=build_substitute_map(resources),
                stale_cache=store,
            ),
            seed=derive_seed(artifacts.featurize_seed, "serving-policy"),
            governor=governor,
        )
        self.warmed = 0
        if self.config.warm_cache:
            for service, point_id, value in artifacts.warm_entries():
                store.put(service, point_id, value)
                self.warmed += 1
        self._schema_lock = threading.Lock()
        self._model_schemas: dict[Modality, FeatureSchema] = {}
        self._batcher = MicroBatcher(
            self.decide_batch,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_s,
            queue_capacity=self.config.queue_capacity,
        )

    # ------------------------------------------------------------------
    # feature selection (mirrors CrossModalPipeline.model_feature_schema)
    # ------------------------------------------------------------------
    def model_schema(self, modality: Modality) -> FeatureSchema:
        """Servable features the deployed model consumes for ``modality``."""
        with self._schema_lock:
            if modality not in self._model_schemas:
                sets = list(self.artifacts.model_service_sets)
                if (
                    self.artifacts.include_image_features
                    and modality is not Modality.TEXT
                ):
                    sets.append(IMAGE_SET)
                self._model_schemas[modality] = self.schema.select(
                    service_sets=sets, servable_only=True, modality=modality
                )
            return self._model_schemas[modality]

    # ------------------------------------------------------------------
    # the decision path
    # ------------------------------------------------------------------
    def decide(self, point: DataPoint) -> Decision:
        """Serve one request through the micro-batcher (blocking)."""
        return self._batcher.submit(point)

    def decide_batch(self, points: list[DataPoint]) -> list[Decision]:
        """Serve a batch; each point is featurized and scored alone."""
        return [self._decide_point(p) for p in points]

    def _decide_point(self, point: DataPoint) -> Decision:
        schema = self.model_schema(point.modality)
        seed = self.artifacts.featurize_seed
        row: dict[str, object] = {}
        degraded: list[str] = []
        cache_counts = {"fresh": 0, "stale": 0, "miss": 0}
        for name in schema.names:
            resource = self._resources[name]
            if not resource.supports(point.modality):
                row[name] = MISSING
                continue
            state, cached = self.cache.lookup(name, point.point_id)
            cache_counts[state] += 1
            if state == "fresh":
                row[name] = cached
                continue
            # miss or expired: dial through the policy.  On success the
            # policy writes the fresh value back to the shared store;
            # on exhaustion its fallback chain finds the expired entry
            # in the stale tier and serves that.
            tag = f"feat/{point.point_id}/{name}"
            value, event = self.policy.call(
                resource,
                point,
                rng_factory=lambda: spawn(seed, tag),
                seed=seed,
            )
            row[name] = value
            if event is not None and event.degraded:
                degraded.append(f"{name}:{event.outcome}")
        table = FeatureTable(
            schema=schema,
            columns={name: [row[name]] for name in schema.names},
            point_ids=[point.point_id],
            modalities=[point.modality],
        )
        score = float(self.artifacts.model.predict_proba(table)[0])
        return Decision(
            point_id=point.point_id,
            score=score,
            label=int(score >= self.config.threshold),
            degraded=tuple(degraded),
            cache=cache_counts,
        )

    # ------------------------------------------------------------------
    # lifecycle / telemetry
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._batcher.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, object]:
        health = self.policy.health_report()
        return {
            "batcher": self._batcher.stats(),
            "cache": self.cache.stats(),
            "warmed": self.warmed,
            "attempts": health.total_attempts,
            "retries": health.total_retries,
            "fallbacks": health.total_fallbacks,
        }
