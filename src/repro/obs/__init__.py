"""Unified observability: nested spans, counters, benchmark artifacts.

This package is the single place the codebase measures itself (paper
§7.4: production cross-modal pipelines live or die by monitoring).  It
has two halves:

* :mod:`repro.obs.trace` — spans/counters/gauges/histograms with JSON
  export, owned by a :class:`Tracer`;
* :mod:`repro.obs.bench` — ``BENCH_<name>.json`` artifacts the
  benchmark suite emits so perf has a machine-readable trajectory.

Instrumented call sites use the module-level helpers below, which are
**no-ops unless a tracer has been activated** via :func:`enable` — the
disabled fast path is one global read, so hot loops are effectively
free to instrument.  :func:`timed` is the exception: it always measures
wall-clock (replacing the repo's former ad-hoc ``time.perf_counter()``
sites) and *additionally* records a span when tracing is on.

Typical use::

    import repro.obs as obs

    tracer = obs.enable()            # activate the default tracer
    with obs.span("featurize", corpus="text") as sp:
        sp.add_counter("rows", n)
        sp.observe("latency_s/topic_model", dt)
    tracer.write_json("trace.json")
    obs.disable()
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs import registry as _registry
from repro.obs.bench import BenchArtifact
from repro.obs.registry import (
    current,
    disable,
    enable,
    enabled,
    get_tracer,
    reset_registry,
)
from repro.obs.trace import (
    DEFAULT_BUCKETS,
    NOOP_SPAN,
    Histogram,
    Span,
    Tracer,
    format_trace,
)

__all__ = [
    "BenchArtifact",
    "DEFAULT_BUCKETS",
    "Histogram",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "add_counter",
    "current",
    "disable",
    "enable",
    "enabled",
    "format_trace",
    "get_tracer",
    "observe",
    "reset_registry",
    "set_gauge",
    "span",
    "timed",
]


def span(name: str, **attrs: Any):
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _registry._active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def add_counter(name: str, value: float = 1) -> None:
    tracer = _registry._active
    if tracer is not None:
        tracer.add_counter(name, value)


def set_gauge(name: str, value: Any) -> None:
    tracer = _registry._active
    if tracer is not None:
        tracer.set_gauge(name, value)


def observe(name: str, value: float, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
    tracer = _registry._active
    if tracer is not None:
        tracer.observe(name, value, bounds)


class _Timed:
    """Always-on wall-clock measurement, span-recording when traced.

    ``duration`` is valid after exit; ``span`` is the live span (or the
    no-op) inside the block, so call sites can attach counters without
    checking whether tracing is active.
    """

    __slots__ = ("_name", "_attrs", "_cm", "_t0", "span", "duration")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self._name = name
        self._attrs = attrs
        self.duration = 0.0

    def __enter__(self) -> "_Timed":
        self._cm = span(self._name, **self._attrs)
        self.span = self._cm.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.duration = time.perf_counter() - self._t0
        self._cm.__exit__(*exc)
        return False


def timed(name: str, **attrs: Any) -> _Timed:
    """Measure a block's wall-clock whether or not tracing is active."""
    return _Timed(name, attrs)
