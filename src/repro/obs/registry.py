"""Process-local tracer registry and the active-tracer switch.

The registry maps names to long-lived :class:`~repro.obs.trace.Tracer`
instances so independent subsystems can share one trace by name.  At
most one tracer is *active* at a time: the module-level helpers in
:mod:`repro.obs` route through it, and return no-ops when none is
active (the default).  Activation is process-global by design — the
instrumented layers (MapReduce, featurization) fan work out to threads,
and all of it should land in the same trace.
"""

from __future__ import annotations

import threading

from repro.obs.trace import Tracer

__all__ = [
    "get_tracer",
    "reset_registry",
    "enable",
    "disable",
    "current",
    "enabled",
]

_registry_lock = threading.Lock()
_tracers: dict[str, Tracer] = {}

#: The active tracer, or ``None`` (tracing disabled).  Read on every
#: instrumented call — kept a plain module global so the disabled check
#: is one dict-free attribute load.
_active: Tracer | None = None


def get_tracer(name: str = "default") -> Tracer:
    """Fetch (creating on first use) the named process-local tracer."""
    with _registry_lock:
        tracer = _tracers.get(name)
        if tracer is None:
            tracer = _tracers[name] = Tracer(name)
        return tracer


def reset_registry(name: str | None = None) -> None:
    """Drop one named tracer (or all of them) and deactivate if the
    active tracer was dropped."""
    global _active
    with _registry_lock:
        if name is None:
            dropped = list(_tracers.values())
            _tracers.clear()
        else:
            dropped = [t for t in (_tracers.pop(name, None),) if t is not None]
    if _active is not None and _active in dropped:
        _active = None


def enable(tracer: Tracer | str | None = None) -> Tracer:
    """Activate tracing; returns the now-active tracer.

    ``tracer`` may be a :class:`Tracer`, a registry name, or ``None``
    for the registry's ``"default"`` tracer.
    """
    global _active
    if tracer is None:
        tracer = get_tracer("default")
    elif isinstance(tracer, str):
        tracer = get_tracer(tracer)
    _active = tracer
    return tracer


def disable() -> None:
    """Deactivate tracing (instrumented call sites become no-ops)."""
    global _active
    _active = None


def current() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is disabled."""
    return _active


def enabled() -> bool:
    return _active is not None
