"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

Every benchmark run writes one artifact per table/figure so the perf
trajectory is a file diff, not a scroll through CI logs.  The schema is
intentionally flat:

.. code-block:: json

    {
      "schema_version": 1,
      "kind": "bench",
      "name": "table1",
      "created_unix": 1754500000.0,
      "scale": 0.4,
      "seed": 1,
      "timings": {"wall_seconds": 12.3},
      "metrics": {"CT1_pct_pos": 1.9, "n_tasks": 5}
    }

``timings`` holds wall-clock measurements in seconds; ``metrics`` holds
the table/figure's key numbers (floats/ints/strings) so a regression in
*quality* is as visible as a regression in *speed*.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BenchArtifact", "BENCH_SCHEMA_VERSION"]

BENCH_SCHEMA_VERSION = 1


@dataclass
class BenchArtifact:
    """One benchmark's timings and key metrics, serializable to JSON."""

    name: str
    scale: float = 1.0
    seed: int = 0
    timings: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def record(self, **metrics: Any) -> None:
        """Attach key metrics (floats/ints/strings) to the artifact."""
        for key, value in metrics.items():
            self.metrics[key] = value

    def time(self, key: str, seconds: float) -> None:
        self.timings[key] = float(seconds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": BENCH_SCHEMA_VERSION,
            "kind": "bench",
            "name": self.name,
            "created_unix": time.time(),
            "scale": self.scale,
            "seed": self.seed,
            "timings": dict(self.timings),
            "metrics": dict(self.metrics),
        }

    def write(self, directory: str = ".") -> str:
        """Write ``BENCH_<name>.json`` into ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.name}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=_jsonable)
            fh.write("\n")
        return path


def _jsonable(value: Any) -> Any:
    """Last-resort coercion for numpy scalars and other oddballs."""
    for attr in ("item",):  # numpy scalar -> python scalar
        fn = getattr(value, attr, None)
        if callable(fn):
            return fn()
    return str(value)
