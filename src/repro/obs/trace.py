"""Tracing and metrics primitives: spans, counters, gauges, histograms.

A :class:`Span` is one timed region of work.  Spans nest: entering a
span while another is active on the same thread makes it a child, so a
traced pipeline run exports as a tree (featurize -> featurize_corpus ->
mapreduce -> partitions).  Each span carries three metric families:

* **counters** — monotonically accumulated values (``rows``,
  ``retried_records``, ``degraded/<service>``);
* **gauges** — last-write-wins observations (``n_edges``,
  ``n_iterations``);
* **histograms** — fixed-bucket distributions of per-call observations
  (``latency_s/<service>``).

A :class:`Tracer` owns one span tree and a per-thread span stack.
Worker threads (e.g. MapReduce partitions) that open spans without an
active parent on their own thread attach to the tracer root, so no
measurement is lost to thread scheduling.  Everything exports to plain
JSON-compatible dicts — no third-party dependencies.

Disabled-by-default cost model: instrumented call sites go through the
module-level helpers in :mod:`repro.obs`, which return the shared
:data:`NOOP_SPAN` singleton when no tracer is active.  The disabled
path is a single global read plus an identity return, so hot loops pay
effectively nothing.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from typing import Any

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "format_trace",
]

#: Default histogram bucket upper bounds (seconds-flavoured: 10us .. 10s).
DEFAULT_BUCKETS: tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram:
    """Fixed-bucket histogram of numeric observations.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything above the last edge.  Tracks count/total/min/max
    so means survive export even when bucket resolution is coarse.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100]).

        Linear interpolation over the fractional rank
        ``q/100 * (count - 1)``, located in bucket space and mapped to
        values across each bucket's edge range clamped to the observed
        ``[min, max]`` — so the estimate never leaves the observed
        range, an empty histogram reports 0.0, a single sample reports
        itself exactly, and two samples give the exact interpolated
        quantiles (e.g. ``percentile(50)`` is their midpoint) whenever
        they share a bucket.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1 or self.min == self.max:
            return self.min
        rank = (q / 100.0) * (self.count - 1)
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            first, last = cumulative, cumulative + n - 1
            if rank <= last:
                lower = self.bounds[i - 1] if i > 0 else self.min
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lo = max(lower, self.min)
                hi = max(min(upper, self.max), lo)
                # rank can land in the empty gap between the previous
                # bucket's last sample and this bucket's first (rank <
                # first); clamp so the estimate stays at this bucket's
                # floor instead of extrapolating below the observed range
                frac = (rank - first) / (n - 1) if n > 1 else 0.0
                frac = min(1.0, max(0.0, frac))
                return lo + frac * (hi - lo)
            cumulative += n
        return self.max  # pragma: no cover - rank <= count-1 always lands

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, Any]:
        buckets: dict[str, int] = {}
        for bound, n in zip(self.bounds, self.bucket_counts):
            buckets[f"le_{bound:g}"] = n
        buckets[f"gt_{self.bounds[-1]:g}"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": buckets,
        }


class Span:
    """One timed region with attached counters, gauges, and histograms.

    Metric mutation is thread-safe: a span shared across worker threads
    (the tracer root is, via the module-level ``obs.add_counter`` /
    ``obs.observe`` helpers) serializes its read-modify-write updates
    through a per-span lock, so no increment is ever lost to a race.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "counters",
        "gauges",
        "histograms",
        "start_wall",
        "_start",
        "_end",
        "_lock",
    )

    def __init__(self, name: str, attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, Any] = {}
        self.histograms: dict[str, Histogram] = {}
        self.start_wall = time.time()
        self._start = time.perf_counter()
        self._end: float | None = None
        self._lock = threading.Lock()

    # -- metrics -------------------------------------------------------
    def add_counter(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: Any) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(bounds)
            hist.record(value)

    # -- timing --------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._end is not None

    @property
    def duration(self) -> float:
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    def finish(self) -> None:
        if self._end is None:
            self._end = time.perf_counter()

    # -- export --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"name": self.name, "duration_s": self.duration}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.counters:
            d["counters"] = dict(self.counters)
        if self.gauges:
            d["gauges"] = dict(self.gauges)
        if self.histograms:
            d["histograms"] = {k: h.to_dict() for k, h in self.histograms.items()}
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, duration={self.duration:.4f}s)"


class _NoopSpan:
    """Shared do-nothing span: the disabled-instrumentation fast path.

    Supports the full :class:`Span` metric/context API so call sites
    never branch on whether tracing is active.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def add_counter(self, name: str, value: float = 1) -> None:
        pass

    def set_gauge(self, name: str, value: Any) -> None:
        pass

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


#: Singleton returned by :func:`repro.obs.span` when tracing is off.
NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager that opens a child span on a tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._attrs)
        return self.span

    def __exit__(self, *exc: object) -> bool:
        assert self.span is not None
        self._tracer._close(self.span)
        return False


class Tracer:
    """A span tree plus per-thread span stacks.

    The root span is created eagerly so metrics recorded outside any
    explicit span (or on worker threads with no active parent) still
    have a home.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.root = Span("root")
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span stack ----------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span:
        stack = self._stack()
        return stack[-1] if stack else self.root

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: dict[str, Any]) -> Span:
        span = Span(name, attrs)
        parent = self.current_span()
        with self._lock:
            parent.children.append(span)
        self._stack().append(span)
        return span

    def _close(self, span: Span) -> None:
        span.finish()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- metric conveniences (current span) ----------------------------
    def add_counter(self, name: str, value: float = 1) -> None:
        self.current_span().add_counter(name, value)

    def set_gauge(self, name: str, value: Any) -> None:
        self.current_span().set_gauge(name, value)

    def observe(
        self,
        name: str,
        value: float,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.current_span().observe(name, value, bounds)

    # -- queries -------------------------------------------------------
    def find_spans(self, name: str) -> list[Span]:
        return [s for s in self.root.walk() if s.name == name]

    def total_counters(self) -> dict[str, float]:
        """Counters summed over the whole span tree."""
        totals: dict[str, float] = {}
        for span in self.root.walk():
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- export --------------------------------------------------------
    def export(self) -> dict[str, Any]:
        self.root.finish()
        return {
            "schema_version": 1,
            "kind": "trace",
            "tracer": self.name,
            "created_unix": self.root.start_wall,
            "total_counters": self.total_counters(),
            "trace": self.root.to_dict(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.export(), indent=indent, sort_keys=False)

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return path


def _format_span(span: Span, depth: int, lines: list[str]) -> None:
    pad = "  " * depth
    parts = [f"{pad}{span.name:<{max(36 - len(pad), 8)}} {span.duration * 1000:>10.1f} ms"]
    if span.attrs:
        parts.append(" ".join(f"{k}={v}" for k, v in span.attrs.items()))
    lines.append("  ".join(parts))
    for key in sorted(span.counters):
        lines.append(f"{pad}  · {key} = {span.counters[key]:g}")
    for key in sorted(span.gauges):
        lines.append(f"{pad}  · {key} := {span.gauges[key]}")
    for key in sorted(span.histograms):
        hist = span.histograms[key]
        lines.append(
            f"{pad}  · {key}: n={hist.count} mean={hist.mean:.2e} "
            f"max={hist.max if hist.count else 0:.2e}"
        )
    for child in span.children:
        _format_span(child, depth + 1, lines)


def format_trace(tracer: Tracer) -> str:
    """Human-readable indented rendering of a tracer's span tree."""
    lines = [f"trace {tracer.name!r} — {tracer.root.duration:.2f}s total"]
    for child in tracer.root.children:
        _format_span(child, 0, lines)
    totals = tracer.total_counters()
    if totals:
        lines.append("totals:")
        for key in sorted(totals):
            lines.append(f"  {key} = {totals[key]:g}")
    return "\n".join(lines)
