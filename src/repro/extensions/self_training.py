"""Self-training on top of the cross-modal model (paper §6.4).

After the weakly-supervised model deploys, its own confident
predictions on fresh unlabeled traffic become additional training
signal: points scored above a high percentile are pseudo-labeled
positive, points below a low percentile negative, and the model
retrains with both the original curated data and the pseudo-labels
[Rosenberg et al. 2005].  Percentile (rather than absolute) thresholds
keep the pseudo-label volume stable under class imbalance.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.features.table import FeatureTable

__all__ = ["SelfTrainer", "SelfTrainingReport"]


@dataclass
class SelfTrainingReport:
    """What each self-training round added."""

    rounds: list[dict[str, float]] = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def total_pseudo_labels(self) -> int:
        return int(sum(r["n_pseudo"] for r in self.rounds))


class SelfTrainer:
    """Iterative confident-prediction self-training.

    Parameters
    ----------
    model_factory:
        Builds a fresh fusion model per round; it must implement
        ``fit(tables, targets, sample_weights)`` and
        ``predict_proba(table)`` (e.g. a lambda returning
        :class:`~repro.models.fusion.EarlyFusion`).
    positive_percentile / negative_percentile:
        Scores above/below these percentiles of the unlabeled pool
        become pseudo-positive / pseudo-negative.
    pseudo_weight:
        Sample weight of pseudo-labeled points relative to curated ones
        (pseudo-labels are noisier, so they count less).
    n_rounds:
        Number of self-training iterations.
    """

    def __init__(
        self,
        model_factory: Callable[[], object],
        positive_percentile: float = 99.0,
        negative_percentile: float = 50.0,
        pseudo_weight: float = 0.5,
        n_rounds: int = 2,
    ) -> None:
        if not 50.0 < positive_percentile < 100.0:
            raise ConfigurationError(
                "positive_percentile must be in (50, 100)"
            )
        if not 0.0 < negative_percentile < positive_percentile:
            raise ConfigurationError(
                "negative_percentile must be in (0, positive_percentile)"
            )
        if n_rounds < 1:
            raise ConfigurationError("n_rounds must be >= 1")
        self.model_factory = model_factory
        self.positive_percentile = positive_percentile
        self.negative_percentile = negative_percentile
        self.pseudo_weight = pseudo_weight
        self.n_rounds = n_rounds
        self.report_: SelfTrainingReport | None = None
        self.model_: object | None = None

    def fit(
        self,
        base_tables: Sequence[FeatureTable],
        base_targets: Sequence[np.ndarray],
        unlabeled_table: FeatureTable,
    ) -> "SelfTrainer":
        """Train with ``n_rounds`` of pseudo-labeling over
        ``unlabeled_table`` (fresh traffic the curation step never saw).
        """
        report = SelfTrainingReport()
        model = self.model_factory()
        model.fit(list(base_tables), [np.asarray(t, float) for t in base_targets])

        for round_index in range(self.n_rounds):
            scores = model.predict_proba(unlabeled_table)
            hi = np.percentile(scores, self.positive_percentile)
            lo = np.percentile(scores, self.negative_percentile)
            pseudo_pos = scores >= hi
            pseudo_neg = scores <= lo
            chosen = pseudo_pos | pseudo_neg
            if not chosen.any():
                break
            pseudo_table = unlabeled_table.select_rows(np.flatnonzero(chosen))
            pseudo_targets = pseudo_pos[chosen].astype(float)
            weights: list[np.ndarray | None] = [None] * len(base_tables)
            weights.append(
                np.full(int(chosen.sum()), self.pseudo_weight)
            )
            model = self.model_factory()
            model.fit(
                list(base_tables) + [pseudo_table],
                [np.asarray(t, float) for t in base_targets] + [pseudo_targets],
                weights,
            )
            report.rounds.append(
                {
                    "round": float(round_index),
                    "n_pseudo": float(chosen.sum()),
                    "n_pseudo_positive": float(pseudo_pos.sum()),
                    "threshold_high": float(hi),
                    "threshold_low": float(lo),
                }
            )
        self.model_ = model
        self.report_ = report
        return self

    def predict_proba(self, table: FeatureTable) -> np.ndarray:
        if self.model_ is None:
            raise ConfigurationError("SelfTrainer.fit has not been called")
        return self.model_.predict_proba(table)
