"""Domain adaptation between modalities (paper §7.3).

The paper hypothesizes that "using methods for domain adaptation with
our methods may further boost performance": the common feature space
makes modalities comparable, but their input distributions differ, so
old-modality rows should be *reweighted* toward the new modality's
distribution before training (classic covariate-shift correction,
cf. CrossTrainer [Chen et al. 2019], the authors' own loss-reweighting
system).

``modality_importance_weights`` trains a logistic discriminator to tell
old-modality rows from new-modality rows over the shared features and
converts its odds into importance weights
w(x) = P(new | x) / P(old | x) (clipped) — rows of the old modality
that look like the new modality count more.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.features.table import FeatureTable
from repro.features.vectorize import Vectorizer
from repro.models.linear import LogisticRegression

__all__ = ["modality_importance_weights"]


def modality_importance_weights(
    old_table: FeatureTable,
    new_table: FeatureTable,
    features: list[str] | None = None,
    clip: tuple[float, float] = (0.1, 10.0),
    seed: int = 0,
) -> np.ndarray:
    """Importance weights for ``old_table`` rows under the new
    modality's feature distribution.

    Parameters
    ----------
    old_table / new_table:
        Feature tables of the two modalities.  Only features present in
        *both* schemas are used (the shared feature space).
    features:
        Optional explicit shared-feature list.
    clip:
        (low, high) clip range for the weights; extreme ratios get
        truncated so a few outliers cannot dominate the loss.

    Returns
    -------
    Array of length ``old_table.n_rows``, mean-normalized to 1.
    """
    if clip[0] <= 0 or clip[1] <= clip[0]:
        raise ConfigurationError(f"invalid clip range {clip}")
    if features is None:
        # genuinely shared features only: a column that is always
        # missing on one side would let the discriminator separate the
        # modalities from presence bits alone
        features = [
            n
            for n in old_table.schema.names
            if n in new_table.schema
            and old_table.presence_fraction(n) > 0.05
            and new_table.presence_fraction(n) > 0.05
        ]
    if not features:
        raise ConfigurationError("no shared features between the tables")

    old_sel = old_table.select_features(features)
    new_sel = new_table.select_features(
        [n for n in features if n in new_table.schema]
    )
    joint = old_sel.concat(new_sel)
    vectorizer = Vectorizer(joint.schema).fit(joint)
    X = vectorizer.transform(joint)
    domain = np.concatenate(
        [np.zeros(old_sel.n_rows), np.ones(new_sel.n_rows)]
    )
    discriminator = LogisticRegression(seed=seed, n_epochs=200)
    discriminator.fit(X, domain)

    p_new = discriminator.predict_proba(X[: old_sel.n_rows])
    # correct for the domain size prior so balanced corpora get ratio 1
    prior_ratio = old_sel.n_rows / max(new_sel.n_rows, 1)
    ratio = p_new / np.clip(1.0 - p_new, 1e-6, None) * prior_ratio
    weights = np.clip(ratio, clip[0], clip[1])
    return weights / weights.mean()
