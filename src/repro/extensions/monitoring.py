"""Production model comparison via sampled human review (paper §7.4).

"A solution is to train and deploy models in parallel.  However, to
(1) understand when models are performing poorly in production, or
(2) compare the performance of many candidate models, sampling and
human reviewing is often required ... a combination of random and
importance sampling."

:class:`ReviewQueue` simulates the human-review side: it owns a
labeling budget and returns ground-truth labels with a configurable
reviewer error rate.  :func:`compare_models` scores two candidate
models on live traffic with a mixed random + disagreement sample, the
way a production team decides which candidate wins without labeling
everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.rng import make_rng
from repro.datagen.corpus import Corpus
from repro.features.table import FeatureTable
from repro.models.metrics import auprc

__all__ = ["ReviewQueue", "ModelComparison", "compare_models"]


class ReviewQueue:
    """A budgeted, imperfect human-review service."""

    def __init__(
        self,
        corpus: Corpus,
        budget: int,
        reviewer_error: float = 0.02,
        seed: int = 0,
    ) -> None:
        if budget < 1:
            raise ConfigurationError("review budget must be >= 1")
        if not 0.0 <= reviewer_error < 0.5:
            raise ConfigurationError("reviewer_error must be in [0, 0.5)")
        self._labels = corpus.labels
        self.budget = budget
        self.reviewer_error = reviewer_error
        self._rng = make_rng(seed)
        self.spent = 0

    @property
    def remaining(self) -> int:
        return self.budget - self.spent

    def review(self, indices: np.ndarray) -> np.ndarray:
        """Human labels for the requested rows (noisy, budget-checked)."""
        indices = np.asarray(indices, dtype=np.int64)
        if len(indices) > self.remaining:
            raise ConfigurationError(
                f"review of {len(indices)} items exceeds remaining budget "
                f"{self.remaining}"
            )
        self.spent += len(indices)
        labels = self._labels[indices].copy()
        flips = self._rng.random(len(indices)) < self.reviewer_error
        labels[flips] = 1 - labels[flips]
        return labels


@dataclass
class ModelComparison:
    """Outcome of a sampled A/B model comparison.

    ``degenerate`` marks a review sample whose labels were all one
    class: AUPRC is undefined there, so ``auprc_a``/``auprc_b`` hold
    mean model scores instead (a tie-break signal, *not* a quality
    metric) and the comparison should be re-run with a larger or
    re-balanced sample before acting on it.
    """

    auprc_a: float
    auprc_b: float
    n_reviewed: int
    n_disagreements: int
    winner: str
    degenerate: bool = False

    def render(self) -> str:
        if self.degenerate:
            return (
                f"DEGENERATE comparison (single-class review sample): "
                f"model A mean score {self.auprc_a:.3f} vs model B "
                f"{self.auprc_b:.3f} on {self.n_reviewed} reviewed items "
                f"({self.n_disagreements} sampled from disagreements) "
                f"-> {self.winner} (score-mean tie-break, not AUPRC)"
            )
        return (
            f"model A AUPRC {self.auprc_a:.3f} vs model B {self.auprc_b:.3f} "
            f"on {self.n_reviewed} reviewed items "
            f"({self.n_disagreements} sampled from disagreements) -> {self.winner}"
        )


def compare_models(
    model_a,
    model_b,
    traffic_table: FeatureTable,
    queue: ReviewQueue,
    disagreement_fraction: float = 0.5,
    seed: int = 0,
) -> ModelComparison:
    """Compare two candidates on live traffic with sampled review.

    Half the review budget (by default) goes to the points where the
    two models *disagree most* (importance sampling — that is where the
    decision differs), the rest to a uniform random sample (keeps the
    estimate anchored to the traffic distribution).
    """
    if not 0.0 <= disagreement_fraction <= 1.0:
        raise ConfigurationError("disagreement_fraction must be in [0, 1]")
    rng = make_rng(seed)
    scores_a = model_a.predict_proba(traffic_table)
    scores_b = model_b.predict_proba(traffic_table)
    n = traffic_table.n_rows
    budget = min(queue.remaining, n)
    n_disagree = int(budget * disagreement_fraction)

    disagreement = np.abs(scores_a - scores_b)
    by_disagreement = np.argsort(-disagreement)[:n_disagree]
    pool = np.setdiff1d(np.arange(n), by_disagreement)
    n_random = min(budget - n_disagree, len(pool))
    random_sample = rng.choice(pool, size=n_random, replace=False)
    reviewed = np.concatenate([by_disagreement, random_sample])

    labels = queue.review(reviewed)
    degenerate = labels.sum() == 0 or labels.sum() == len(labels)
    if degenerate:
        # single-class review sample: AUPRC is undefined, so report
        # mean scores and flag the comparison instead of mislabeling
        # the metric
        auprc_a = float(scores_a[reviewed].mean())
        auprc_b = float(scores_b[reviewed].mean())
    else:
        auprc_a = auprc(scores_a[reviewed], labels)
        auprc_b = auprc(scores_b[reviewed], labels)
    winner = "A" if auprc_a >= auprc_b else "B"
    return ModelComparison(
        auprc_a=auprc_a,
        auprc_b=auprc_b,
        n_reviewed=len(reviewed),
        n_disagreements=len(by_disagreement),
        winner=winner,
        degenerate=degenerate,
    )
