"""Extensions the paper sketches beyond the core pipeline.

§6.4 notes that the rapid initial cross-modal deployment "can be
augmented via techniques for active learning or self-training on the
order of days"; §7.3 proposes domain adaptation "as a primitive to help
balance between the data modalities"; §7.4 describes running candidate
models in parallel and comparing them with sampled human review.  This
subpackage implements those follow-ups:

* :mod:`repro.extensions.self_training` — confident-prediction
  self-training rounds on top of a trained cross-modal model;
* :mod:`repro.extensions.domain_adaptation` — importance weighting of
  old-modality rows toward the new modality's feature distribution
  (discriminator-based covariate-shift correction);
* :mod:`repro.extensions.monitoring` — production-style model
  comparison via mixed random + disagreement sampling and a simulated
  human review queue.
"""

from repro.extensions.self_training import SelfTrainer, SelfTrainingReport
from repro.extensions.domain_adaptation import modality_importance_weights
from repro.extensions.monitoring import ModelComparison, ReviewQueue, compare_models

__all__ = [
    "ModelComparison",
    "ReviewQueue",
    "SelfTrainer",
    "SelfTrainingReport",
    "compare_models",
    "modality_importance_weights",
]
