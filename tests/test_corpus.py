"""Tests for repro.datagen.corpus — corpus containers."""

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.datagen.corpus import Corpus


@pytest.fixture()
def corpus(tiny_splits):
    return tiny_splits.text_labeled


def test_len_and_iteration(corpus):
    assert len(corpus) == len(list(corpus))


def test_labels_binary(corpus):
    labels = corpus.labels
    assert set(np.unique(labels)) <= {0, 1}


def test_positive_rate_matches_labels(corpus):
    assert corpus.positive_rate == pytest.approx(corpus.labels.mean())


def test_sample_without_replacement(corpus):
    sample = corpus.sample(50, seed=1)
    assert len(sample) == 50
    assert len(set(sample.point_ids)) == 50


def test_sample_too_large_raises(corpus):
    with pytest.raises(ConfigurationError):
        corpus.sample(len(corpus) + 1)


def test_sample_deterministic(corpus):
    a = corpus.sample(30, seed=5)
    b = corpus.sample(30, seed=5)
    assert list(a.point_ids) == list(b.point_ids)


def test_take_prefix(corpus):
    taken = corpus.take(10)
    assert list(taken.point_ids) == list(corpus.point_ids[:10])


def test_take_nesting(corpus):
    """Larger takes are supersets of smaller ones (labeling-budget
    sweeps rely on this)."""
    small = set(corpus.take(20).point_ids)
    large = set(corpus.take(60).point_ids)
    assert small <= large


def test_split_partitions(corpus):
    a, b = corpus.split(0.25, seed=3)
    assert len(a) + len(b) == len(corpus)
    assert set(a.point_ids).isdisjoint(set(b.point_ids))
    assert len(a) == int(round(0.25 * len(corpus)))


def test_split_invalid_fraction(corpus):
    with pytest.raises(ConfigurationError):
        corpus.split(1.5)


def test_filter(corpus):
    positives = corpus.filter(lambda p: p.label == 1)
    assert all(p.label == 1 for p in positives)
    assert len(positives) == corpus.labels.sum()


def test_concat(corpus):
    a, b = corpus.split(0.5, seed=0)
    merged = a.concat(b)
    assert len(merged) == len(corpus)
    assert set(merged.point_ids) == set(corpus.point_ids)


def test_summary_fields(corpus):
    summary = corpus.summary()
    assert summary["n_points"] == len(corpus)
    assert summary["modalities"] == ["text"]
    assert 0 <= summary["positive_rate"] <= 1


def test_empty_corpus_positive_rate():
    assert Corpus(points=[]).positive_rate == 0.0
